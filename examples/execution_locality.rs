//! Execution-locality classification: compare how much of each workload the
//! D-KIP's Cache Processor handles versus its Memory Processors, and how the
//! three processor families compare on the same workload.
//!
//! Run with: `cargo run --release --example execution_locality`

use dkip::model::config::{BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig};
use dkip::sim::{run_baseline, run_dkip, run_kilo};
use dkip::trace::Benchmark;

fn main() {
    let mem = MemoryHierarchyConfig::mem_400();
    let budget = 20_000;

    println!("Per-benchmark execution locality on the default D-KIP (MEM-400):");
    println!(
        "{:>10} {:>8} {:>14} {:>16} {:>14}",
        "benchmark", "IPC", "high-locality", "LLIB peak instrs", "LLRF peak regs"
    );
    for bench in Benchmark::representative() {
        let stats = run_dkip(&DkipConfig::paper_default(), &mem, bench, budget, 1);
        let (instrs, regs) = if bench.suite() == dkip::trace::Suite::Fp {
            (stats.llib_fp_peak_instrs, stats.llrf_fp_peak_regs)
        } else {
            (stats.llib_int_peak_instrs, stats.llrf_int_peak_regs)
        };
        println!(
            "{:>10} {:>8.3} {:>13.1}% {:>16} {:>14}",
            bench.name(),
            stats.ipc(),
            100.0 * stats.high_locality_fraction(),
            instrs,
            regs
        );
    }

    println!();
    println!("Processor comparison on swim (memory-bound SpecFP):");
    let swim = Benchmark::Swim;
    let r64 = run_baseline(&BaselineConfig::r10_64(), &mem, swim, budget, 1);
    let r256 = run_baseline(&BaselineConfig::r10_256(), &mem, swim, budget, 1);
    let kilo = run_kilo(&KiloConfig::kilo_1024(), &mem, swim, budget, 1);
    let dkip = run_dkip(&DkipConfig::paper_default(), &mem, swim, budget, 1);
    for (name, stats) in [
        ("R10-64", &r64),
        ("R10-256", &r256),
        ("KILO-1024", &kilo),
        ("D-KIP-2048", &dkip),
    ] {
        println!("  {:>10}: IPC {:.3}", name, stats.ipc());
    }
    println!();
    println!("The two kilo-instruction designs overlap the 400-cycle misses that");
    println!("stall the conventional cores, without any out-of-order structure");
    println!("larger than 40 entries in the D-KIP's case.");
}
