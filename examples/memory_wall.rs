//! The memory-wall experiment of Section 2: how much IPC a conventional
//! out-of-order core recovers by growing its instruction window, for a
//! memory-bound FP workload versus a pointer-chasing integer workload.
//!
//! Run with: `cargo run --release --example memory_wall`

use dkip::model::config::{BaselineConfig, MemoryHierarchyConfig};
use dkip::sim::run_baseline;
use dkip::trace::Benchmark;

fn main() {
    let mem = MemoryHierarchyConfig::mem_400();
    let windows = [32usize, 64, 128, 256, 512, 1024, 2048];
    println!("Average IPC on an idealised out-of-order core, MEM-400 memory system");
    println!("{:>8} {:>12} {:>12}", "window", "swim (FP)", "mcf (INT)");
    for window in windows {
        let cfg = BaselineConfig::idealized(window);
        let fp = run_baseline(&cfg, &mem, Benchmark::Swim, 15_000, 1);
        let int = run_baseline(&cfg, &mem, Benchmark::Mcf, 15_000, 1);
        println!("{:>8} {:>12.3} {:>12.3}", window, fp.ipc(), int.ipc());
    }
    println!();
    println!("Growing the window recovers IPC for the streaming FP workload but");
    println!("not for the pointer chaser - the observation that motivates the D-KIP.");
}
