//! Quickstart: simulate one benchmark on the D-KIP and print its headline
//! statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use dkip::model::config::{DkipConfig, MemoryHierarchyConfig};
use dkip::sim::run_dkip;
use dkip::trace::Benchmark;

fn main() {
    let cfg = DkipConfig::paper_default();
    let mem = MemoryHierarchyConfig::mem_400();
    println!(
        "Simulating 50k instructions of a swim-like workload on {} ...",
        cfg.name
    );
    let stats = run_dkip(&cfg, &mem, Benchmark::Swim, 50_000, 1);
    println!("  cycles                 : {}", stats.cycles);
    println!("  committed instructions : {}", stats.committed);
    println!("  IPC                    : {:.3}", stats.ipc());
    println!(
        "  high-locality fraction : {:.1}%",
        100.0 * stats.high_locality_fraction()
    );
    println!(
        "  branch mispredict rate : {:.2}%",
        100.0 * stats.mispredict_rate()
    );
    println!(
        "  peak FP LLIB occupancy : {} instructions, {} registers",
        stats.llib_fp_peak_instrs, stats.llrf_fp_peak_regs
    );
    println!("  checkpoints taken      : {}", stats.checkpoints_taken);
}
