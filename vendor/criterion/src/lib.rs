//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this shim provides
//! just enough of the criterion 0.5 API for
//! `crates/bench/benches/paper_figures.rs` and the `dkip-bench` throughput
//! harness to compile and run: benchmark groups, `sample_size`,
//! `throughput`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Beyond the original stderr-style wall-clock printing, every timed run is
//! recorded as a [`Measurement`] in a process-global registry, and the
//! harness can persist the whole registry as machine-readable JSON —
//! criterion's `--save-baseline` flow, reduced to one file:
//!
//! * `cargo bench -p dkip-bench -- --save-baseline NAME` writes
//!   `target/criterion/NAME.json`;
//! * setting `CRITERION_JSON=/path/file.json` writes to an explicit path;
//! * library users (the `perf` throughput harness) call
//!   [`take_measurements`] and [`write_json`] directly, so `cargo bench`
//!   and `make perf` share one measurement + serialisation code path.

#![warn(missing_docs)]

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-iteration work declared by a benchmark, mirroring
/// `criterion::Throughput`. The JSON report derives an elements-per-second
/// rate from it (for the simulator benches: simulated instructions per
/// second).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of abstract elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

impl Throughput {
    fn elements(self) -> u64 {
        match self {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        }
    }
}

/// One completed benchmark: identification plus timing statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The benchmark group, or an empty string for stand-alone benchmarks.
    pub group: String,
    /// The benchmark name inside its group.
    pub name: String,
    /// Number of timed samples.
    pub samples: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample, in nanoseconds.
    pub max_ns: f64,
    /// Total wall-clock nanoseconds across all samples.
    pub total_ns: f64,
    /// Declared per-iteration work, if any (see [`Throughput`]).
    pub elements_per_iter: Option<u64>,
}

impl Measurement {
    /// The full `group/name` identifier.
    #[must_use]
    pub fn id(&self) -> String {
        if self.group.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.group, self.name)
        }
    }

    /// Elements processed per second, if a throughput was declared.
    #[must_use]
    pub fn elements_per_sec(&self) -> Option<f64> {
        let elements = self.elements_per_iter? as f64;
        if self.mean_ns <= 0.0 {
            return None;
        }
        Some(elements * 1e9 / self.mean_ns)
    }

    /// Serialises the measurement as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"group\": {}", json_string(&self.group)),
            format!("\"name\": {}", json_string(&self.name)),
            format!("\"samples\": {}", self.samples),
            format!("\"mean_ns\": {}", json_number(self.mean_ns)),
            format!("\"min_ns\": {}", json_number(self.min_ns)),
            format!("\"max_ns\": {}", json_number(self.max_ns)),
            format!("\"total_ns\": {}", json_number(self.total_ns)),
        ];
        if let Some(elements) = self.elements_per_iter {
            fields.push(format!("\"elements_per_iter\": {elements}"));
            if let Some(rate) = self.elements_per_sec() {
                fields.push(format!("\"elements_per_sec\": {}", json_number(rate)));
            }
        }
        format!("{{{}}}", fields.join(", "))
    }
}

/// Escapes and quotes a string for JSON output.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a finite JSON number (JSON has no NaN/Infinity).
#[must_use]
pub fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_owned()
    }
}

static REGISTRY: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

fn record(measurement: Measurement) {
    REGISTRY
        .lock()
        .expect("criterion registry poisoned")
        .push(measurement);
}

/// Drains every measurement recorded so far, in completion order.
#[must_use]
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut *REGISTRY.lock().expect("criterion registry poisoned"))
}

/// Writes a measurement list as one JSON document (`{"measurements": [...]}`).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_json(path: &Path, measurements: &[Measurement]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    let body: Vec<String> = measurements
        .iter()
        .map(|m| format!("    {}", m.to_json()))
        .collect();
    writeln!(
        file,
        "{{\n  \"measurements\": [\n{}\n  ]\n}}",
        body.join(",\n")
    )
}

/// The JSON output path requested via `--save-baseline NAME` (mapped to
/// `target/criterion/NAME.json`) or the `CRITERION_JSON` environment
/// variable (an explicit path). The environment variable wins.
#[must_use]
pub fn save_baseline_path() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            return Some(PathBuf::from(path));
        }
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--save-baseline" {
            let name = args.next()?;
            return Some(
                PathBuf::from("target")
                    .join("criterion")
                    .join(format!("{name}.json")),
            );
        }
        if let Some(name) = arg.strip_prefix("--save-baseline=") {
            return Some(
                PathBuf::from("target")
                    .join("criterion")
                    .join(format!("{name}.json")),
            );
        }
    }
    None
}

/// Called by `criterion_main!` after all groups ran: persists the registry
/// as JSON when a baseline path was requested.
pub fn finalize() {
    let Some(path) = save_baseline_path() else {
        return;
    };
    let measurements = take_measurements();
    match write_json(&path, &measurements) {
        Ok(()) => println!(
            "wrote {} measurements to {}",
            measurements.len(),
            path.display()
        ),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", name, 10, None, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration work of subsequent benchmarks, enabling
    /// rate reporting (e.g. simulated instructions per second).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times `f`, prints the mean wall-clock time per iteration, and records
    /// a [`Measurement`] in the global registry.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, name, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to every benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` `sample_size` times, recording the wall-clock time of each run.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Times one benchmark, prints its mean, and returns the recorded
/// [`Measurement`] (also pushed to the global registry).
pub fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) -> Measurement {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    let n = b.samples.len().max(1);
    let total: Duration = b.samples.iter().sum();
    println!("  {name}: {:?} mean over {n} samples", total / n as u32);
    let to_ns = |d: &Duration| d.as_secs_f64() * 1e9;
    let min_ns = b.samples.iter().map(to_ns).fold(f64::INFINITY, f64::min);
    let measurement = Measurement {
        group: group.to_owned(),
        name: name.to_owned(),
        samples: n as u64,
        mean_ns: to_ns(&total) / n as f64,
        min_ns: if min_ns.is_finite() { min_ns } else { 0.0 },
        max_ns: b.samples.iter().map(to_ns).fold(0.0, f64::max),
        total_ns: to_ns(&total),
        elements_per_iter: throughput.map(Throughput::elements),
    };
    record(measurement.clone());
    measurement
}

/// Mirrors `criterion_group!`: bundles benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion_main!`: emits `main` for a `harness = false` bench.
/// After every group has run, the measurement registry is flushed to JSON
/// when `--save-baseline NAME` or `CRITERION_JSON=path` was given.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; ignore them.
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_record_timing_and_throughput() {
        let m = run_one("g", "spin", 3, Some(Throughput::Elements(1000)), |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()))
        });
        assert_eq!(m.samples, 3);
        assert!(m.mean_ns > 0.0);
        assert!(m.min_ns <= m.mean_ns && m.mean_ns <= m.max_ns);
        assert_eq!(m.elements_per_iter, Some(1000));
        assert!(m.elements_per_sec().unwrap() > 0.0);
        assert_eq!(m.id(), "g/spin");
        // The registry saw it too (other tests may interleave, so only
        // check presence).
        assert!(take_measurements().iter().any(|r| r.id() == "g/spin"));
    }

    #[test]
    fn json_serialisation_is_wellformed() {
        let m = Measurement {
            group: "cores".to_owned(),
            name: "dkip \"2048\"".to_owned(),
            samples: 2,
            mean_ns: 1.5e6,
            min_ns: 1.0e6,
            max_ns: 2.0e6,
            total_ns: 3.0e6,
            elements_per_iter: Some(42),
        };
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\\\"2048\\\""));
        assert!(json.contains("\"elements_per_iter\": 42"));
    }

    #[test]
    fn json_number_never_emits_non_finite_values() {
        assert_eq!(json_number(f64::NAN), "0");
        assert_eq!(json_number(f64::INFINITY), "0");
        assert_eq!(json_number(2.5), "2.5");
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
