//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this shim provides
//! just enough of the criterion 0.5 API for
//! `crates/bench/benches/paper_figures.rs` to compile and run: benchmark
//! groups, `sample_size`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. It times each benchmark with
//! `std::time::Instant` and prints mean wall-clock time per iteration —
//! no statistics, outlier analysis, or HTML reports.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { sample_size: 10 }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints the mean wall-clock time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to every benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` `sample_size` times, recording the wall-clock time of each run.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    let n = b.samples.len().max(1);
    let total: Duration = b.samples.iter().sum();
    println!("  {name}: {:?} mean over {n} samples", total / n as u32);
}

/// Mirrors `criterion_group!`: bundles benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion_main!`: emits `main` for a `harness = false` bench.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}
