//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim implements
//! just enough of proptest for `tests/property_tests.rs` and the
//! differential-fuzz harness in `tests/fuzz_differential.rs`: the `proptest!`
//! macro with an optional `#![proptest_config(..)]` header, range / tuple /
//! `any::<bool>()` / `collection::vec` / `Just` strategies, the composition
//! combinators `prop_map` and `prop_flat_map`, and the `prop_assert*`
//! macros. Unlike real proptest there is **no shrinking** and no persisted
//! failure seeds: each test runs `cases` deterministic pseudo-random inputs
//! (seeded per test name) and fails via plain `assert!` on the first
//! violation, printing the case number.

#![warn(missing_docs)]

use core::marker::PhantomData;
use core::ops::Range;

/// Runner configuration; mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic SplitMix64 generator driving input synthesis.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from the property's name so every property
    /// sees an independent but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A recipe for generating random test inputs; mirrors `proptest::Strategy`
/// minus shrinking.
pub trait Strategy {
    /// The input type this strategy produces.
    type Value;
    /// Draws one input from `rng`.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Mirrors `Strategy::prop_map`: transforms every drawn value with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map,
        }
    }

    /// Mirrors `Strategy::prop_flat_map`: feeds every drawn value into
    /// `flat_map` to build a second strategy, then draws from that. This is
    /// the combinator for dependent shapes ("pick a block count, then pick
    /// that many block lengths").
    fn prop_flat_map<S2, F>(self, flat_map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap {
            strategy: self,
            flat_map,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    strategy: S,
    flat_map: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.flat_map)(self.strategy.sample(rng)).sample(rng)
    }
}

/// Mirrors `proptest::strategy::Just`: a strategy that always yields a clone
/// of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy for "any value of `T`"; built by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

/// Mirrors `proptest::prelude::any::<T>()`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Collection strategies; mirrors `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Mirrors `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "vec strategy needs a non-empty size range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies; mirrors `proptest::sample`.
pub mod sample {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy producing in-order subsequences of a base vector; built by
    /// [`subsequence`].
    #[derive(Debug)]
    pub struct Subsequence<T> {
        items: Vec<T>,
        len: Range<usize>,
    }

    /// Mirrors `proptest::sample::subsequence(vec, size_range)`: draws a
    /// random subset of `items` of a size from `len`, preserving the
    /// original element order. (The real crate also accepts inclusive
    /// ranges; the shim only supports `Range<usize>`.)
    pub fn subsequence<T: Clone>(items: Vec<T>, len: Range<usize>) -> Subsequence<T> {
        assert!(!len.is_empty(), "subsequence needs a non-empty size range");
        assert!(
            len.end <= items.len() + 1,
            "subsequence cannot be longer than the base vector"
        );
        Subsequence { items, len }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.len.sample(rng);
            // Partial Fisher-Yates over the index list, then restore order.
            let mut indices: Vec<usize> = (0..self.items.len()).collect();
            for i in 0..n {
                let j = i + (rng.next_u64() as usize) % (indices.len() - i);
                indices.swap(i, j);
            }
            let mut chosen = indices[..n].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }
}

/// One-stop imports; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Mirrors `prop_assert!`: fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `prop_assert_eq!`: fails the current case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirrors the `proptest!` block macro: each contained function becomes a
/// `#[test]` that runs its body over `cases` pseudo-random inputs.
///
/// As with real proptest, every property inside the block must carry its own
/// `#[test]` attribute — the macro passes attributes through verbatim and
/// does not add one, so an unattributed fn compiles but never runs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let run = || {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                };
                if let Err(payload) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(run),
                ) {
                    eprintln!(
                        "proptest shim: property {} failed on case {}/{}",
                        stringify!($name), case + 1, config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}
