//! Minimal, dependency-free stand-in for the parts of the `rand` crate that
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so instead of the real
//! `rand` we vendor this shim. It deliberately mirrors the `rand 0.8` API
//! surface used by `dkip-trace` (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range`) so that swapping the real crate back in is a
//! one-line `Cargo.toml` change. The generator is SplitMix64 — statistically
//! solid for workload synthesis, deterministic for a given seed, and *not*
//! cryptographically secure.

#![warn(missing_docs)]

use core::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`u64`: uniform, `f64`: uniform in `[0, 1)`, `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open, `low..high`).
    ///
    /// The output type is a separate generic parameter (as in real rand 0.8)
    /// so that type inference can flow backwards from the call site.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types that can be sampled from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits -> uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types `Rng::gen_range` can produce.
pub trait SampleUniform: Sized {
    /// Draws a value uniformly from `[start, end)`.
    fn sample_between<R: RngCore>(start: Self, end: Self, rng: &mut R) -> Self;
}

/// Range shapes `Rng::gen_range` accepts for output type `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, rng)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(start: $t, end: $t, rng: &mut R) -> $t {
                let span = (end - start) as u64;
                assert!(span > 0, "cannot sample from empty range");
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, irrelevant for workload synthesis.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
