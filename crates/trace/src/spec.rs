//! Named benchmark profiles modelling the SPEC CPU2000 suite used by the
//! paper.
//!
//! Each [`Benchmark`] carries a [`WorkloadSpec`] describing the statistical
//! properties of that benchmark that matter for the paper's experiments.
//! The parameters are not calibrated against the real binaries (which are
//! not redistributable) but are chosen so that the well-known qualitative
//! behaviour of each program is reproduced: `mcf` chases pointers across a
//! huge working set, `swim`/`art` stream through arrays much larger than any
//! L2, `crafty`/`eon` mostly live in the cache, and so on.

use crate::mix::InstrMix;

/// Which SPEC2000 sub-suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint2000.
    Int,
    /// SPECfp2000.
    Fp,
}

impl Suite {
    /// Short display label ("SpecINT" / "SpecFP") used by the figure
    /// generators.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Suite::Int => "SpecINT",
            Suite::Fp => "SpecFP",
        }
    }
}

/// The 26 SPEC CPU2000 benchmarks named in Figures 13 and 14 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    // SPECint2000
    Bzip2,
    Crafty,
    Eon,
    Gap,
    Gcc,
    Gzip,
    Mcf,
    Parser,
    Perlbmk,
    Twolf,
    Vortex,
    Vpr,
    // SPECfp2000
    Ammp,
    Applu,
    Apsi,
    Art,
    Equake,
    Facerec,
    Fma3d,
    Galgel,
    Lucas,
    Mesa,
    Mgrid,
    Sixtrack,
    Swim,
    Wupwise,
}

impl Benchmark {
    /// All SPECint2000 benchmarks, in the order used by Figure 13.
    #[must_use]
    pub fn spec_int() -> Vec<Benchmark> {
        use Benchmark::*;
        vec![
            Bzip2, Crafty, Eon, Gap, Gcc, Gzip, Mcf, Parser, Perlbmk, Twolf, Vortex, Vpr,
        ]
    }

    /// All SPECfp2000 benchmarks, in the order used by Figure 14.
    #[must_use]
    pub fn spec_fp() -> Vec<Benchmark> {
        use Benchmark::*;
        vec![
            Ammp, Applu, Apsi, Art, Equake, Facerec, Fma3d, Galgel, Lucas, Mesa, Mgrid, Sixtrack,
            Swim, Wupwise,
        ]
    }

    /// The whole suite (integer benchmarks first).
    #[must_use]
    pub fn all() -> Vec<Benchmark> {
        let mut v = Self::spec_int();
        v.extend(Self::spec_fp());
        v
    }

    /// A small representative subset used by fast tests and example
    /// programs: one cache-friendly and one memory-bound benchmark from each
    /// suite.
    #[must_use]
    pub fn representative() -> Vec<Benchmark> {
        vec![
            Benchmark::Crafty,
            Benchmark::Mcf,
            Benchmark::Mesa,
            Benchmark::Swim,
        ]
    }

    /// The lower-case name used by SPEC and the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        use Benchmark::*;
        match self {
            Bzip2 => "bzip2",
            Crafty => "crafty",
            Eon => "eon",
            Gap => "gap",
            Gcc => "gcc",
            Gzip => "gzip",
            Mcf => "mcf",
            Parser => "parser",
            Perlbmk => "perlbmk",
            Twolf => "twolf",
            Vortex => "vortex",
            Vpr => "vpr",
            Ammp => "ammp",
            Applu => "applu",
            Apsi => "apsi",
            Art => "art",
            Equake => "equake",
            Facerec => "facerec",
            Fma3d => "fma3d",
            Galgel => "galgel",
            Lucas => "lucas",
            Mesa => "mesa",
            Mgrid => "mgrid",
            Sixtrack => "sixtrack",
            Swim => "swim",
            Wupwise => "wupwise",
        }
    }

    /// Which sub-suite the benchmark belongs to.
    #[must_use]
    pub fn suite(self) -> Suite {
        if Self::spec_int().contains(&self) {
            Suite::Int
        } else {
            Suite::Fp
        }
    }

    /// The workload specification used to synthesise this benchmark's
    /// instruction stream.
    #[must_use]
    pub fn spec(self) -> WorkloadSpec {
        use Benchmark::*;
        let base_int = WorkloadSpec {
            name: self.name(),
            suite: Suite::Int,
            mix: InstrMix::typical_int(),
            working_set_kb: 256,
            streaming_fraction: 0.45,
            pointer_chase_fraction: 0.15,
            random_fraction: 0.40,
            pointer_chains: 2,
            branch_bias: 0.94,
            data_dep_branch_fraction: 0.08,
            hot_fraction: 0.70,
            fp_value_load_fraction: 0.02,
            loop_body_size: 96,
            dep_distance_mean: 6.0,
        };
        let base_fp = WorkloadSpec {
            name: self.name(),
            suite: Suite::Fp,
            mix: InstrMix::typical_fp(),
            working_set_kb: 8 * 1024,
            streaming_fraction: 0.85,
            pointer_chase_fraction: 0.0,
            random_fraction: 0.15,
            pointer_chains: 0,
            branch_bias: 0.995,
            data_dep_branch_fraction: 0.005,
            hot_fraction: 0.55,
            fp_value_load_fraction: 0.75,
            loop_body_size: 160,
            dep_distance_mean: 10.0,
        };
        match self {
            // --- SPECint2000 ---------------------------------------------
            Bzip2 => WorkloadSpec {
                working_set_kb: 2 * 1024,
                streaming_fraction: 0.60,
                pointer_chase_fraction: 0.05,
                random_fraction: 0.35,
                branch_bias: 0.92,
                ..base_int
            },
            Crafty => WorkloadSpec {
                working_set_kb: 192,
                hot_fraction: 0.85,
                pointer_chase_fraction: 0.04,
                random_fraction: 0.50,
                streaming_fraction: 0.46,
                branch_bias: 0.91,
                data_dep_branch_fraction: 0.05,
                ..base_int
            },
            Eon => WorkloadSpec {
                working_set_kb: 96,
                hot_fraction: 0.85,
                streaming_fraction: 0.57,
                pointer_chase_fraction: 0.03,
                branch_bias: 0.96,
                fp_value_load_fraction: 0.15,
                ..base_int
            },
            Gap => WorkloadSpec {
                working_set_kb: 1024,
                streaming_fraction: 0.48,
                pointer_chase_fraction: 0.12,
                branch_bias: 0.95,
                ..base_int
            },
            Gcc => WorkloadSpec {
                working_set_kb: 1536,
                hot_fraction: 0.65,
                pointer_chase_fraction: 0.14,
                random_fraction: 0.46,
                streaming_fraction: 0.40,
                branch_bias: 0.93,
                data_dep_branch_fraction: 0.10,
                ..base_int
            },
            Gzip => WorkloadSpec {
                working_set_kb: 768,
                streaming_fraction: 0.65,
                pointer_chase_fraction: 0.02,
                random_fraction: 0.33,
                branch_bias: 0.90,
                ..base_int
            },
            Mcf => WorkloadSpec {
                // The canonical pointer chaser: a working set far beyond any
                // simulated L2 and long serial chains of dependent loads.
                working_set_kb: 48 * 1024,
                hot_fraction: 0.45,
                streaming_fraction: 0.15,
                pointer_chase_fraction: 0.55,
                random_fraction: 0.30,
                pointer_chains: 3,
                branch_bias: 0.92,
                data_dep_branch_fraction: 0.18,
                dep_distance_mean: 4.0,
                ..base_int
            },
            Parser => WorkloadSpec {
                working_set_kb: 6 * 1024,
                hot_fraction: 0.6,
                pointer_chase_fraction: 0.30,
                random_fraction: 0.40,
                streaming_fraction: 0.30,
                pointer_chains: 2,
                branch_bias: 0.92,
                data_dep_branch_fraction: 0.12,
                ..base_int
            },
            Perlbmk => WorkloadSpec {
                working_set_kb: 512,
                streaming_fraction: 0.42,
                pointer_chase_fraction: 0.18,
                branch_bias: 0.94,
                data_dep_branch_fraction: 0.09,
                ..base_int
            },
            Twolf => WorkloadSpec {
                working_set_kb: 1024,
                hot_fraction: 0.65,
                pointer_chase_fraction: 0.22,
                random_fraction: 0.48,
                streaming_fraction: 0.30,
                branch_bias: 0.90,
                data_dep_branch_fraction: 0.12,
                ..base_int
            },
            Vortex => WorkloadSpec {
                working_set_kb: 4 * 1024,
                streaming_fraction: 0.40,
                pointer_chase_fraction: 0.20,
                branch_bias: 0.96,
                ..base_int
            },
            Vpr => WorkloadSpec {
                working_set_kb: 2 * 1024,
                hot_fraction: 0.65,
                pointer_chase_fraction: 0.20,
                random_fraction: 0.45,
                streaming_fraction: 0.35,
                branch_bias: 0.91,
                data_dep_branch_fraction: 0.11,
                ..base_int
            },
            // --- SPECfp2000 ----------------------------------------------
            Ammp => WorkloadSpec {
                working_set_kb: 16 * 1024,
                streaming_fraction: 0.70,
                random_fraction: 0.28,
                pointer_chase_fraction: 0.02,
                pointer_chains: 1,
                ..base_fp
            },
            Applu => WorkloadSpec {
                working_set_kb: 32 * 1024,
                hot_fraction: 0.5,
                ..base_fp
            },
            Apsi => WorkloadSpec {
                working_set_kb: 8 * 1024,
                ..base_fp
            },
            Art => WorkloadSpec {
                // Tiny code, enormous streaming arrays, almost every load
                // misses the cache.
                working_set_kb: 64 * 1024,
                hot_fraction: 0.4,
                streaming_fraction: 0.92,
                random_fraction: 0.08,
                loop_body_size: 96,
                ..base_fp
            },
            Equake => WorkloadSpec {
                working_set_kb: 24 * 1024,
                hot_fraction: 0.5,
                streaming_fraction: 0.70,
                random_fraction: 0.30,
                ..base_fp
            },
            Facerec => WorkloadSpec {
                working_set_kb: 12 * 1024,
                ..base_fp
            },
            Fma3d => WorkloadSpec {
                working_set_kb: 24 * 1024,
                hot_fraction: 0.5,
                streaming_fraction: 0.75,
                random_fraction: 0.25,
                ..base_fp
            },
            Galgel => WorkloadSpec {
                working_set_kb: 12 * 1024,
                ..base_fp
            },
            Lucas => WorkloadSpec {
                working_set_kb: 48 * 1024,
                hot_fraction: 0.45,
                streaming_fraction: 0.90,
                random_fraction: 0.10,
                ..base_fp
            },
            Mesa => WorkloadSpec {
                // Mostly cache resident rendering pipeline.
                working_set_kb: 512,
                hot_fraction: 0.85,
                streaming_fraction: 0.70,
                random_fraction: 0.30,
                branch_bias: 0.97,
                fp_value_load_fraction: 0.5,
                ..base_fp
            },
            Mgrid => WorkloadSpec {
                working_set_kb: 40 * 1024,
                hot_fraction: 0.45,
                streaming_fraction: 0.93,
                random_fraction: 0.07,
                ..base_fp
            },
            Sixtrack => WorkloadSpec {
                working_set_kb: 1024,
                hot_fraction: 0.8,
                streaming_fraction: 0.80,
                random_fraction: 0.20,
                ..base_fp
            },
            Swim => WorkloadSpec {
                // Pure streaming over arrays far larger than the L2.
                working_set_kb: 96 * 1024,
                hot_fraction: 0.4,
                streaming_fraction: 0.95,
                random_fraction: 0.05,
                loop_body_size: 192,
                ..base_fp
            },
            Wupwise => WorkloadSpec {
                working_set_kb: 44 * 1024,
                hot_fraction: 0.5,
                streaming_fraction: 0.85,
                random_fraction: 0.15,
                ..base_fp
            },
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The statistical description of a benchmark's dynamic behaviour from which
/// its instruction stream is synthesised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// Which sub-suite the workload models.
    pub suite: Suite,
    /// Dynamic instruction mix.
    pub mix: InstrMix,
    /// Data working-set size in kilobytes. Together with the configured
    /// cache sizes this determines the L2 miss rate.
    pub working_set_kb: usize,
    /// Fraction of loads that stream through the working set with a fixed
    /// stride (spatial locality, prefetch friendly, independent of each
    /// other).
    pub streaming_fraction: f64,
    /// Fraction of loads whose address depends on the value returned by the
    /// previous load of the same chain (serial pointer chasing).
    pub pointer_chase_fraction: f64,
    /// Fraction of loads that touch a uniformly random location in the
    /// working set.
    pub random_fraction: f64,
    /// Number of independent pointer chains (more chains = more
    /// memory-level parallelism among the chasing loads).
    pub pointer_chains: usize,
    /// Probability that a regular (non-data-dependent) conditional branch
    /// follows its dominant direction; higher means more predictable.
    pub branch_bias: f64,
    /// Fraction of conditional branches whose outcome depends on a recently
    /// loaded value and is effectively random (the branches that become
    /// expensive when the load misses).
    pub data_dep_branch_fraction: f64,
    /// Fraction of non-pointer-chasing loads that access a small, hot,
    /// cache-resident region (stack, locals, hot data structures) and
    /// therefore hit in the L1/L2 regardless of the total working-set size.
    pub hot_fraction: f64,
    /// Fraction of loads whose destination is a floating-point register.
    pub fp_value_load_fraction: f64,
    /// Number of static instructions in the synthetic loop body.
    pub loop_body_size: usize,
    /// Mean register dependency distance (in instructions) between a value's
    /// producer and its consumers.
    pub dep_distance_mean: f64,
}

impl WorkloadSpec {
    /// Working-set size in bytes.
    #[must_use]
    pub fn working_set_bytes(&self) -> u64 {
        self.working_set_kb as u64 * 1024
    }

    /// Checks that all fractions are in range and the mix is valid.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let fracs = [
            self.streaming_fraction,
            self.pointer_chase_fraction,
            self.random_fraction,
            self.branch_bias,
            self.data_dep_branch_fraction,
            self.hot_fraction,
            self.fp_value_load_fraction,
        ];
        let load_split =
            self.streaming_fraction + self.pointer_chase_fraction + self.random_fraction;
        fracs.iter().all(|f| (0.0..=1.0).contains(f))
            && (load_split - 1.0).abs() < 1e-6
            && self.mix.is_valid()
            && self.working_set_kb > 0
            && self.loop_body_size >= 16
            && self.dep_distance_mean >= 1.0
            && (self.pointer_chase_fraction == 0.0 || self.pointer_chains > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_membership_matches_the_paper_figures() {
        assert_eq!(Benchmark::spec_int().len(), 12);
        assert_eq!(Benchmark::spec_fp().len(), 14);
        assert_eq!(Benchmark::all().len(), 26);
        assert_eq!(Benchmark::Mcf.suite(), Suite::Int);
        assert_eq!(Benchmark::Swim.suite(), Suite::Fp);
        assert_eq!(Suite::Int.label(), "SpecINT");
        assert_eq!(Suite::Fp.label(), "SpecFP");
    }

    #[test]
    fn every_spec_is_valid() {
        for bench in Benchmark::all() {
            let spec = bench.spec();
            assert!(
                spec.is_valid(),
                "{} spec is invalid: {spec:?}",
                bench.name()
            );
            assert_eq!(spec.suite, bench.suite(), "{}", bench.name());
            assert_eq!(spec.name, bench.name());
        }
    }

    #[test]
    fn names_are_unique_and_lowercase() {
        let mut names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
        for name in names {
            assert_eq!(name, name.to_lowercase());
        }
    }

    #[test]
    fn mcf_is_the_heaviest_pointer_chaser() {
        let mcf = Benchmark::Mcf.spec();
        for bench in Benchmark::all() {
            if bench != Benchmark::Mcf {
                assert!(mcf.pointer_chase_fraction >= bench.spec().pointer_chase_fraction);
            }
        }
        assert!(
            mcf.working_set_kb > 4 * 1024,
            "mcf must exceed the largest swept L2"
        );
    }

    #[test]
    fn fp_benchmarks_are_more_predictable_and_stream_more() {
        for bench in Benchmark::spec_fp() {
            let spec = bench.spec();
            assert!(spec.branch_bias >= 0.96, "{}", bench.name());
            assert!(spec.streaming_fraction >= 0.6, "{}", bench.name());
            assert!(spec.mix.fp_fraction() > 0.2, "{}", bench.name());
        }
    }

    #[test]
    fn int_benchmarks_have_no_fp_arithmetic() {
        for bench in Benchmark::spec_int() {
            assert_eq!(bench.spec().mix.fp_fraction(), 0.0, "{}", bench.name());
        }
    }

    #[test]
    fn representative_subset_spans_both_suites() {
        let reps = Benchmark::representative();
        assert!(reps.iter().any(|b| b.suite() == Suite::Int));
        assert!(reps.iter().any(|b| b.suite() == Suite::Fp));
        // It contains both a cache-resident and a memory-bound benchmark.
        assert!(reps.iter().any(|b| b.spec().working_set_kb <= 512));
        assert!(reps.iter().any(|b| b.spec().working_set_kb >= 16 * 1024));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::Wupwise.to_string(), "wupwise");
    }
}
