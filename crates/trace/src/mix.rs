//! Instruction-mix description and sampling.

use dkip_model::OpClass;

/// The fraction of each operation class in a workload's dynamic instruction
/// stream.
///
/// The fractions do not need to add to exactly 1.0 — they are normalised
/// when sampled — but they must all be non-negative and not all zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrMix {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of conditional branches.
    pub branch: f64,
    /// Fraction of integer ALU operations.
    pub int_alu: f64,
    /// Fraction of integer multiplies.
    pub int_mul: f64,
    /// Fraction of FP adds.
    pub fp_add: f64,
    /// Fraction of FP multiplies.
    pub fp_mul: f64,
    /// Fraction of FP divides.
    pub fp_div: f64,
}

impl InstrMix {
    /// A typical integer-benchmark mix: no FP, many branches and loads.
    #[must_use]
    pub fn typical_int() -> Self {
        InstrMix {
            load: 0.26,
            store: 0.10,
            branch: 0.16,
            int_alu: 0.46,
            int_mul: 0.02,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
        }
    }

    /// A typical floating-point-benchmark mix: fewer branches, plenty of FP
    /// arithmetic.
    #[must_use]
    pub fn typical_fp() -> Self {
        InstrMix {
            load: 0.28,
            store: 0.09,
            branch: 0.04,
            int_alu: 0.22,
            int_mul: 0.01,
            fp_add: 0.20,
            fp_mul: 0.14,
            fp_div: 0.02,
        }
    }

    /// The total weight across all classes.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.load
            + self.store
            + self.branch
            + self.int_alu
            + self.int_mul
            + self.fp_add
            + self.fp_mul
            + self.fp_div
    }

    /// Whether all fractions are non-negative and at least one is positive.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let all = [
            self.load,
            self.store,
            self.branch,
            self.int_alu,
            self.int_mul,
            self.fp_add,
            self.fp_mul,
            self.fp_div,
        ];
        all.iter().all(|&f| f >= 0.0 && f.is_finite()) && self.total() > 0.0
    }

    /// The weight assigned to `class` (Nop has weight zero).
    #[must_use]
    pub fn weight(&self, class: OpClass) -> f64 {
        match class {
            OpClass::Load => self.load,
            OpClass::Store => self.store,
            OpClass::Branch => self.branch,
            OpClass::IntAlu => self.int_alu,
            OpClass::IntMul => self.int_mul,
            OpClass::FpAdd => self.fp_add,
            OpClass::FpMul => self.fp_mul,
            OpClass::FpDiv => self.fp_div,
            OpClass::Nop => 0.0,
        }
    }

    /// Picks an operation class given a uniform random value in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if the mix is not [valid](Self::is_valid).
    #[must_use]
    pub fn sample(&self, uniform: f64) -> OpClass {
        assert!(self.is_valid(), "instruction mix must be valid");
        let target = uniform.clamp(0.0, 1.0) * self.total();
        let mut acc = 0.0;
        for class in [
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch,
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::FpAdd,
            OpClass::FpMul,
            OpClass::FpDiv,
        ] {
            acc += self.weight(class);
            if target < acc {
                return class;
            }
        }
        OpClass::IntAlu
    }

    /// Fraction of instructions that are FP arithmetic.
    #[must_use]
    pub fn fp_fraction(&self) -> f64 {
        (self.fp_add + self.fp_mul + self.fp_div) / self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_mixes_are_valid() {
        assert!(InstrMix::typical_int().is_valid());
        assert!(InstrMix::typical_fp().is_valid());
        assert!((InstrMix::typical_int().total() - 1.0).abs() < 0.01);
        assert!((InstrMix::typical_fp().total() - 1.0).abs() < 0.01);
    }

    #[test]
    fn int_mix_has_no_fp() {
        assert_eq!(InstrMix::typical_int().fp_fraction(), 0.0);
        assert!(InstrMix::typical_fp().fp_fraction() > 0.3);
    }

    #[test]
    fn sample_covers_all_weighted_classes() {
        let mix = InstrMix::typical_fp();
        let mut seen = std::collections::HashSet::new();
        let n = 10_000;
        for i in 0..n {
            seen.insert(mix.sample(i as f64 / n as f64));
        }
        assert!(seen.contains(&OpClass::Load));
        assert!(seen.contains(&OpClass::FpAdd));
        assert!(seen.contains(&OpClass::Branch));
        assert!(!seen.contains(&OpClass::Nop));
    }

    #[test]
    fn sample_frequencies_track_weights() {
        let mix = InstrMix::typical_int();
        let n = 100_000;
        let loads = (0..n)
            .filter(|&i| mix.sample(i as f64 / n as f64) == OpClass::Load)
            .count();
        let frac = loads as f64 / n as f64;
        assert!((frac - 0.26).abs() < 0.02, "load fraction {frac}");
    }

    #[test]
    fn invalid_mixes_are_detected() {
        let mut mix = InstrMix::typical_int();
        mix.load = -0.1;
        assert!(!mix.is_valid());
        let zero = InstrMix {
            load: 0.0,
            store: 0.0,
            branch: 0.0,
            int_alu: 0.0,
            int_mul: 0.0,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
        };
        assert!(!zero.is_valid());
    }

    #[test]
    fn extreme_uniform_values_are_clamped() {
        let mix = InstrMix::typical_int();
        let _ = mix.sample(0.0);
        let _ = mix.sample(0.999_999);
        let _ = mix.sample(1.0);
    }
}
