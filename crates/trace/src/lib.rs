//! Synthetic SPEC CPU2000-like workload generators for the D-KIP
//! reproduction.
//!
//! The paper evaluates its processors on SPEC CPU2000 Alpha binaries run
//! under SimpleScalar with 200M-instruction SimPoints. Those binaries and
//! traces are not redistributable, so this crate substitutes **statistical
//! workload generators**: for each of the 26 SPEC2000 benchmarks named in
//! the paper's figures there is a [`spec::WorkloadSpec`] describing the
//! properties the paper's conclusions depend on —
//!
//! * the instruction mix (loads, stores, branches, integer and FP
//!   arithmetic),
//! * the data working-set size and the access patterns of loads (streaming /
//!   strided, pointer chasing, random), which together with the configured
//!   cache hierarchy determine how many loads become *long-latency* events,
//! * branch behaviour: predictable loop/biased branches versus
//!   data-dependent branches whose outcome depends on a recently loaded
//!   value (the SpecINT pathology highlighted in Section 2 of the paper),
//! * the register dependency structure (how far back sources reach).
//!
//! A [`template::ProgramTemplate`] is synthesised from the spec — a static
//! loop nest with fixed PCs, registers and per-static-load address
//! behaviours — and the [`generator::TraceGenerator`] walks that template to
//! produce the dynamic [`dkip_model::MicroOp`] stream consumed by the core
//! models. Using a static template means branch predictors and caches see
//! realistic re-reference behaviour rather than white noise.
//!
//! # Example
//!
//! ```
//! use dkip_trace::{Benchmark, TraceGenerator};
//!
//! let mut gen = TraceGenerator::new(Benchmark::Mcf, 42);
//! let ops: Vec<_> = gen.by_ref().take(1000).collect();
//! assert_eq!(ops.len(), 1000);
//! assert!(ops.iter().all(|op| op.is_well_formed()));
//! // mcf is a pointer-chasing integer benchmark: it has loads and branches.
//! assert!(ops.iter().any(|op| op.is_load()));
//! assert!(ops.iter().any(|op| op.class.is_branch()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generator;
pub mod mix;
pub mod spec;
pub mod template;

pub use generator::TraceGenerator;
pub use mix::InstrMix;
pub use spec::{Benchmark, Suite, WorkloadSpec};
pub use template::ProgramTemplate;
