//! The dynamic trace generator.
//!
//! [`TraceGenerator`] walks a [`ProgramTemplate`] iteration after iteration
//! and produces the dynamic [`MicroOp`] stream: static loads get concrete
//! effective addresses according to their [`AddressPattern`], static
//! branches get resolved directions according to their [`BranchBehavior`],
//! and every emitted micro-op receives a dense dynamic sequence number.

use crate::spec::{Benchmark, WorkloadSpec};
use crate::template::{AddressPattern, BranchBehavior, ProgramTemplate, Region};
use dkip_model::{BranchInfo, BranchKind, MicroOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base virtual address of the synthetic data segment.
const DATA_BASE: u64 = 0x1000_0000;
/// Each streaming stream owns a region this far from its neighbours.
const STREAM_REGION_GAP: u64 = 1 << 30;
/// Base virtual address of the hot, cache-resident region.
const HOT_BASE: u64 = 0x7fff_0000;
/// Size of the hot region in bytes; small enough to fit in the 32 KB L1.
const HOT_REGION_BYTES: u64 = 16 * 1024;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An infinite iterator of dynamic micro-ops for one benchmark.
///
/// The stream is fully deterministic for a given `(benchmark, seed)` pair.
///
/// # Example
///
/// ```
/// use dkip_trace::{Benchmark, TraceGenerator};
///
/// let a: Vec<_> = TraceGenerator::new(Benchmark::Swim, 1).take(100).collect();
/// let b: Vec<_> = TraceGenerator::new(Benchmark::Swim, 1).take(100).collect();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    template: ProgramTemplate,
    rng: StdRng,
    seq: u64,
    index: usize,
    iteration: u64,
    stream_cursors: Vec<u64>,
    stream_bases: Vec<u64>,
    chain_states: Vec<u64>,
    working_set: u64,
}

impl TraceGenerator {
    /// Creates a generator for `benchmark` with the given seed.
    #[must_use]
    pub fn new(benchmark: Benchmark, seed: u64) -> Self {
        Self::from_spec(benchmark.spec(), seed)
    }

    /// Creates a generator from an explicit workload specification.
    ///
    /// # Panics
    ///
    /// Panics if the spec is not valid.
    #[must_use]
    pub fn from_spec(spec: WorkloadSpec, seed: u64) -> Self {
        let template = ProgramTemplate::generate(spec, seed);
        Self::from_template(template, seed)
    }

    /// Creates a generator that walks an already-built template.
    #[must_use]
    pub fn from_template(template: ProgramTemplate, seed: u64) -> Self {
        let spec = *template.spec();
        let num_streams = template.num_streams();
        let num_chains = template.num_chains().max(1);
        let working_set = spec.working_set_bytes();
        let stream_bases = (0..num_streams)
            .map(|s| DATA_BASE + s as u64 * STREAM_REGION_GAP)
            .collect();
        let chain_states = (0..num_chains)
            .map(|c| {
                seed.wrapping_mul(0x5851_f42d_4c95_7f2d)
                    .wrapping_add(c as u64 + 1)
            })
            .collect();
        TraceGenerator {
            template,
            rng: StdRng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03),
            seq: 0,
            index: 0,
            iteration: 0,
            stream_cursors: vec![0; num_streams],
            stream_bases,
            chain_states,
            working_set,
        }
    }

    /// The workload specification driving this generator.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        self.template.spec()
    }

    /// The static template being walked.
    #[must_use]
    pub fn template(&self) -> &ProgramTemplate {
        &self.template
    }

    /// How many loop iterations have been completed so far.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iteration
    }

    /// Functionally fast-forwards `n` micro-ops, returning `n` (the
    /// synthetic stream never ends).
    ///
    /// This is the generator's cheap mode for sampled simulation: the
    /// template walk, RNG draws, stream cursors and chain states advance
    /// exactly as if the ops had been consumed, so the ops emitted after a
    /// skip — sequence numbers included — are bit-identical to the ops an
    /// uninterrupted generator would produce at the same positions.
    ///
    /// (Named `fast_forward` rather than `skip` so it cannot collide with
    /// the by-value [`Iterator::skip`] adapter during method resolution.)
    pub fn fast_forward(&mut self, n: u64) -> u64 {
        for _ in 0..n {
            let _ = self.next();
        }
        n
    }

    fn region_span(&self, region: Region) -> (u64, u64) {
        match region {
            Region::Hot => (HOT_BASE, HOT_REGION_BYTES),
            Region::Full => (DATA_BASE, self.working_set.max(64)),
        }
    }

    fn next_address(&mut self, pattern: AddressPattern) -> u64 {
        match pattern {
            AddressPattern::Streaming {
                stream,
                stride,
                region,
            } => {
                let cursor = &mut self.stream_cursors[stream];
                let offset = *cursor * stride;
                *cursor += 1;
                match region {
                    Region::Hot => HOT_BASE + offset % HOT_REGION_BYTES,
                    Region::Full => {
                        self.stream_bases[stream] + offset % self.working_set.max(stride)
                    }
                }
            }
            AddressPattern::PointerChase { chain } => {
                let idx = chain % self.chain_states.len();
                let raw = splitmix64(&mut self.chain_states[idx]);
                // Pointer-sized aligned slot somewhere in the working set.
                DATA_BASE + (raw % self.working_set.max(64)) / 8 * 8
            }
            AddressPattern::Random { region } => {
                let (base, span) = self.region_span(region);
                let raw: u64 = self.rng.gen();
                base + (raw % span) / 8 * 8
            }
        }
    }

    fn next_branch(&mut self, behavior: BranchBehavior, pc: u64) -> BranchInfo {
        match behavior {
            BranchBehavior::LoopBack => BranchInfo {
                kind: BranchKind::Conditional,
                taken: true,
                target: self.template.loop_target(),
            },
            BranchBehavior::Biased {
                bias,
                dominant_taken,
            } => {
                let follow = self.rng.gen::<f64>() < bias;
                BranchInfo {
                    kind: BranchKind::Conditional,
                    taken: follow == dominant_taken,
                    target: pc + 16,
                }
            }
            BranchBehavior::DataDependent => BranchInfo {
                kind: BranchKind::Conditional,
                taken: self.rng.gen::<bool>(),
                target: pc + 16,
            },
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        let static_instr = self.template.instrs()[self.index].clone();
        let pc = static_instr.pc;
        let class = static_instr.class;
        let mut op = MicroOp::new(self.seq, pc, class);
        op.dst = static_instr.dst;
        op.srcs = static_instr.srcs;

        if let Some(pattern) = static_instr.address {
            op.mem_addr = Some(self.next_address(pattern));
        }
        if let Some(behavior) = static_instr.branch {
            op.branch = Some(self.next_branch(behavior, pc));
        }

        self.seq += 1;
        self.index += 1;
        if self.index >= self.template.instrs().len() {
            self.index = 0;
            self.iteration += 1;
        }
        debug_assert!(op.is_well_formed(), "generated malformed micro-op: {op}");
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkip_model::RegClass;
    use std::collections::HashSet;

    #[test]
    fn sequence_numbers_are_dense() {
        let ops: Vec<_> = TraceGenerator::new(Benchmark::Gzip, 3).take(500).collect();
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.seq, i as u64);
        }
    }

    #[test]
    fn all_generated_ops_are_well_formed() {
        for bench in Benchmark::all() {
            let gen = TraceGenerator::new(bench, 1);
            for op in gen.take(2000) {
                assert!(op.is_well_formed(), "{}: {op}", bench.name());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<_> = TraceGenerator::new(Benchmark::Mcf, 99).take(3000).collect();
        let b: Vec<_> = TraceGenerator::new(Benchmark::Mcf, 99).take(3000).collect();
        assert_eq!(a, b);
        let c: Vec<_> = TraceGenerator::new(Benchmark::Mcf, 100)
            .take(3000)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn instruction_mix_roughly_matches_spec() {
        // A single template is only ~200 static instructions, so average the
        // dynamic mix over several template seeds before comparing against
        // the target mix.
        let bench = Benchmark::Swim;
        let spec = bench.spec();
        let n = 20_000;
        let seeds = [1u64, 2, 3, 4, 5, 6];
        let mut loads = 0usize;
        let mut branches = 0usize;
        for &seed in &seeds {
            let ops: Vec<_> = TraceGenerator::new(bench, seed).take(n).collect();
            loads += ops.iter().filter(|o| o.is_load()).count();
            branches += ops.iter().filter(|o| o.class.is_branch()).count();
        }
        let total = (n * seeds.len()) as f64;
        let load_frac = loads as f64 / total;
        let branch_frac = branches as f64 / total;
        let expected_loads = spec.mix.load / spec.mix.total();
        assert!(
            (load_frac - expected_loads).abs() < 0.06,
            "load fraction {load_frac} vs expected {expected_loads}"
        );
        assert!(
            branch_frac > 0.01,
            "loop-back branches guarantee a branch per iteration"
        );
    }

    #[test]
    fn streaming_loads_have_spatial_locality() {
        // Consecutive executions of the same static streaming load touch
        // nearby addresses, so the number of distinct cache lines is far
        // smaller than the number of loads for a streaming benchmark.
        let ops: Vec<_> = TraceGenerator::new(Benchmark::Swim, 5)
            .take(20_000)
            .collect();
        let load_addrs: Vec<u64> = ops.iter().filter_map(|o| o.mem_addr).collect();
        let lines: HashSet<u64> = load_addrs.iter().map(|a| a / 64).collect();
        assert!(
            lines.len() * 2 < load_addrs.len(),
            "streaming should reuse cache lines: {} lines for {} accesses",
            lines.len(),
            load_addrs.len()
        );
    }

    #[test]
    fn pointer_chase_addresses_are_spread_over_the_working_set() {
        let spec = Benchmark::Mcf.spec();
        let ops: Vec<_> = TraceGenerator::new(Benchmark::Mcf, 5)
            .take(50_000)
            .collect();
        let chase_addrs: Vec<u64> = ops
            .iter()
            .filter(|o| {
                o.is_load() && o.dst == o.srcs[0] && o.dst.map(|d| d.class()) == Some(RegClass::Int)
            })
            .filter_map(|o| o.mem_addr)
            .collect();
        assert!(!chase_addrs.is_empty());
        let min = *chase_addrs.iter().min().unwrap();
        let max = *chase_addrs.iter().max().unwrap();
        assert!(
            max - min > spec.working_set_bytes() / 2,
            "chase addresses should span the working set"
        );
    }

    #[test]
    fn loop_back_branches_are_always_taken_to_the_loop_start() {
        let gen = TraceGenerator::new(Benchmark::Mesa, 2);
        let loop_target = gen.template().loop_target();
        let body = gen.template().instrs().len();
        let ops: Vec<_> = gen.take(body * 10).collect();
        let backs: Vec<_> = ops
            .iter()
            .filter(|o| o.branch.map(|b| b.target) == Some(loop_target))
            .collect();
        assert_eq!(backs.len(), 10, "one loop-back per iteration");
        assert!(backs.iter().all(|o| o.branch.unwrap().taken));
    }

    #[test]
    fn fp_branches_are_mostly_predictable_and_int_branches_less_so() {
        let count_taken_variation = |bench: Benchmark| {
            let ops: Vec<_> = TraceGenerator::new(bench, 3).take(40_000).collect();
            // Fraction of conditional branches (excluding the loop-back) that
            // deviate from their per-PC majority direction.
            use std::collections::HashMap;
            let mut per_pc: HashMap<u64, (u64, u64)> = HashMap::new();
            for op in ops.iter().filter(|o| o.is_conditional_branch()) {
                let entry = per_pc.entry(op.pc).or_default();
                if op.branch.unwrap().taken {
                    entry.0 += 1;
                } else {
                    entry.1 += 1;
                }
            }
            let mut minority = 0u64;
            let mut total = 0u64;
            for (taken, not_taken) in per_pc.values() {
                minority += taken.min(not_taken);
                total += taken + not_taken;
            }
            minority as f64 / total as f64
        };
        let fp_dev = count_taken_variation(Benchmark::Swim);
        let int_dev = count_taken_variation(Benchmark::Mcf);
        assert!(
            fp_dev < 0.02,
            "SpecFP branches nearly perfectly biased, got {fp_dev}"
        );
        assert!(
            int_dev > fp_dev,
            "SpecINT branches must be harder: {int_dev} vs {fp_dev}"
        );
    }

    #[test]
    fn skip_positions_the_stream_bit_identically() {
        for bench in [Benchmark::Swim, Benchmark::Mcf] {
            let mut skipped = TraceGenerator::new(bench, 7);
            let mut consumed = TraceGenerator::new(bench, 7);
            assert_eq!(skipped.fast_forward(4_321), 4_321);
            for _ in 0..4_321 {
                consumed.next();
            }
            let a: Vec<_> = skipped.by_ref().take(500).collect();
            let b: Vec<_> = consumed.by_ref().take(500).collect();
            assert_eq!(a, b, "{}: post-skip ops must match", bench.name());
            assert_eq!(a[0].seq, 4_321, "sequence numbers stay dense");
        }
    }

    #[test]
    fn iterations_counter_advances() {
        let mut gen = TraceGenerator::new(Benchmark::Crafty, 1);
        let body = gen.template().instrs().len();
        for _ in 0..body * 3 {
            gen.next();
        }
        assert_eq!(gen.iterations(), 3);
    }
}
