//! Static program templates.
//!
//! A [`ProgramTemplate`] is a synthetic "static program": a loop body with
//! fixed program counters, register assignments and per-instruction
//! behaviours, generated once per benchmark from its [`WorkloadSpec`]. The
//! dynamic trace is produced by walking the template repeatedly (see
//! [`crate::generator::TraceGenerator`]); only data-dependent aspects
//! (addresses, branch outcomes) change between iterations.
//!
//! Generating a static template rather than sampling every dynamic
//! instruction independently gives the simulated caches and branch
//! predictors realistic re-reference behaviour: the same static load misses
//! again and again, the same loop branch is learned by the predictor, and
//! dependency slices have a stable shape — exactly the structure the
//! paper's execution-locality argument relies on.
//!
//! Two structural properties of real loops are modelled explicitly because
//! the paper's results depend on them:
//!
//! * **Iteration independence.** SpecFP loop bodies are overwhelmingly
//!   data-parallel (`a[i] = b[i] + c[i]`): values produced in one iteration
//!   are rarely consumed by the next. Sources are therefore drawn from
//!   values produced *earlier in the same iteration* except for a small
//!   loop-carried fraction (accumulators, induction variables). Without
//!   this, accidental cross-iteration chains serialise the whole program.
//! * **Cheap address computation.** Streaming accesses are indexed by an
//!   induction variable that is a one-cycle integer add per iteration, so a
//!   load's issue never waits on an unrelated cache miss through its address
//!   register — only pointer-chasing loads have expensive address
//!   dependences.

use crate::spec::{Suite, WorkloadSpec};
use dkip_model::{ArchReg, OpClass, RegClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which part of the address space a non-pointer-chasing access touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// A small, hot, cache-resident region (stack, locals, hot structures).
    Hot,
    /// The full working set of the benchmark.
    Full,
}

/// The address behaviour of one static load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressPattern {
    /// Walks its region with a fixed stride; `stream` selects one of the
    /// independent streams of the benchmark.
    Streaming {
        /// Which stream this access belongs to.
        stream: usize,
        /// Stride in bytes between successive accesses of this static
        /// instruction.
        stride: u64,
        /// Which region the stream walks.
        region: Region,
    },
    /// Follows a pointer chain: the address of execution *n+1* depends on
    /// the value loaded by execution *n* of the same chain.
    PointerChase {
        /// Which chain this access belongs to.
        chain: usize,
    },
    /// Touches a uniformly random location in its region.
    Random {
        /// Which region the access falls in.
        region: Region,
    },
}

/// The direction behaviour of one static conditional branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BranchBehavior {
    /// The backward branch that closes the loop body; always taken.
    LoopBack,
    /// A branch with a dominant direction followed with probability
    /// `bias`; learnable by any dynamic predictor.
    Biased {
        /// Probability of following the dominant direction.
        bias: f64,
        /// The dominant direction (true = taken).
        dominant_taken: bool,
    },
    /// A branch whose outcome depends on loaded data and is effectively
    /// random — the branches that become catastrophic when the data they
    /// depend on missed the cache (Section 2 of the paper).
    DataDependent,
}

/// One static instruction of the template.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticInstr {
    /// Program counter (fixed across iterations).
    pub pc: u64,
    /// Operation class.
    pub class: OpClass,
    /// Destination register, if any.
    pub dst: Option<ArchReg>,
    /// Source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Address behaviour (loads and stores only).
    pub address: Option<AddressPattern>,
    /// Branch behaviour (branches only).
    pub branch: Option<BranchBehavior>,
}

/// A synthetic static loop body for one benchmark.
#[derive(Debug, Clone)]
pub struct ProgramTemplate {
    spec: WorkloadSpec,
    instrs: Vec<StaticInstr>,
    num_streams: usize,
    code_base: u64,
}

/// Number of independent streaming address streams a template may use.
const MAX_STREAMS: usize = 8;
/// Integer registers reserved for pointer-chain heads (r24, r25, …).
const CHAIN_REG_BASE: u8 = 24;
/// The loop induction register: written once per iteration by a one-cycle
/// integer add, read by every streaming access.
const INDUCTION_REG: u8 = 30;
/// An integer register that is never written (a constant), used as a cheap
/// always-ready source.
const CONST_INT_REG: u8 = 0;
/// A floating-point register that is never written (a constant).
const CONST_FP_REG: u8 = 31;
/// Base virtual address of the synthetic code segment.
const CODE_BASE: u64 = 0x0040_0000;

/// Picks a register from `pool` with a geometric recency bias (newer values
/// are more likely).
fn pick_recent(rng: &mut StdRng, pool: &[ArchReg], mean: f64) -> ArchReg {
    let len = pool.len();
    debug_assert!(len > 0);
    let mut dist = 0usize;
    let p = 1.0 / mean.max(1.0);
    while dist + 1 < len && rng.gen::<f64>() > p {
        dist += 1;
    }
    pool[len - 1 - dist]
}

impl ProgramTemplate {
    /// Synthesises a template for `spec`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is not [valid](WorkloadSpec::is_valid).
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn generate(spec: WorkloadSpec, seed: u64) -> Self {
        assert!(spec.is_valid(), "workload spec must be valid: {spec:?}");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let n = spec.loop_body_size;
        let mut instrs = Vec::with_capacity(n);

        // Fraction of sources allowed to reach values produced in a previous
        // iteration (loop-carried dependences): small for data-parallel FP
        // loops, larger for irregular integer code.
        let carried_frac = match spec.suite {
            Suite::Int => 0.25,
            Suite::Fp => 0.05,
        };

        // Rotating destination-register allocators. Integer registers
        // r1..r23 are general purpose; r24..r29 are reserved for pointer
        // chains, r30 is the induction variable and r0 is the constant-zero
        // register.
        let mut next_int: u8 = 1;
        let mut next_fp: u8 = 0;
        let alloc_int = |next_int: &mut u8| {
            let reg = ArchReg::int(*next_int);
            *next_int += 1;
            if *next_int >= CHAIN_REG_BASE {
                *next_int = 1;
            }
            reg
        };
        let alloc_fp = |next_fp: &mut u8| {
            let reg = ArchReg::fp(*next_fp);
            *next_fp = (*next_fp + 1) % CONST_FP_REG;
            reg
        };

        // `recent_*` may contain values from the previous iteration (the
        // template wraps); `iter_*` only contains values produced so far in
        // the current iteration.
        let mut recent_int: Vec<ArchReg> = vec![ArchReg::int(CONST_INT_REG)];
        let mut recent_fp: Vec<ArchReg> = vec![ArchReg::fp(CONST_FP_REG)];
        let mut iter_int: Vec<ArchReg> = vec![ArchReg::int(CONST_INT_REG)];
        let mut iter_fp: Vec<ArchReg> = vec![ArchReg::fp(CONST_FP_REG)];
        let mut recent_load_dsts: Vec<ArchReg> = Vec::new();
        let mut recent_cold_load_dsts: Vec<ArchReg> = Vec::new();
        let mut chase_cursor = 0usize;
        let num_chains = spec
            .pointer_chains
            .min(6)
            .max(usize::from(spec.pointer_chase_fraction > 0.0));

        for i in 0..n {
            let pc = CODE_BASE + (i as u64) * 4;
            let is_first = i == 0;
            let is_last = i == n - 1;
            let class = if is_first {
                OpClass::IntAlu
            } else if is_last {
                OpClass::Branch
            } else {
                spec.mix.sample(rng.gen::<f64>())
            };

            // Source selection: mostly iteration-local, occasionally
            // loop-carried.
            let pick_int = |rng: &mut StdRng, iter_pool: &[ArchReg], recent_pool: &[ArchReg]| {
                if rng.gen::<f64>() < carried_frac || iter_pool.len() <= 1 {
                    pick_recent(rng, recent_pool, spec.dep_distance_mean)
                } else {
                    pick_recent(rng, iter_pool, spec.dep_distance_mean)
                }
            };

            let instr = match class {
                OpClass::IntAlu if is_first => {
                    // The loop induction update: i = i + 1 (one-cycle chain
                    // across iterations).
                    let ind = ArchReg::int(INDUCTION_REG);
                    recent_int.push(ind);
                    iter_int.push(ind);
                    StaticInstr {
                        pc,
                        class: OpClass::IntAlu,
                        dst: Some(ind),
                        srcs: [Some(ind), None],
                        address: None,
                        branch: None,
                    }
                }
                OpClass::Load => {
                    let r: f64 = rng.gen();
                    if r < spec.pointer_chase_fraction && num_chains > 0 {
                        // p = p->next: the chain register is both the address
                        // source and the destination, creating a serial
                        // dependence through iterations.
                        let chain = chase_cursor % num_chains;
                        chase_cursor += 1;
                        let reg = ArchReg::int(CHAIN_REG_BASE + chain as u8);
                        recent_int.push(reg);
                        iter_int.push(reg);
                        recent_load_dsts.push(reg);
                        recent_cold_load_dsts.push(reg);
                        StaticInstr {
                            pc,
                            class,
                            dst: Some(reg),
                            srcs: [Some(reg), None],
                            address: Some(AddressPattern::PointerChase { chain }),
                            branch: None,
                        }
                    } else {
                        let streaming = r < spec.pointer_chase_fraction + spec.streaming_fraction;
                        let region = if rng.gen::<f64>() < spec.hot_fraction {
                            Region::Hot
                        } else {
                            Region::Full
                        };
                        let fp_value = rng.gen::<f64>() < spec.fp_value_load_fraction;
                        let address = if streaming {
                            AddressPattern::Streaming {
                                stream: rng.gen_range(0..MAX_STREAMS),
                                stride: *[8u64, 8, 16, 64].get(rng.gen_range(0..4)).unwrap_or(&8),
                                region,
                            }
                        } else {
                            AddressPattern::Random { region }
                        };
                        // Streaming accesses are indexed by the induction
                        // variable (cheap); random accesses may use a
                        // computed index.
                        let addr_src = if streaming {
                            ArchReg::int(INDUCTION_REG)
                        } else {
                            pick_int(&mut rng, &iter_int, &recent_int)
                        };
                        let dst = if fp_value {
                            alloc_fp(&mut next_fp)
                        } else {
                            alloc_int(&mut next_int)
                        };
                        if dst.class() == RegClass::Fp {
                            recent_fp.push(dst);
                            iter_fp.push(dst);
                        } else {
                            recent_int.push(dst);
                            iter_int.push(dst);
                        }
                        recent_load_dsts.push(dst);
                        if region == Region::Full {
                            recent_cold_load_dsts.push(dst);
                        }
                        StaticInstr {
                            pc,
                            class,
                            dst: Some(dst),
                            srcs: [Some(addr_src), None],
                            address: Some(address),
                            branch: None,
                        }
                    }
                }
                OpClass::Store => {
                    // Stores mostly write hot, cache-resident locations
                    // (stack, output arrays); streaming stores are indexed by
                    // the induction variable.
                    let region = if rng.gen::<f64>() < spec.hot_fraction.max(0.5) {
                        Region::Hot
                    } else {
                        Region::Full
                    };
                    let streaming = rng.gen::<f64>() < spec.streaming_fraction;
                    let address = if streaming {
                        AddressPattern::Streaming {
                            stream: rng.gen_range(0..MAX_STREAMS),
                            stride: 8,
                            region,
                        }
                    } else {
                        AddressPattern::Random { region }
                    };
                    let value_src = if spec.suite == Suite::Fp && rng.gen::<f64>() < 0.6 {
                        pick_recent(&mut rng, &iter_fp, spec.dep_distance_mean)
                    } else {
                        pick_int(&mut rng, &iter_int, &recent_int)
                    };
                    let addr_src = if streaming {
                        ArchReg::int(INDUCTION_REG)
                    } else {
                        pick_int(&mut rng, &iter_int, &recent_int)
                    };
                    StaticInstr {
                        pc,
                        class,
                        dst: None,
                        srcs: [Some(value_src), Some(addr_src)],
                        address: Some(address),
                        branch: None,
                    }
                }
                OpClass::Branch => {
                    let behavior = if is_last {
                        BranchBehavior::LoopBack
                    } else if rng.gen::<f64>() < spec.data_dep_branch_fraction
                        && !recent_load_dsts.is_empty()
                    {
                        BranchBehavior::DataDependent
                    } else {
                        BranchBehavior::Biased {
                            bias: spec.branch_bias,
                            dominant_taken: rng.gen::<f64>() < 0.6,
                        }
                    };
                    let src = match behavior {
                        BranchBehavior::DataDependent => {
                            // Prefer a value loaded from the cold working set
                            // (the expensive case the paper highlights),
                            // otherwise any recently loaded value.
                            *recent_cold_load_dsts
                                .iter()
                                .rev()
                                .find(|r| r.class() == RegClass::Int)
                                .or_else(|| {
                                    recent_load_dsts
                                        .iter()
                                        .rev()
                                        .find(|r| r.class() == RegClass::Int)
                                })
                                .unwrap_or(&ArchReg::int(CONST_INT_REG))
                        }
                        BranchBehavior::LoopBack => ArchReg::int(INDUCTION_REG),
                        BranchBehavior::Biased { .. } => pick_int(&mut rng, &iter_int, &recent_int),
                    };
                    StaticInstr {
                        pc,
                        class,
                        dst: None,
                        srcs: [Some(src), None],
                        address: None,
                        branch: Some(behavior),
                    }
                }
                OpClass::IntMul | OpClass::IntAlu => {
                    let dst = alloc_int(&mut next_int);
                    let s0 = pick_int(&mut rng, &iter_int, &recent_int);
                    let s1 = if rng.gen::<f64>() < 0.6 {
                        Some(pick_int(&mut rng, &iter_int, &recent_int))
                    } else {
                        None
                    };
                    recent_int.push(dst);
                    iter_int.push(dst);
                    StaticInstr {
                        pc,
                        class,
                        dst: Some(dst),
                        srcs: [Some(s0), s1],
                        address: None,
                        branch: None,
                    }
                }
                OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => {
                    let dst = alloc_fp(&mut next_fp);
                    let pick_fp =
                        |rng: &mut StdRng, iter_pool: &[ArchReg], recent_pool: &[ArchReg]| {
                            if rng.gen::<f64>() < carried_frac || iter_pool.len() <= 1 {
                                pick_recent(rng, recent_pool, spec.dep_distance_mean)
                            } else {
                                pick_recent(rng, iter_pool, spec.dep_distance_mean)
                            }
                        };
                    let s0 = pick_fp(&mut rng, &iter_fp, &recent_fp);
                    let s1 = if rng.gen::<f64>() < 0.8 {
                        Some(pick_fp(&mut rng, &iter_fp, &recent_fp))
                    } else {
                        None
                    };
                    recent_fp.push(dst);
                    iter_fp.push(dst);
                    StaticInstr {
                        pc,
                        class,
                        dst: Some(dst),
                        srcs: [Some(s0), s1],
                        address: None,
                        branch: None,
                    }
                }
                OpClass::Nop => StaticInstr {
                    pc,
                    class,
                    dst: None,
                    srcs: [None, None],
                    address: None,
                    branch: None,
                },
            };
            instrs.push(instr);

            // Bound the recency pools so distances stay meaningful.
            if recent_int.len() > 64 {
                recent_int.drain(0..32);
            }
            if recent_fp.len() > 64 {
                recent_fp.drain(0..32);
            }
            if recent_load_dsts.len() > 32 {
                recent_load_dsts.drain(0..16);
            }
            if recent_cold_load_dsts.len() > 32 {
                recent_cold_load_dsts.drain(0..16);
            }
        }

        ProgramTemplate {
            spec,
            instrs,
            num_streams: MAX_STREAMS,
            code_base: CODE_BASE,
        }
    }

    /// The workload specification the template was generated from.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The static instructions of the loop body.
    #[must_use]
    pub fn instrs(&self) -> &[StaticInstr] {
        &self.instrs
    }

    /// Number of streaming address streams used.
    #[must_use]
    pub fn num_streams(&self) -> usize {
        self.num_streams
    }

    /// Number of pointer chains used.
    #[must_use]
    pub fn num_chains(&self) -> usize {
        self.spec.pointer_chains.min(6)
    }

    /// Base address of the code segment (the PC of the first instruction).
    #[must_use]
    pub fn code_base(&self) -> u64 {
        self.code_base
    }

    /// Program counter of the loop-back branch target (the first
    /// instruction).
    #[must_use]
    pub fn loop_target(&self) -> u64 {
        self.code_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Benchmark;

    #[test]
    fn templates_are_deterministic_per_seed() {
        let spec = Benchmark::Gcc.spec();
        let a = ProgramTemplate::generate(spec, 7);
        let b = ProgramTemplate::generate(spec, 7);
        assert_eq!(a.instrs(), b.instrs());
        let c = ProgramTemplate::generate(spec, 8);
        assert_ne!(a.instrs(), c.instrs(), "different seeds should differ");
    }

    #[test]
    fn template_size_matches_spec() {
        for bench in Benchmark::representative() {
            let spec = bench.spec();
            let tpl = ProgramTemplate::generate(spec, 1);
            assert_eq!(tpl.instrs().len(), spec.loop_body_size);
        }
    }

    #[test]
    fn first_instruction_is_the_induction_update() {
        for bench in Benchmark::all() {
            let tpl = ProgramTemplate::generate(bench.spec(), 3);
            let first = tpl.instrs().first().unwrap();
            assert_eq!(first.class, OpClass::IntAlu, "{}", bench.name());
            assert_eq!(first.dst, Some(ArchReg::int(INDUCTION_REG)));
            assert_eq!(first.srcs[0], Some(ArchReg::int(INDUCTION_REG)));
        }
    }

    #[test]
    fn last_instruction_is_the_loop_back_branch() {
        for bench in Benchmark::all() {
            let tpl = ProgramTemplate::generate(bench.spec(), 3);
            let last = tpl.instrs().last().unwrap();
            assert_eq!(last.class, OpClass::Branch, "{}", bench.name());
            assert_eq!(last.branch, Some(BranchBehavior::LoopBack));
        }
    }

    #[test]
    fn pcs_are_dense_and_word_aligned() {
        let tpl = ProgramTemplate::generate(Benchmark::Swim.spec(), 1);
        for (i, instr) in tpl.instrs().iter().enumerate() {
            assert_eq!(instr.pc, tpl.code_base() + 4 * i as u64);
        }
    }

    #[test]
    fn memory_instructions_have_address_patterns_and_others_do_not() {
        let tpl = ProgramTemplate::generate(Benchmark::Vpr.spec(), 5);
        for instr in tpl.instrs() {
            if instr.class.is_mem() {
                assert!(instr.address.is_some());
            } else {
                assert!(instr.address.is_none());
            }
            if instr.class.is_branch() {
                assert!(instr.branch.is_some());
            } else {
                assert!(instr.branch.is_none());
            }
        }
    }

    #[test]
    fn pointer_chase_loads_form_serial_chains() {
        let tpl = ProgramTemplate::generate(Benchmark::Mcf.spec(), 11);
        let chase: Vec<&StaticInstr> = tpl
            .instrs()
            .iter()
            .filter(|i| matches!(i.address, Some(AddressPattern::PointerChase { .. })))
            .collect();
        assert!(!chase.is_empty(), "mcf must contain pointer-chasing loads");
        for instr in chase {
            // dst == src: the classic p = p->next dependence.
            assert_eq!(instr.dst, instr.srcs[0]);
            assert_eq!(instr.dst.unwrap().class(), RegClass::Int);
        }
    }

    #[test]
    fn streaming_accesses_are_indexed_by_the_induction_variable() {
        let tpl = ProgramTemplate::generate(Benchmark::Swim.spec(), 11);
        for instr in tpl.instrs() {
            if let Some(AddressPattern::Streaming { .. }) = instr.address {
                let addr_src = if instr.class.is_store() {
                    instr.srcs[1]
                } else {
                    instr.srcs[0]
                };
                assert_eq!(addr_src, Some(ArchReg::int(INDUCTION_REG)));
            }
        }
    }

    #[test]
    fn fp_suite_templates_produce_fp_values() {
        let tpl = ProgramTemplate::generate(Benchmark::Swim.spec(), 2);
        let fp_loads = tpl
            .instrs()
            .iter()
            .filter(|i| i.class.is_load() && i.dst.map(|d| d.class()) == Some(RegClass::Fp))
            .count();
        let fp_ops = tpl.instrs().iter().filter(|i| i.class.is_fp()).count();
        assert!(fp_loads > 0, "swim should load FP values");
        assert!(fp_ops > 10, "swim should be dominated by FP arithmetic");
    }

    #[test]
    fn int_suite_templates_have_no_fp_ops() {
        let tpl = ProgramTemplate::generate(Benchmark::Crafty.spec(), 2);
        assert!(tpl.instrs().iter().all(|i| !i.class.is_fp()));
    }

    #[test]
    fn data_dependent_branches_exist_in_branchy_int_codes() {
        let tpl = ProgramTemplate::generate(Benchmark::Mcf.spec(), 13);
        let data_dep = tpl
            .instrs()
            .iter()
            .filter(|i| matches!(i.branch, Some(BranchBehavior::DataDependent)))
            .count();
        assert!(data_dep > 0, "mcf should contain data-dependent branches");
    }

    #[test]
    fn hot_and_full_regions_both_appear() {
        let tpl = ProgramTemplate::generate(Benchmark::Swim.spec(), 4);
        let mut hot = 0;
        let mut full = 0;
        for instr in tpl.instrs() {
            match instr.address {
                Some(AddressPattern::Streaming {
                    region: Region::Hot,
                    ..
                })
                | Some(AddressPattern::Random {
                    region: Region::Hot,
                }) => hot += 1,
                Some(AddressPattern::Streaming {
                    region: Region::Full,
                    ..
                })
                | Some(AddressPattern::Random {
                    region: Region::Full,
                }) => full += 1,
                _ => {}
            }
        }
        assert!(hot > 0, "some accesses must be cache resident");
        assert!(full > 0, "some accesses must walk the full working set");
    }
}
