//! A set-associative cache model with LRU replacement.

use dkip_model::ConfigError;

/// One cache line: the tag of the block it holds plus an LRU timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    last_use: u64,
    dirty: bool,
}

/// A set-associative, write-allocate cache with true-LRU replacement.
///
/// The cache only models *presence* (hit/miss); data values are never
/// stored because the simulator is timing-only.
///
/// # Example
///
/// ```
/// use dkip_mem::cache::SetAssocCache;
///
/// let mut cache = SetAssocCache::new(32 * 1024, 4, 64).unwrap();
/// assert!(!cache.access(0x1234, false)); // cold miss
/// assert!(cache.access(0x1234, false));  // now a hit
/// assert!(cache.access(0x1235, false));  // same 64-byte line
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<Option<Line>>>,
    num_sets: usize,
    assoc: usize,
    line_shift: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache of `size_bytes` with the given associativity and line
    /// size.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the line size is not a power of two, the
    /// associativity is zero, or the size is not a positive multiple of
    /// `line_size * assoc`.
    pub fn new(size_bytes: usize, assoc: usize, line_size: usize) -> Result<Self, ConfigError> {
        if !line_size.is_power_of_two() || line_size == 0 {
            return Err(ConfigError::new(
                "line_size",
                "must be a positive power of two",
            ));
        }
        if assoc == 0 {
            return Err(ConfigError::new("assoc", "must be positive"));
        }
        if size_bytes == 0 || !size_bytes.is_multiple_of(line_size * assoc) {
            return Err(ConfigError::new(
                "size_bytes",
                "must be a positive multiple of line_size * assoc",
            ));
        }
        let num_sets = size_bytes / (line_size * assoc);
        Ok(SetAssocCache {
            sets: vec![vec![None; assoc]; num_sets],
            num_sets,
            assoc,
            line_shift: line_size.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
        })
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.line_shift;
        let set = (block as usize) % self.num_sets;
        let tag = block / self.num_sets as u64;
        (set, tag)
    }

    /// Accesses `addr`; returns `true` on a hit. On a miss the block is
    /// allocated (write-allocate for stores), evicting the LRU line.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.tick += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let set = &mut self.sets[set_idx];
        for line in set.iter_mut().flatten() {
            if line.tag == tag {
                line.last_use = self.tick;
                line.dirty |= is_write;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        // Allocate: prefer an invalid way, otherwise evict the LRU way.
        let victim = match set.iter().position(Option::is_none) {
            Some(idx) => idx,
            None => {
                let mut lru_idx = 0;
                let mut lru_use = u64::MAX;
                for (idx, line) in set.iter().enumerate() {
                    let last = line.expect("set is full").last_use;
                    if last < lru_use {
                        lru_use = last;
                        lru_idx = idx;
                    }
                }
                lru_idx
            }
        };
        set[victim] = Some(Line {
            tag,
            last_use: self.tick,
            dirty: is_write,
        });
        false
    }

    /// Returns whether `addr` is currently cached, without updating LRU
    /// state or statistics.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.sets[set_idx]
            .iter()
            .flatten()
            .any(|line| line.tag == tag)
    }

    /// Invalidates every line in the cache (used between benchmark runs).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for line in set.iter_mut() {
                *line = None;
            }
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity.
    #[must_use]
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_size(&self) -> usize {
        1 << self.line_shift
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.num_sets * self.assoc * self.line_size()
    }

    /// Hits recorded so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all accesses (0.0 when the cache has not been used).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(SetAssocCache::new(32 * 1024, 4, 64).is_ok());
        assert!(SetAssocCache::new(0, 4, 64).is_err());
        assert!(SetAssocCache::new(32 * 1024, 0, 64).is_err());
        assert!(SetAssocCache::new(32 * 1024, 4, 48).is_err());
        assert!(SetAssocCache::new(1000, 4, 64).is_err());
    }

    #[test]
    fn geometry_is_derived_correctly() {
        let cache = SetAssocCache::new(32 * 1024, 4, 64).unwrap();
        assert_eq!(cache.num_sets(), 128);
        assert_eq!(cache.assoc(), 4);
        assert_eq!(cache.line_size(), 64);
        assert_eq!(cache.capacity(), 32 * 1024);
    }

    #[test]
    fn repeat_access_hits() {
        let mut cache = SetAssocCache::new(1024, 2, 64).unwrap();
        assert!(!cache.access(0x40, false));
        assert!(cache.access(0x40, false));
        assert!(cache.access(0x7f, false), "same line as 0x40");
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        // 2-way cache with 2 sets of 64-byte lines: 256 bytes total.
        let mut cache = SetAssocCache::new(256, 2, 64).unwrap();
        // Three distinct blocks mapping to set 0: block numbers 0, 2, 4.
        assert!(!cache.access(0x000, false)); // block 0 -> set 0
        assert!(!cache.access(0x080, false)); // block 2 -> set 0
        assert!(cache.access(0x000, false)); // touch block 0 so block 2 is LRU
        assert!(!cache.access(0x100, false)); // block 4 evicts block 2
        assert!(cache.access(0x000, false), "block 0 must still be resident");
        assert!(!cache.access(0x080, false), "block 2 was evicted");
    }

    #[test]
    fn working_set_larger_than_cache_always_misses_after_warmup() {
        let mut cache = SetAssocCache::new(1024, 1, 64).unwrap(); // 16 lines
                                                                  // Stream over 64 distinct lines twice: direct-mapped, every line is
                                                                  // evicted before reuse, so the second pass misses every time.
        for pass in 0..2 {
            for i in 0..64u64 {
                let hit = cache.access(i * 64, false);
                if pass == 1 {
                    assert!(!hit, "line {i} should have been evicted");
                }
            }
        }
    }

    #[test]
    fn working_set_smaller_than_cache_hits_after_warmup() {
        let mut cache = SetAssocCache::new(4096, 4, 64).unwrap(); // 64 lines
        for i in 0..32u64 {
            cache.access(i * 64, false);
        }
        for i in 0..32u64 {
            assert!(cache.access(i * 64, false), "line {i} should be resident");
        }
    }

    #[test]
    fn contains_does_not_perturb_stats() {
        let mut cache = SetAssocCache::new(1024, 2, 64).unwrap();
        cache.access(0x40, false);
        let hits = cache.hits();
        let misses = cache.misses();
        assert!(cache.contains(0x40));
        assert!(!cache.contains(0x4000));
        assert_eq!(cache.hits(), hits);
        assert_eq!(cache.misses(), misses);
    }

    #[test]
    fn invalidate_all_empties_the_cache() {
        let mut cache = SetAssocCache::new(1024, 2, 64).unwrap();
        cache.access(0x40, true);
        cache.invalidate_all();
        assert!(!cache.contains(0x40));
        assert!(!cache.access(0x40, false));
    }

    #[test]
    fn miss_rate_is_fraction_of_accesses() {
        let mut cache = SetAssocCache::new(1024, 2, 64).unwrap();
        cache.access(0x0, false);
        cache.access(0x0, false);
        cache.access(0x0, false);
        cache.access(0x0, false);
        assert!((cache.miss_rate() - 0.25).abs() < 1e-12);
    }
}
