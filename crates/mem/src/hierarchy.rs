//! The L1 → L2 → main-memory lookup path.
//!
//! [`MemoryHierarchy`] implements the six memory subsystems of Table 1 and
//! the parameterised hierarchy of Table 2. It supports:
//!
//! * *perfect* levels (a `None` capacity never misses), used by the L1-2 /
//!   L2-11 / L2-21 rows of Table 1,
//! * outstanding-miss merging: a second access to a cache line whose miss is
//!   already in flight completes when the original miss completes rather
//!   than paying the full latency again (a simple MSHR model),
//! * per-level access statistics, which the cores fold into
//!   [`dkip_model::stats::SimStats`].

use crate::cache::SetAssocCache;
use dkip_model::config::MemoryHierarchyConfig;
use dkip_model::telemetry::MetricsFrame;
use dkip_model::ConfigError;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// The level of the hierarchy that serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessLevel {
    /// Serviced by the L1 data cache.
    L1,
    /// Serviced by the L2 cache.
    L2,
    /// Serviced by main memory (an off-chip access — the event that creates
    /// *low execution locality* in the paper's terminology).
    Memory,
}

/// The outcome of a memory access: where it was serviced and how long it
/// takes from issue to data return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Level that serviced the access.
    pub level: AccessLevel,
    /// Total latency in cycles from the access starting to data return.
    pub latency: u64,
    /// Whether the access was merged into an already-outstanding miss for
    /// the same cache line.
    pub merged: bool,
}

impl AccessOutcome {
    /// Whether this access reached main memory and is therefore a
    /// *long-latency* event for the D-KIP's classification logic.
    #[must_use]
    pub fn is_long_latency(&self) -> bool {
        self.level == AccessLevel::Memory
    }
}

/// Per-level access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Accesses serviced by the L1.
    pub l1_hits: u64,
    /// Accesses serviced by the L2.
    pub l2_hits: u64,
    /// Accesses serviced by main memory.
    pub memory_accesses: u64,
    /// Accesses merged into an outstanding miss.
    pub merged_misses: u64,
}

impl MemStats {
    /// Total number of accesses.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.memory_accesses
    }

    /// Copies the cumulative per-level counters into a telemetry
    /// [`MetricsFrame`], the hierarchy's side of the probe contract: the
    /// interval-metrics backend differences consecutive frames to derive
    /// the interval L1/L2 miss rates.
    pub fn fill_metrics(&self, frame: &mut MetricsFrame) {
        frame.l1_hits = self.l1_hits;
        frame.l2_hits = self.l2_hits;
        frame.mem_accesses = self.memory_accesses;
    }
}

/// A deep-copied checkpoint of a [`MemoryHierarchy`], captured by
/// [`MemoryHierarchy::snapshot`] and reapplied by
/// [`MemoryHierarchy::restore`].
#[derive(Debug, Clone)]
pub struct MemSnapshot {
    state: MemoryHierarchy,
}

/// The two-level cache hierarchy plus main memory.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: MemoryHierarchyConfig,
    l1: Option<SetAssocCache>,
    l2: Option<SetAssocCache>,
    /// Outstanding misses: line address → cycle at which the fill completes.
    outstanding: HashMap<u64, u64>,
    /// Min-heap twin of `outstanding`: `(completion cycle, line address)`.
    /// Every map entry has exactly one heap entry and vice versa (the two
    /// are only ever mutated together), so the earliest in-flight fill is an
    /// O(1) peek and expiring completed fills is O(log n) amortised instead
    /// of the O(n) `retain` scan this replaces.
    fill_queue: BinaryHeap<Reverse<(u64, u64)>>,
    stats: MemStats,
}

impl MemoryHierarchy {
    /// Builds a hierarchy from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration fails
    /// [`MemoryHierarchyConfig::validate`] or a cache cannot be constructed
    /// from it.
    pub fn new(config: MemoryHierarchyConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let l1 = match config.l1_size {
            Some(size) => Some(SetAssocCache::new(size, config.l1_assoc, config.line_size)?),
            None => None,
        };
        let l2 = match config.l2_size {
            Some(size) => Some(SetAssocCache::new(size, config.l2_assoc, config.line_size)?),
            None => None,
        };
        Ok(MemoryHierarchy {
            config,
            l1,
            l2,
            outstanding: HashMap::new(),
            fill_queue: BinaryHeap::new(),
            stats: MemStats::default(),
        })
    }

    /// The configuration this hierarchy was built from.
    #[must_use]
    pub fn config(&self) -> &MemoryHierarchyConfig {
        &self.config
    }

    /// Access statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_size as u64 - 1)
    }

    /// Performs a timing access for `addr` at cycle `now`.
    ///
    /// Returns where the access was serviced and its latency. Misses update
    /// the cache state (fill on miss, write-allocate) and register an
    /// outstanding-miss entry so that subsequent accesses to the same line
    /// before the fill completes are merged.
    pub fn access(&mut self, addr: u64, is_write: bool, now: u64) -> AccessOutcome {
        let line = self.line_addr(addr);
        self.expire_fills(now);

        // Merge with an outstanding miss for the same line if it has not
        // completed yet (every completed fill was just expired).
        if let Some(&complete) = self.outstanding.get(&line) {
            debug_assert!(complete > now, "expired fills are pruned above");
            self.stats.memory_accesses += 1;
            self.stats.merged_misses += 1;
            return AccessOutcome {
                level: AccessLevel::Memory,
                latency: complete - now,
                merged: true,
            };
        }

        // L1 lookup. A `None` L1 is perfect: it always hits.
        let l1_hit = match self.l1.as_mut() {
            Some(l1) => l1.access(addr, is_write),
            None => true,
        };
        if l1_hit {
            self.stats.l1_hits += 1;
            return AccessOutcome {
                level: AccessLevel::L1,
                latency: self.config.l1_latency,
                merged: false,
            };
        }

        // L2 lookup. A perfect L2 (or a configuration whose L2 is declared
        // perfect) always hits here.
        let l2_hit = match self.l2.as_mut() {
            Some(l2) => l2.access(addr, is_write),
            None => true,
        };
        if self.config.l2_perfect || l2_hit {
            self.stats.l2_hits += 1;
            return AccessOutcome {
                level: AccessLevel::L2,
                latency: self.config.l1_latency + self.config.l2_latency,
                merged: false,
            };
        }

        // Main-memory access.
        self.stats.memory_accesses += 1;
        let latency = self.config.l1_latency + self.config.l2_latency + self.config.memory_latency;
        self.outstanding.insert(line, now + latency);
        self.fill_queue.push(Reverse((now + latency, line)));
        AccessOutcome {
            level: AccessLevel::Memory,
            latency,
            merged: false,
        }
    }

    /// Performs a *functional* (timing-free) access for `addr`: the tag
    /// arrays and replacement state update exactly as under [`access`], but
    /// no latency is modelled, no outstanding miss is registered and no
    /// statistics are counted.
    ///
    /// The sampled-simulation mode uses this to keep the caches warm across
    /// fast-forward gaps (`dkip-sim`'s `sampled` module): the skipped
    /// instructions still install and promote lines, so the next detailed
    /// window measures against the cache contents an exact run would see,
    /// without paying for timing simulation.
    ///
    /// [`access`]: MemoryHierarchy::access
    pub fn warm_access(&mut self, addr: u64, is_write: bool) {
        let l1_hit = match self.l1.as_mut() {
            Some(l1) => l1.access(addr, is_write),
            None => true,
        };
        if l1_hit {
            return;
        }
        // Mirror the timed path: an L1 miss always performs the L2 lookup
        // (and fill), even under an `l2_perfect` configuration.
        if let Some(l2) = self.l2.as_mut() {
            l2.access(addr, is_write);
        }
    }

    /// Drops every in-flight fill that has completed by `now`.
    fn expire_fills(&mut self, now: u64) {
        while let Some(&Reverse((complete, line))) = self.fill_queue.peek() {
            if complete > now {
                break;
            }
            self.fill_queue.pop();
            self.outstanding.remove(&line);
        }
    }

    /// The earliest future cycle (strictly after `now`) at which an
    /// in-flight fill completes, or `None` when no fill is outstanding.
    ///
    /// This is the memory hierarchy's contribution to the event-driven
    /// clock: a quiesced core may fast-forward to this cycle without
    /// observing any state change on the way.
    pub fn next_event(&mut self, now: u64) -> Option<u64> {
        self.expire_fills(now);
        self.fill_queue
            .peek()
            .map(|&Reverse((complete, _))| complete)
    }

    /// Probes whether an access to `addr` would be serviced by main memory,
    /// without modifying any cache or statistics state.
    ///
    /// The D-KIP's Analyze stage uses this to learn the hit/miss status of a
    /// load that has already performed its tag lookup.
    #[must_use]
    pub fn would_miss_to_memory(&self, addr: u64) -> bool {
        if self.config.l2_perfect {
            return false;
        }
        let l1_hit = match self.l1.as_ref() {
            Some(l1) => l1.contains(addr),
            None => true,
        };
        if l1_hit {
            return false;
        }
        match self.l2.as_ref() {
            Some(l2) => !l2.contains(addr),
            None => false,
        }
    }

    /// Captures a deep copy of the full hierarchy state — cache tags/LRU,
    /// outstanding misses and statistics — for the checkpoint machinery.
    ///
    /// A hierarchy restored from the snapshot services every future access
    /// identically to the original at the moment of capture.
    #[must_use]
    pub fn snapshot(&self) -> MemSnapshot {
        MemSnapshot {
            state: self.clone(),
        }
    }

    /// Replaces this hierarchy's state with the snapshot's.
    pub fn restore(&mut self, snapshot: &MemSnapshot) {
        *self = snapshot.state.clone();
    }

    /// Invalidates both cache levels and clears outstanding misses.
    pub fn reset(&mut self) {
        if let Some(l1) = self.l1.as_mut() {
            l1.invalidate_all();
        }
        if let Some(l2) = self.l2.as_mut() {
            l2.invalidate_all();
        }
        self.outstanding.clear();
        self.fill_queue.clear();
        self.stats = MemStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> MemoryHierarchyConfig {
        MemoryHierarchyConfig {
            name: "TEST".to_owned(),
            l1_size: Some(1024),
            l1_latency: 2,
            l1_assoc: 2,
            l2_size: Some(8 * 1024),
            l2_latency: 11,
            l2_assoc: 4,
            memory_latency: 400,
            line_size: 64,
            l2_perfect: false,
        }
    }

    #[test]
    fn perfect_l1_always_hits() {
        let mut mem = MemoryHierarchy::new(MemoryHierarchyConfig::l1_2()).unwrap();
        for addr in (0..100u64).map(|i| i * 4096) {
            let outcome = mem.access(addr, false, 0);
            assert_eq!(outcome.level, AccessLevel::L1);
            assert_eq!(outcome.latency, 2);
        }
        assert_eq!(mem.stats().total(), 100);
        assert_eq!(mem.stats().memory_accesses, 0);
    }

    #[test]
    fn perfect_l2_configs_never_reach_memory() {
        for cfg in [
            MemoryHierarchyConfig::l2_11(),
            MemoryHierarchyConfig::l2_21(),
        ] {
            let expected = 2 + cfg.l2_latency;
            let mut mem = MemoryHierarchy::new(cfg).unwrap();
            // Miss the 32 KB L1 by streaming far apart addresses.
            let mut worst = 0;
            for i in 0..4096u64 {
                let outcome = mem.access(i * 4096, false, i);
                assert_ne!(outcome.level, AccessLevel::Memory);
                worst = worst.max(outcome.latency);
            }
            assert_eq!(worst, expected, "L1 misses must cost L1+L2 latency");
        }
    }

    #[test]
    fn cold_miss_goes_to_memory_then_hits_in_l1() {
        let mut mem = MemoryHierarchy::new(small_config()).unwrap();
        let first = mem.access(0x10000, false, 0);
        assert_eq!(first.level, AccessLevel::Memory);
        assert_eq!(first.latency, 2 + 11 + 400);
        let second = mem.access(0x10000, false, first.latency + 1);
        assert_eq!(second.level, AccessLevel::L1);
        assert_eq!(second.latency, 2);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut mem = MemoryHierarchy::new(small_config()).unwrap();
        // Touch enough lines to overflow the 1 KB L1 but stay within the
        // 8 KB L2, then re-touch the first line: it should hit in L2.
        let warm = 0x0u64;
        mem.access(warm, false, 0);
        for i in 1..64u64 {
            mem.access(i * 64, false, 1000 * i);
        }
        let outcome = mem.access(warm, false, 1_000_000);
        assert_eq!(outcome.level, AccessLevel::L2);
        assert_eq!(outcome.latency, 2 + 11);
    }

    #[test]
    fn outstanding_misses_are_merged() {
        let mut mem = MemoryHierarchy::new(small_config()).unwrap();
        let first = mem.access(0x20000, false, 100);
        assert!(!first.merged);
        // A second access to the same line 50 cycles later completes with
        // the remaining latency.
        let second = mem.access(0x20010, false, 150);
        assert!(second.merged);
        assert_eq!(second.latency, first.latency - 50);
        // After the fill completes, the line hits in L1.
        let third = mem.access(0x20000, false, 100 + first.latency + 1);
        assert_eq!(third.level, AccessLevel::L1);
    }

    #[test]
    fn would_miss_probe_matches_access_behaviour_without_side_effects() {
        let mut mem = MemoryHierarchy::new(small_config()).unwrap();
        assert!(mem.would_miss_to_memory(0x30000));
        let stats_before = mem.stats();
        assert!(mem.would_miss_to_memory(0x30000));
        assert_eq!(mem.stats(), stats_before, "probe must not change stats");
        mem.access(0x30000, false, 0);
        assert!(!mem.would_miss_to_memory(0x30000));
    }

    #[test]
    fn perfect_configs_never_report_memory_miss_probe() {
        let mem = MemoryHierarchy::new(MemoryHierarchyConfig::l2_11()).unwrap();
        assert!(!mem.would_miss_to_memory(0xdead_beef));
    }

    #[test]
    fn reset_clears_cache_contents_and_stats() {
        let mut mem = MemoryHierarchy::new(small_config()).unwrap();
        mem.access(0x40000, true, 0);
        mem.reset();
        assert_eq!(mem.stats().total(), 0);
        let outcome = mem.access(0x40000, false, 0);
        assert_eq!(outcome.level, AccessLevel::Memory, "cache was invalidated");
    }

    #[test]
    fn table1_latencies_are_reproduced() {
        // MEM-100 / MEM-400 / MEM-1000 differ only in the memory latency.
        for (cfg, expected) in [
            (MemoryHierarchyConfig::mem_100(), 2 + 11 + 100),
            (MemoryHierarchyConfig::mem_400(), 2 + 11 + 400),
            (MemoryHierarchyConfig::mem_1000(), 2 + 11 + 1000),
        ] {
            let mut mem = MemoryHierarchy::new(cfg).unwrap();
            let outcome = mem.access(0xABCD_0000, false, 0);
            assert_eq!(outcome.latency, expected);
        }
    }

    #[test]
    fn next_event_tracks_the_earliest_outstanding_fill() {
        let mut mem = MemoryHierarchy::new(small_config()).unwrap();
        assert_eq!(mem.next_event(0), None);
        let a = mem.access(0x10000, false, 100);
        let _b = mem.access(0x90000, false, 150);
        assert_eq!(mem.next_event(100), Some(100 + a.latency));
        // Once the first fill completes, the event moves to the second fill.
        assert_eq!(mem.next_event(100 + a.latency), Some(150 + a.latency));
        // After both complete nothing is outstanding.
        assert_eq!(mem.next_event(10_000), None);
    }

    #[test]
    fn expired_fills_are_pruned_and_lines_can_miss_again() {
        let mut mem = MemoryHierarchy::new(small_config()).unwrap();
        let first = mem.access(0x10000, false, 0);
        // Evict the line from both levels by streaming conflicting lines.
        for i in 1..4096u64 {
            mem.access(0x10000 + i * 8192, false, first.latency + i);
        }
        // A fresh miss to the original line re-registers an outstanding fill
        // and next_event reflects its (new) completion cycle.
        let now = 1_000_000;
        let again = mem.access(0x10000, false, now);
        assert_eq!(again.level, AccessLevel::Memory);
        assert!(!again.merged);
        let next = mem.next_event(now).expect("fill in flight");
        assert_eq!(next, now + again.latency);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let mut mem = MemoryHierarchy::new(small_config()).unwrap();
        // Build up non-trivial state: filled lines, an in-flight miss.
        for i in 0..32u64 {
            mem.access(i * 64, i % 3 == 0, i * 7);
        }
        let in_flight = mem.access(0xAAAA_0000, false, 500);
        assert_eq!(in_flight.level, AccessLevel::Memory);
        let snap = mem.snapshot();

        // Divergent future on the original: evict everything.
        for i in 0..4096u64 {
            mem.access(0xBB00_0000 + i * 8192, false, 600 + i);
        }

        // Restore and replay an access pattern on both a restored-in-place
        // hierarchy and the captured clone; outcomes must be identical.
        mem.restore(&snap);
        let mut twin = MemoryHierarchy::new(small_config()).unwrap();
        twin.restore(&snap);
        assert_eq!(mem.stats(), twin.stats());
        for i in 0..64u64 {
            let a = mem.access(i * 64, false, 550 + i);
            let b = twin.access(i * 64, false, 550 + i);
            assert_eq!(a, b, "restored hierarchies diverged at access {i}");
        }
        assert_eq!(mem.stats(), twin.stats());
        // The in-flight miss survived the snapshot: it still merges.
        let merged = mem.access(0xAAAA_0010, false, 520);
        assert!(merged.merged, "outstanding miss must survive restore");
    }

    #[test]
    fn warm_access_installs_lines_without_timing_side_effects() {
        let mut warmed = MemoryHierarchy::new(small_config()).unwrap();
        let mut timed = MemoryHierarchy::new(small_config()).unwrap();
        // Warm one hierarchy functionally, drive the twin through timed
        // accesses spaced far enough apart that every fill completes.
        let pattern: Vec<u64> = (0..64u64).map(|i| i * 64).chain(0..8).collect();
        for (i, &addr) in pattern.iter().enumerate() {
            warmed.warm_access(addr, i % 5 == 0);
            timed.access(addr, i % 5 == 0, 10_000 * i as u64);
        }
        // No stats, no outstanding fills on the warmed side...
        assert_eq!(warmed.stats().total(), 0);
        assert_eq!(warmed.next_event(u64::MAX - 1), None);
        // ...but the tag state matches the timed twin: every future access
        // is serviced by the same level.
        for i in 0..80u64 {
            let addr = i * 64;
            let a = warmed.access(addr, false, 2_000_000);
            let b = timed.access(addr, false, 2_000_000);
            assert_eq!(a.level, b.level, "divergence at {addr:#x}");
        }
    }

    #[test]
    fn stores_allocate_lines() {
        let mut mem = MemoryHierarchy::new(small_config()).unwrap();
        mem.access(0x50000, true, 0);
        let again = mem.access(0x50000, false, 10_000);
        assert_eq!(again.level, AccessLevel::L1);
    }
}
