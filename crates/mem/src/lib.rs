//! Two-level cache hierarchy and main-memory model for the D-KIP
//! reproduction.
//!
//! The paper evaluates its processors against the memory subsystems of
//! Table 1 (a perfect L1, perfect L2s with 11/21-cycle latencies, and real
//! two-level hierarchies backed by 100/400/1000-cycle main memories) and the
//! default hierarchy of Table 2 (32 KB L1, 512 KB L2, 400-cycle memory).
//! This crate provides:
//!
//! * [`cache::SetAssocCache`] — a set-associative, LRU, write-allocate cache
//!   model,
//! * [`hierarchy::MemoryHierarchy`] — the L1 → L2 → memory lookup path with
//!   outstanding-miss (MSHR-style) merging, driven by
//!   [`dkip_model::config::MemoryHierarchyConfig`],
//! * [`hierarchy::AccessOutcome`] — the latency and the level that serviced
//!   each access, which the cores use both for timing and for the D-KIP's
//!   load classification (an access serviced by main memory makes the
//!   destination register *low locality*).
//!
//! # Example
//!
//! ```
//! use dkip_mem::MemoryHierarchy;
//! use dkip_model::config::MemoryHierarchyConfig;
//!
//! let mut mem = MemoryHierarchy::new(MemoryHierarchyConfig::mem_400()).unwrap();
//! let first = mem.access(0x1000, false, 0);
//! let second = mem.access(0x1000, false, first.latency + 1);
//! assert!(first.latency > second.latency, "second access hits in L1");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod hierarchy;

pub use cache::SetAssocCache;
pub use hierarchy::{AccessLevel, AccessOutcome, MemSnapshot, MemStats, MemoryHierarchy};
