//! Branch predictors for the D-KIP reproduction.
//!
//! The paper's Cache Processor uses a perceptron branch predictor
//! (Jiménez & Lin, HPCA 2001 — reference \[18\] of the paper). This crate
//! implements that predictor along with simpler classical predictors used
//! for comparison and testing:
//!
//! * [`perceptron::PerceptronPredictor`] — the default predictor of Table 2,
//! * [`twolevel::GsharePredictor`] — global-history XOR-indexed two-bit
//!   counters,
//! * [`twolevel::BimodalPredictor`] — per-PC two-bit counters,
//! * [`simple::AlwaysTaken`] / [`simple::StaticNotTaken`] — degenerate
//!   predictors used as lower bounds and in unit tests,
//! * [`PredictorKind`] — a configuration enum from which any of the above
//!   can be built.
//!
//! All predictors implement the [`BranchPredictor`] trait: `predict` is
//! called at fetch with the branch PC, `update` is called at resolution with
//! the actual outcome.
//!
//! # Example
//!
//! ```
//! use dkip_bpred::{BranchPredictor, PredictorKind};
//!
//! let mut pred = PredictorKind::Perceptron.build();
//! // A loop branch that is taken 9 times out of 10 becomes predictable.
//! let mut correct = 0;
//! for i in 0..1000u64 {
//!     let taken = i % 10 != 9;
//!     let guess = pred.predict(0x4000);
//!     if guess == taken {
//!         correct += 1;
//!     }
//!     pred.update(0x4000, taken, guess);
//! }
//! assert!(correct > 800);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod perceptron;
pub mod simple;
pub mod twolevel;

pub use perceptron::PerceptronPredictor;
pub use simple::{AlwaysTaken, StaticNotTaken};
pub use twolevel::{BimodalPredictor, GsharePredictor};

/// A dynamic branch-direction predictor.
///
/// The contract mirrors how the cores use predictors: `predict` is consulted
/// at fetch time and must not observe the true outcome; `update` is called
/// exactly once per dynamic conditional branch when it resolves, with both
/// the true outcome and the prediction that was made at fetch.
pub trait BranchPredictor: std::fmt::Debug {
    /// Predicts the direction of the conditional branch at `pc`
    /// (`true` = taken).
    fn predict(&mut self, pc: u64) -> bool;

    /// Deep-copies the predictor behind the trait object.
    ///
    /// This is the predictor's snapshot mechanism: the returned box holds
    /// the full table/history/counter state, so a core checkpoint can
    /// clone its predictor and a restored core resumes with bit-identical
    /// predictions. `impl Clone for Box<dyn BranchPredictor>` forwards
    /// here, which is what lets the cores simply `#[derive(Clone)]`.
    fn clone_box(&self) -> Box<dyn BranchPredictor>;

    /// Trains the predictor with the resolved outcome of the branch at
    /// `pc`. `predicted` is the direction returned by the matching
    /// [`predict`](Self::predict) call.
    fn update(&mut self, pc: u64, taken: bool, predicted: bool);

    /// Number of predictions made so far.
    fn predictions(&self) -> u64;

    /// Number of mispredictions observed so far (filled in by `update`).
    fn mispredictions(&self) -> u64;

    /// Misprediction rate (0.0 if no branches have been predicted).
    fn mispredict_rate(&self) -> f64 {
        if self.predictions() == 0 {
            0.0
        } else {
            self.mispredictions() as f64 / self.predictions() as f64
        }
    }
}

impl Clone for Box<dyn BranchPredictor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Selects and constructs a branch predictor implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// The perceptron predictor of Table 2 (default).
    #[default]
    Perceptron,
    /// A gshare predictor with 14 bits of global history.
    Gshare,
    /// A per-PC two-bit counter table.
    Bimodal,
    /// Statically predict taken.
    AlwaysTaken,
    /// Statically predict not taken.
    NotTaken,
}

impl PredictorKind {
    /// Builds the predictor with its default table sizes.
    #[must_use]
    pub fn build(self) -> Box<dyn BranchPredictor> {
        match self {
            PredictorKind::Perceptron => Box::new(PerceptronPredictor::paper_default()),
            PredictorKind::Gshare => Box::new(GsharePredictor::new(14)),
            PredictorKind::Bimodal => Box::new(BimodalPredictor::new(14)),
            PredictorKind::AlwaysTaken => Box::new(AlwaysTaken::new()),
            PredictorKind::NotTaken => Box::new(StaticNotTaken::new()),
        }
    }
}

/// Shared bookkeeping for prediction/misprediction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PredStats {
    pub predictions: u64,
    pub mispredictions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_alternating(pred: &mut dyn BranchPredictor, iters: u64) -> f64 {
        for i in 0..iters {
            let taken = i % 2 == 0;
            let guess = pred.predict(0x100);
            pred.update(0x100, taken, guess);
        }
        pred.mispredict_rate()
    }

    #[test]
    fn all_kinds_build_and_predict() {
        for kind in [
            PredictorKind::Perceptron,
            PredictorKind::Gshare,
            PredictorKind::Bimodal,
            PredictorKind::AlwaysTaken,
            PredictorKind::NotTaken,
        ] {
            let mut pred = kind.build();
            let _ = pred.predict(0x42);
            pred.update(0x42, true, false);
            assert_eq!(pred.predictions(), 1);
            assert_eq!(pred.mispredictions(), 1);
        }
    }

    #[test]
    fn history_predictors_learn_alternating_patterns() {
        // gshare and perceptron can learn a strict alternation via global
        // history; bimodal cannot do better than ~50%.
        let mut perceptron = PredictorKind::Perceptron.build();
        let rate = train_alternating(perceptron.as_mut(), 2000);
        assert!(
            rate < 0.2,
            "perceptron should learn alternation, rate={rate}"
        );

        let mut gshare = PredictorKind::Gshare.build();
        let rate = train_alternating(gshare.as_mut(), 2000);
        assert!(rate < 0.2, "gshare should learn alternation, rate={rate}");
    }

    #[test]
    fn default_kind_is_perceptron() {
        assert_eq!(PredictorKind::default(), PredictorKind::Perceptron);
    }

    #[test]
    fn mispredict_rate_handles_zero_predictions() {
        let pred = AlwaysTaken::new();
        assert_eq!(pred.mispredict_rate(), 0.0);
    }

    #[test]
    fn cloned_boxes_are_independent_bit_identical_snapshots() {
        for kind in [
            PredictorKind::Perceptron,
            PredictorKind::Gshare,
            PredictorKind::Bimodal,
            PredictorKind::AlwaysTaken,
            PredictorKind::NotTaken,
        ] {
            let mut pred = kind.build();
            for i in 0..500u64 {
                let pc = 0x1000 + (i % 7) * 16;
                let taken = (i / 3) % 2 == 0;
                let guess = pred.predict(pc);
                pred.update(pc, taken, guess);
            }
            let mut snap = pred.clone();
            // The snapshot replays the future identically...
            for i in 0..500u64 {
                let pc = 0x1000 + (i % 7) * 16;
                let taken = (i / 5) % 2 == 0;
                let a = pred.predict(pc);
                let b = snap.predict(pc);
                assert_eq!(a, b, "{kind:?}: snapshot diverged");
                pred.update(pc, taken, a);
                snap.update(pc, taken, b);
            }
            assert_eq!(pred.predictions(), snap.predictions());
            assert_eq!(pred.mispredictions(), snap.mispredictions());
            // ...and is independent: training only the snapshot leaves the
            // original's counters untouched.
            let before = pred.predictions();
            let g = snap.predict(0x9999);
            snap.update(0x9999, true, g);
            assert_eq!(pred.predictions(), before);
        }
    }
}
