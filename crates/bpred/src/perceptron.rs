//! The perceptron branch predictor of Jiménez & Lin (HPCA 2001), the
//! predictor used by the paper's Cache Processor (Table 2).

use crate::{BranchPredictor, PredStats};
use dkip_model::FastHashMap;

/// A perceptron branch predictor.
///
/// A table of perceptrons is indexed by a hash of the branch PC. Each
/// perceptron holds one signed weight per bit of global history plus a bias
/// weight. The prediction is the sign of the dot product between the weights
/// and the history (encoded as ±1); training bumps the weights whenever the
/// prediction was wrong or the magnitude of the output was below the
/// threshold `⌊1.93·h + 14⌋` recommended by the original paper.
///
/// The predictor sits on the dispatch/writeback hot path of every core
/// family, so the table is stored as one flat row-major weight array (no
/// per-perceptron `Vec` indirection) and the in-flight outputs live in a
/// deterministic [`FastHashMap`].
#[derive(Debug, Clone)]
pub struct PerceptronPredictor {
    /// Row-major table: perceptron `i` occupies
    /// `weights[i * (history_len + 1) ..][..history_len + 1]`, bias first.
    weights: Vec<i32>,
    table_size: usize,
    history: u64,
    history_len: usize,
    threshold: i32,
    /// Speculative history is not modelled separately: `predict` shifts the
    /// predicted outcome in, `update` repairs the history on a
    /// misprediction. This matches how the cores use the predictor (at most
    /// a handful of unresolved branches because fetch stalls on a predicted
    /// mispredict).
    stats: PredStats,
    last_outputs: FastHashMap<u64, i32>,
}

impl PerceptronPredictor {
    /// Creates a perceptron predictor with `table_size` perceptrons (rounded
    /// up to a power of two) and `history_len` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `table_size` or `history_len` is zero.
    #[must_use]
    pub fn new(table_size: usize, history_len: usize) -> Self {
        assert!(table_size > 0, "table_size must be positive");
        assert!(history_len > 0, "history_len must be positive");
        let table_size = table_size.next_power_of_two();
        let threshold = (1.93 * history_len as f64 + 14.0).floor() as i32;
        PerceptronPredictor {
            weights: vec![0; table_size * (history_len + 1)],
            table_size,
            history: 0,
            history_len,
            threshold,
            stats: PredStats::default(),
            last_outputs: FastHashMap::default(),
        }
    }

    /// The configuration used throughout the reproduction: 1024 perceptrons
    /// with 32 bits of global history (comparable to the hardware budget of
    /// the predictor in the paper's Table 2).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(1024, 32)
    }

    /// The training threshold `⌊1.93·h + 14⌋`.
    #[must_use]
    pub fn threshold(&self) -> i32 {
        self.threshold
    }

    /// Number of history bits.
    #[must_use]
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    fn index(&self, pc: u64) -> usize {
        // Fold the PC; low bits beyond the instruction alignment are the
        // most discriminating.
        let hashed = (pc >> 2) ^ (pc >> 13);
        (hashed as usize) & (self.table_size - 1)
    }

    /// The weight row of perceptron `idx` (bias first).
    fn row(&self, idx: usize) -> &[i32] {
        let stride = self.history_len + 1;
        &self.weights[idx * stride..(idx + 1) * stride]
    }

    /// Mutable form of [`PerceptronPredictor::row`].
    fn row_mut(&mut self, idx: usize) -> &mut [i32] {
        let stride = self.history_len + 1;
        &mut self.weights[idx * stride..(idx + 1) * stride]
    }

    fn output(&self, pc: u64) -> i32 {
        let perceptron = self.row(self.index(pc));
        let mut y = perceptron[0];
        for (bit, &weight) in perceptron[1..].iter().enumerate() {
            // history bit 1 → +weight, 0 → -weight (branchless ±1 encode).
            let h = ((self.history >> bit) & 1) as i32 * 2 - 1;
            y += weight * h;
        }
        y
    }

    fn saturating_adjust(weight: &mut i32, direction: i32) {
        *weight = (*weight + direction).clamp(Self::WEIGHT_MIN, Self::WEIGHT_MAX);
    }

    /// Largest value any weight may reach (8-bit signed saturation).
    pub const WEIGHT_MAX: i32 = 127;

    /// Smallest value any weight may reach (8-bit signed saturation).
    pub const WEIGHT_MIN: i32 = -128;

    /// The largest weight magnitude currently stored in any perceptron.
    ///
    /// Training saturates every weight into
    /// `[`[`Self::WEIGHT_MIN`]`, `[`Self::WEIGHT_MAX`]`]`, so this never
    /// exceeds 128; the property tests assert exactly that bound.
    #[must_use]
    pub fn max_abs_weight(&self) -> i32 {
        self.weights.iter().map(|w| w.abs()).max().unwrap_or(0)
    }
}

impl BranchPredictor for PerceptronPredictor {
    fn clone_box(&self) -> Box<dyn BranchPredictor> {
        Box::new(self.clone())
    }

    fn predict(&mut self, pc: u64) -> bool {
        self.stats.predictions += 1;
        let y = self.output(pc);
        self.last_outputs.insert(pc, y);
        let taken = y >= 0;
        // Speculatively shift the prediction into the history; repaired in
        // `update` if wrong.
        self.history = (self.history << 1) | u64::from(taken);
        taken
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        if taken != predicted {
            self.stats.mispredictions += 1;
            // Repair the speculative history bit inserted by `predict`.
            self.history = (self.history & !1) | u64::from(taken);
        }
        let y = self.last_outputs.remove(&pc).unwrap_or(0);
        if taken != predicted || y.abs() <= self.threshold {
            let idx = self.index(pc);
            let t = if taken { 1 } else { -1 };
            // Reconstruct the history the prediction saw (one bit older).
            let seen_history = self.history >> 1;
            let perceptron = self.row_mut(idx);
            Self::saturating_adjust(&mut perceptron[0], t);
            for (bit, weight) in perceptron[1..].iter_mut().enumerate() {
                let h = ((seen_history >> bit) & 1) as i32 * 2 - 1;
                Self::saturating_adjust(weight, t * h);
            }
        }
    }

    fn predictions(&self) -> u64 {
        self.stats.predictions
    }

    fn mispredictions(&self) -> u64 {
        self.stats.mispredictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_follows_the_published_formula() {
        let p = PerceptronPredictor::new(256, 32);
        assert_eq!(p.threshold(), (1.93f64 * 32.0 + 14.0).floor() as i32);
        assert_eq!(p.history_len(), 32);
    }

    #[test]
    fn learns_strongly_biased_branches() {
        let mut p = PerceptronPredictor::paper_default();
        let mut wrong_late = 0;
        for i in 0..2000u64 {
            let guess = p.predict(0x1000);
            p.update(0x1000, true, guess);
            if i > 100 && !guess {
                wrong_late += 1;
            }
        }
        assert_eq!(
            wrong_late, 0,
            "a always-taken branch must become perfectly predicted"
        );
    }

    #[test]
    fn learns_history_correlated_patterns() {
        // Branch B is taken exactly when the previous outcome of branch A
        // was taken: linearly separable on global history.
        let mut p = PerceptronPredictor::paper_default();
        let mut wrong_late = 0;
        for i in 0..4000u64 {
            let a_outcome = i % 3 != 0;
            let guess_a = p.predict(0x2000);
            p.update(0x2000, a_outcome, guess_a);
            let guess_b = p.predict(0x2040);
            let b_outcome = a_outcome;
            if i > 1000 && guess_b != b_outcome {
                wrong_late += 1;
            }
            p.update(0x2040, b_outcome, guess_b);
        }
        assert!(
            wrong_late < 100,
            "correlated branch should be nearly perfectly predicted, got {wrong_late} errors"
        );
    }

    #[test]
    fn random_branches_hover_near_chance() {
        // A pseudo-random outcome stream cannot be predicted much better
        // than 50%; make sure the predictor does not diverge or crash.
        let mut p = PerceptronPredictor::paper_default();
        let mut state = 0x12345678u64;
        for _ in 0..4000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (state >> 62) & 1 == 1;
            let guess = p.predict(0x3000);
            p.update(0x3000, taken, guess);
        }
        let rate = p.mispredict_rate();
        assert!(
            rate > 0.3 && rate < 0.7,
            "random stream should be near chance, got {rate}"
        );
    }

    #[test]
    fn weights_saturate_instead_of_overflowing() {
        let mut p = PerceptronPredictor::new(16, 8);
        for _ in 0..100_000u64 {
            let guess = p.predict(0x4000);
            p.update(0x4000, true, guess);
        }
        // All weights stay within the i8-like clamp.
        for &v in &p.weights {
            assert!((-128..=127).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "history_len")]
    fn zero_history_is_rejected() {
        let _ = PerceptronPredictor::new(16, 0);
    }

    #[test]
    fn table_size_rounds_to_power_of_two() {
        let p = PerceptronPredictor::new(100, 8);
        assert_eq!(p.table_size, 128);
        assert_eq!(p.weights.len(), 128 * 9, "flat row-major weight table");
    }
}
