//! Degenerate static predictors used as bounds and in tests.

use crate::{BranchPredictor, PredStats};

/// Predicts every branch taken.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysTaken {
    stats: PredStats,
}

impl AlwaysTaken {
    /// Creates the predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl BranchPredictor for AlwaysTaken {
    fn clone_box(&self) -> Box<dyn BranchPredictor> {
        Box::new(*self)
    }

    fn predict(&mut self, _pc: u64) -> bool {
        self.stats.predictions += 1;
        true
    }

    fn update(&mut self, _pc: u64, taken: bool, predicted: bool) {
        if taken != predicted {
            self.stats.mispredictions += 1;
        }
    }

    fn predictions(&self) -> u64 {
        self.stats.predictions
    }

    fn mispredictions(&self) -> u64 {
        self.stats.mispredictions
    }
}

/// Predicts every branch not taken.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticNotTaken {
    stats: PredStats,
}

impl StaticNotTaken {
    /// Creates the predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl BranchPredictor for StaticNotTaken {
    fn clone_box(&self) -> Box<dyn BranchPredictor> {
        Box::new(*self)
    }

    fn predict(&mut self, _pc: u64) -> bool {
        self.stats.predictions += 1;
        false
    }

    fn update(&mut self, _pc: u64, taken: bool, predicted: bool) {
        if taken != predicted {
            self.stats.mispredictions += 1;
        }
    }

    fn predictions(&self) -> u64 {
        self.stats.predictions
    }

    fn mispredictions(&self) -> u64 {
        self.stats.mispredictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_counts_mispredictions_on_not_taken_branches() {
        let mut p = AlwaysTaken::new();
        for i in 0..10u64 {
            let guess = p.predict(0x10);
            p.update(0x10, i % 2 == 0, guess);
        }
        assert_eq!(p.predictions(), 10);
        assert_eq!(p.mispredictions(), 5);
        assert!((p.mispredict_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn not_taken_is_the_mirror_image() {
        let mut p = StaticNotTaken::new();
        for _ in 0..4 {
            let guess = p.predict(0x10);
            assert!(!guess);
            p.update(0x10, true, guess);
        }
        assert_eq!(p.mispredictions(), 4);
    }
}
