//! Classical two-bit-counter predictors: bimodal and gshare.

use crate::{BranchPredictor, PredStats};

/// A saturating two-bit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TwoBit(u8);

impl TwoBit {
    const WEAKLY_NOT_TAKEN: TwoBit = TwoBit(1);

    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// A per-PC table of two-bit saturating counters.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: Vec<TwoBit>,
    mask: usize,
    stats: PredStats,
}

impl BimodalPredictor {
    /// Creates a bimodal predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is zero or larger than 28.
    #[must_use]
    pub fn new(index_bits: u32) -> Self {
        assert!(
            (1..=28).contains(&index_bits),
            "index_bits must be in 1..=28"
        );
        let size = 1usize << index_bits;
        BimodalPredictor {
            table: vec![TwoBit::WEAKLY_NOT_TAKEN; size],
            mask: size - 1,
            stats: PredStats::default(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }
}

impl BranchPredictor for BimodalPredictor {
    fn clone_box(&self) -> Box<dyn BranchPredictor> {
        Box::new(self.clone())
    }

    fn predict(&mut self, pc: u64) -> bool {
        self.stats.predictions += 1;
        self.table[self.index(pc)].predict()
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        if taken != predicted {
            self.stats.mispredictions += 1;
        }
        let idx = self.index(pc);
        self.table[idx].update(taken);
    }

    fn predictions(&self) -> u64 {
        self.stats.predictions
    }

    fn mispredictions(&self) -> u64 {
        self.stats.mispredictions
    }
}

/// A gshare predictor: global history XORed with the PC indexes a table of
/// two-bit counters.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<TwoBit>,
    mask: usize,
    history: u64,
    history_bits: u32,
    stats: PredStats,
}

impl GsharePredictor {
    /// Creates a gshare predictor with `2^index_bits` counters and
    /// `index_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is zero or larger than 28.
    #[must_use]
    pub fn new(index_bits: u32) -> Self {
        assert!(
            (1..=28).contains(&index_bits),
            "index_bits must be in 1..=28"
        );
        let size = 1usize << index_bits;
        GsharePredictor {
            table: vec![TwoBit::WEAKLY_NOT_TAKEN; size],
            mask: size - 1,
            history: 0,
            history_bits: index_bits,
            stats: PredStats::default(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) as usize) & self.mask
    }
}

impl BranchPredictor for GsharePredictor {
    fn clone_box(&self) -> Box<dyn BranchPredictor> {
        Box::new(self.clone())
    }

    fn predict(&mut self, pc: u64) -> bool {
        self.stats.predictions += 1;
        self.table[self.index(pc)].predict()
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        if taken != predicted {
            self.stats.mispredictions += 1;
        }
        let idx = self.index(pc);
        self.table[idx].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
    }

    fn predictions(&self) -> u64 {
        self.stats.predictions
    }

    fn mispredictions(&self) -> u64 {
        self.stats.mispredictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_counter_saturates() {
        let mut c = TwoBit::WEAKLY_NOT_TAKEN;
        assert!(!c.predict());
        c.update(true);
        c.update(true);
        c.update(true);
        c.update(true);
        assert!(c.predict());
        assert_eq!(c.0, 3);
        c.update(false);
        assert!(c.predict(), "strongly taken tolerates one not-taken");
        c.update(false);
        c.update(false);
        c.update(false);
        assert!(!c.predict());
        assert_eq!(c.0, 0);
    }

    #[test]
    fn bimodal_learns_biased_branches() {
        let mut p = BimodalPredictor::new(12);
        let mut wrong_late = 0;
        for i in 0..1000u64 {
            let guess = p.predict(0x800);
            if i > 10 && !guess {
                wrong_late += 1;
            }
            p.update(0x800, true, guess);
        }
        assert_eq!(wrong_late, 0);
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut p = BimodalPredictor::new(12);
        for i in 0..1000u64 {
            let taken = i % 2 == 0;
            let guess = p.predict(0x900);
            p.update(0x900, taken, guess);
        }
        assert!(
            p.mispredict_rate() > 0.4,
            "alternation defeats a two-bit counter"
        );
    }

    #[test]
    fn gshare_learns_alternation_through_history() {
        let mut p = GsharePredictor::new(12);
        for i in 0..2000u64 {
            let taken = i % 2 == 0;
            let guess = p.predict(0x900);
            p.update(0x900, taken, guess);
        }
        assert!(p.mispredict_rate() < 0.1, "rate={}", p.mispredict_rate());
    }

    #[test]
    fn distinct_pcs_use_distinct_bimodal_counters() {
        let mut p = BimodalPredictor::new(12);
        // Train 0x1000 taken and 0x2000 not taken; both become predictable.
        for _ in 0..100 {
            let g1 = p.predict(0x1000);
            p.update(0x1000, true, g1);
            let g2 = p.predict(0x2000);
            p.update(0x2000, false, g2);
        }
        assert!(p.predict(0x1000));
        assert!(!p.predict(0x2000));
    }

    #[test]
    #[should_panic(expected = "index_bits")]
    fn oversized_tables_are_rejected() {
        let _ = GsharePredictor::new(40);
    }
}
