//! The Low-Locality Instruction Buffer (LLIB).
//!
//! The LLIB is a simple FIFO (no issue capability, no CAM) holding the
//! instructions the Analyze stage classified as low execution locality,
//! together with bookkeeping about their sources: which operand value was
//! READY and stored in the LLRF, which long-latency load each operand waits
//! for, and which older low-locality instruction produces each operand.
//! There is one LLIB for integer and one for floating-point instructions.

use crate::llrf::LlrfSlot;
use dkip_model::MicroOp;
use std::collections::VecDeque;

/// How one source operand of a parked instruction will obtain its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceState {
    /// The value was READY at Analyze and lives in the LLRF.
    Ready,
    /// The value is produced by a long-latency load executed by the Address
    /// Processor (sequence number of the load).
    WaitsForLoad(u64),
    /// The value is produced by an older low-locality instruction that will
    /// execute on the Memory Processor (its sequence number).
    WaitsForMp(u64),
}

/// One instruction parked in the LLIB.
#[derive(Debug, Clone)]
pub struct LlibEntry {
    /// The parked micro-op.
    pub op: MicroOp,
    /// Per-source resolution state (parallel to `op.srcs`).
    pub sources: [Option<SourceState>; 2],
    /// LLRF register holding the READY operand, if any.
    pub llrf_slot: Option<LlrfSlot>,
    /// Checkpoint epoch this instruction belongs to.
    pub checkpoint_epoch: u64,
    /// Cycle at which the instruction was inserted.
    pub inserted_at: u64,
}

impl LlibEntry {
    /// The long-latency load (if any) the *oldest unresolved* source waits
    /// for. Used by the LLIB→MP transfer rule of the paper: the head may
    /// only move to the Memory Processor once that load has completed.
    #[must_use]
    pub fn blocking_load(&self) -> Option<u64> {
        self.sources.iter().flatten().find_map(|s| match s {
            SourceState::WaitsForLoad(seq) => Some(*seq),
            _ => None,
        })
    }
}

/// A FIFO buffer of low-locality instructions.
#[derive(Debug, Clone)]
pub struct Llib {
    capacity: usize,
    entries: VecDeque<LlibEntry>,
    peak: usize,
    total_inserted: u64,
}

impl Llib {
    /// Creates an LLIB with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LLIB capacity must be positive");
        Llib {
            capacity,
            entries: VecDeque::new(),
            peak: 0,
            total_inserted: 0,
        }
    }

    /// Whether another instruction can be inserted.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Number of parked instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Peak occupancy in instructions (Figures 13/14).
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total number of instructions ever inserted.
    #[must_use]
    pub fn total_inserted(&self) -> u64 {
        self.total_inserted
    }

    /// Inserts an instruction at the tail.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (callers must check
    /// [`has_space`](Self::has_space) — the Analyze stage stalls instead).
    pub fn push(&mut self, entry: LlibEntry) {
        assert!(self.has_space(), "LLIB overflow");
        self.entries.push_back(entry);
        self.peak = self.peak.max(self.entries.len());
        self.total_inserted += 1;
    }

    /// A reference to the oldest parked instruction.
    #[must_use]
    pub fn head(&self) -> Option<&LlibEntry> {
        self.entries.front()
    }

    /// Removes and returns the oldest parked instruction.
    pub fn pop(&mut self) -> Option<LlibEntry> {
        self.entries.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkip_model::{ArchReg, OpClass};

    fn entry(seq: u64) -> LlibEntry {
        LlibEntry {
            op: MicroOp::new(seq, 0x400, OpClass::FpAdd)
                .with_dst(ArchReg::fp(1))
                .with_src(ArchReg::fp(2)),
            sources: [Some(SourceState::WaitsForLoad(seq.saturating_sub(1))), None],
            llrf_slot: None,
            checkpoint_epoch: 0,
            inserted_at: 0,
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut llib = Llib::new(8);
        for seq in 0..5 {
            llib.push(entry(seq));
        }
        assert_eq!(llib.len(), 5);
        for seq in 0..5 {
            assert_eq!(llib.pop().unwrap().op.seq, seq);
        }
        assert!(llib.is_empty());
    }

    #[test]
    fn peak_and_total_are_tracked() {
        let mut llib = Llib::new(8);
        for seq in 0..6 {
            llib.push(entry(seq));
        }
        for _ in 0..4 {
            llib.pop();
        }
        llib.push(entry(10));
        assert_eq!(llib.peak(), 6);
        assert_eq!(llib.total_inserted(), 7);
        assert_eq!(llib.len(), 3);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut llib = Llib::new(1);
        llib.push(entry(0));
        llib.push(entry(1));
    }

    #[test]
    fn blocking_load_reports_the_waited_on_load() {
        let e = entry(7);
        assert_eq!(e.blocking_load(), Some(6));
        let mut ready = entry(3);
        ready.sources = [Some(SourceState::Ready), Some(SourceState::WaitsForMp(1))];
        assert_eq!(ready.blocking_load(), None);
    }
}
