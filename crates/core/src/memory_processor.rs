//! The Memory Processor (MP).
//!
//! The Memory Processor executes low-locality instructions after their
//! long-latency operands become available. The paper models it as a simple
//! Future-File machine (Smith & Pleszkun) with a small reservation-station
//! queue that is in-order by default (Table 3) and may optionally be a small
//! out-of-order queue (Figure 10). Because this reproduction is timing-only,
//! the Future File itself is represented by readiness bookkeeping: an
//! instruction inserted into the MP carries the number of operands that are
//! still unavailable, and the surrounding processor satisfies them as loads
//! return and older MP instructions complete.

use dkip_model::config::MemoryProcessorConfig;
use dkip_model::{FastHashMap, OpClass};
use dkip_ooo::{FunctionalUnits, IssueQueue, MemPorts};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One integer or floating-point Memory Processor.
///
/// `Clone` deep-copies the queue, readiness bookkeeping and in-flight
/// completions, so a cloned processor checkpoint resumes bit-identically.
#[derive(Debug, Clone)]
pub struct MemoryProcessor {
    queue: IssueQueue,
    fus: FunctionalUnits,
    /// Outstanding operand counts for instructions still waiting in the
    /// queue.
    pending: FastHashMap<u64, u8>,
    /// Completion events (cycle, seq).
    completions: BinaryHeap<Reverse<(u64, u64)>>,
    /// Instructions currently inside the MP (inserted, not yet completed).
    occupancy: usize,
    peak_occupancy: usize,
    total_executed: u64,
}

impl MemoryProcessor {
    /// Creates a Memory Processor from its configuration.
    #[must_use]
    pub fn new(config: &MemoryProcessorConfig) -> Self {
        MemoryProcessor {
            queue: IssueQueue::new(config.queue_capacity, config.sched),
            fus: FunctionalUnits::new(config.fu),
            pending: FastHashMap::default(),
            completions: BinaryHeap::new(),
            occupancy: 0,
            peak_occupancy: 0,
            total_executed: 0,
        }
    }

    /// Whether another instruction can be inserted from the LLIB.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.queue.has_space()
    }

    /// Number of instructions currently inside the MP (waiting or
    /// executing).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Peak occupancy observed.
    #[must_use]
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Total instructions executed by this MP.
    #[must_use]
    pub fn total_executed(&self) -> u64 {
        self.total_executed
    }

    /// Starts a new cycle (refreshes functional-unit availability).
    pub fn begin_cycle(&mut self) {
        self.fus.begin_cycle();
    }

    /// Inserts an instruction with `unavailable` operands still missing.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full.
    pub fn insert(&mut self, seq: u64, class: OpClass, unavailable: u8) {
        self.queue.insert(seq, class, unavailable == 0);
        if unavailable > 0 {
            self.pending.insert(seq, unavailable);
        }
        self.occupancy += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.occupancy);
    }

    /// Satisfies one outstanding operand of `seq` (a load value arrived or
    /// an older MP instruction completed). Unknown sequence numbers are
    /// ignored.
    pub fn satisfy(&mut self, seq: u64) {
        if let Some(count) = self.pending.get_mut(&seq) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                self.pending.remove(&seq);
                self.queue.mark_ready(seq);
            }
        }
    }

    /// Selects up to `width` ready instructions to start executing this
    /// cycle, honouring the scheduling policy, this MP's functional units
    /// and the shared Address Processor memory ports. Selected pairs are
    /// appended to `issued` (the caller reuses the buffer across cycles).
    pub fn select_into(
        &mut self,
        width: usize,
        ports: &mut MemPorts,
        issued: &mut Vec<(u64, OpClass)>,
    ) {
        self.queue.select_into(width, &mut self.fus, ports, issued);
    }

    /// Allocating convenience form of [`MemoryProcessor::select_into`].
    pub fn select(&mut self, width: usize, ports: &mut MemPorts) -> Vec<(u64, OpClass)> {
        self.queue.select(width, &mut self.fus, ports)
    }

    /// Schedules the completion of an issued instruction.
    pub fn schedule_completion(&mut self, seq: u64, at_cycle: u64) {
        self.completions.push(Reverse((at_cycle, seq)));
    }

    /// The earliest future cycle (strictly after `now`) at which an issued
    /// instruction finishes executing in this MP, or `None` when nothing is
    /// executing.
    #[must_use]
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.completions
            .peek()
            .map(|&Reverse((cycle, _))| cycle)
            .filter(|&cycle| cycle > now)
    }

    /// Appends the instructions whose execution finishes at or before `now`
    /// to `done` (the caller reuses the buffer across cycles).
    pub fn drain_completed_into(&mut self, now: u64, done: &mut Vec<u64>) {
        while let Some(&Reverse((cycle, seq))) = self.completions.peek() {
            if cycle > now {
                break;
            }
            self.completions.pop();
            self.occupancy -= 1;
            self.total_executed += 1;
            done.push(seq);
        }
    }

    /// Allocating convenience form of [`MemoryProcessor::drain_completed_into`].
    pub fn drain_completed(&mut self, now: u64) -> Vec<u64> {
        let mut done = Vec::new();
        self.drain_completed_into(now, &mut done);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkip_model::config::SchedPolicy;

    fn mp(sched: SchedPolicy, cap: usize) -> MemoryProcessor {
        let mut cfg = MemoryProcessorConfig::paper_default();
        cfg.sched = sched;
        cfg.queue_capacity = cap;
        MemoryProcessor::new(&cfg)
    }

    #[test]
    fn ready_instructions_issue_and_complete() {
        let mut mp = mp(SchedPolicy::InOrder, 4);
        let mut ports = MemPorts::new(2);
        mp.insert(1, OpClass::FpAdd, 0);
        mp.insert(2, OpClass::FpAdd, 0);
        let issued = mp.select(4, &mut ports);
        assert_eq!(issued.len(), 2);
        mp.schedule_completion(1, 10);
        mp.schedule_completion(2, 12);
        assert!(mp.drain_completed(9).is_empty());
        assert_eq!(mp.drain_completed(12), vec![1, 2]);
        assert_eq!(mp.total_executed(), 2);
        assert_eq!(mp.occupancy(), 0);
    }

    #[test]
    fn in_order_mp_blocks_behind_a_waiting_head() {
        let mut mp = mp(SchedPolicy::InOrder, 4);
        let mut ports = MemPorts::new(2);
        mp.insert(5, OpClass::IntAlu, 1);
        mp.insert(6, OpClass::IntAlu, 0);
        assert!(
            mp.select(4, &mut ports).is_empty(),
            "head is waiting for an operand"
        );
        mp.satisfy(5);
        let issued = mp.select(4, &mut ports);
        assert_eq!(issued.len(), 2, "both issue once the head is satisfied");
    }

    #[test]
    fn out_of_order_mp_bypasses_a_waiting_head() {
        let mut mp = mp(SchedPolicy::OutOfOrder, 4);
        let mut ports = MemPorts::new(2);
        mp.insert(5, OpClass::IntAlu, 2);
        mp.insert(6, OpClass::IntAlu, 0);
        let issued = mp.select(4, &mut ports);
        assert_eq!(issued, vec![(6, OpClass::IntAlu)]);
        mp.satisfy(5);
        assert!(
            mp.select(4, &mut ports).is_empty(),
            "still one operand missing"
        );
        mp.satisfy(5);
        assert_eq!(mp.select(4, &mut ports).len(), 1);
    }

    #[test]
    fn occupancy_and_peak_are_tracked() {
        let mut mp = mp(SchedPolicy::InOrder, 8);
        for seq in 0..5 {
            mp.insert(seq, OpClass::FpMul, 0);
        }
        assert_eq!(mp.occupancy(), 5);
        assert_eq!(mp.peak_occupancy(), 5);
        let mut ports = MemPorts::new(2);
        let issued = mp.select(8, &mut ports);
        for (seq, _) in issued {
            mp.schedule_completion(seq, 1);
        }
        mp.drain_completed(1);
        assert!(mp.occupancy() < 5);
        assert_eq!(mp.peak_occupancy(), 5);
    }

    #[test]
    fn next_event_reports_the_earliest_completion() {
        let mut mp = mp(SchedPolicy::InOrder, 4);
        assert_eq!(mp.next_event(0), None);
        mp.insert(1, OpClass::FpAdd, 0);
        mp.schedule_completion(1, 9);
        assert_eq!(mp.next_event(0), Some(9));
        assert_eq!(mp.next_event(9), None, "events are strictly in the future");
    }

    #[test]
    fn satisfy_on_unknown_seq_is_harmless() {
        let mut mp = mp(SchedPolicy::InOrder, 2);
        mp.satisfy(99);
        assert_eq!(mp.occupancy(), 0);
    }
}
