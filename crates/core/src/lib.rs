//! The Decoupled KILO-Instruction Processor (D-KIP) — the primary
//! contribution of the paper.
//!
//! The D-KIP splits execution by *execution locality*: a small out-of-order
//! **Cache Processor** executes instructions that depend only on cache hits,
//! while instructions that (transitively) depend on main-memory accesses
//! drain through a FIFO **Low-Locality Instruction Buffer** into a simple
//! **Memory Processor**. The pieces map one-to-one onto modules:
//!
//! | Paper structure | Module |
//! |---|---|
//! | Aging-ROB + Analyze stage | [`processor`] (uses [`dkip_ooo::Rob`]) |
//! | Low-Locality Bit Vector + Architectural Writers Log | [`llbv`] |
//! | Low-Locality Instruction Buffer (integer + FP) | [`llib`] |
//! | Banked Low-Locality Register File | [`llrf`] |
//! | Future-File Memory Processors | [`memory_processor`] |
//! | Address Processor (LSQ, memory ports, load-value FIFO) | [`address_processor`] |
//! | Checkpointing Stack | [`checkpoint`] |
//! | Full pipeline of Figure 8 | [`processor::DkipProcessor`] |
//!
//! # Example
//!
//! ```
//! use dkip_core::run_dkip;
//! use dkip_model::config::{DkipConfig, MemoryHierarchyConfig};
//! use dkip_trace::Benchmark;
//!
//! let stats = run_dkip(
//!     &DkipConfig::paper_default(),
//!     &MemoryHierarchyConfig::mem_400(),
//!     Benchmark::Mesa,
//!     5_000,
//!     1,
//! );
//! assert!(stats.high_locality_fraction() > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address_processor;
pub mod checkpoint;
pub mod llbv;
pub mod llib;
pub mod llrf;
pub mod memory_processor;
pub mod processor;

pub use address_processor::AddressProcessor;
pub use checkpoint::CheckpointStack;
pub use llbv::{Llbv, LowLocalityWriter};
pub use llib::{Llib, LlibEntry, SourceState};
pub use llrf::{Llrf, LlrfSlot};
pub use memory_processor::MemoryProcessor;
pub use processor::{
    run_dkip, run_dkip_stream, run_dkip_stream_probed, DkipProcessor, DkipSnapshot,
};
