//! The Address Processor (AP).
//!
//! The Address Processor owns the load/store queue, the global memory ports
//! and the memory hierarchy; both the Cache Processor and the Memory
//! Processors perform their memory accesses through it (Section 3.3 of the
//! paper describes the LSQ as decoupled, in the spirit of decoupled
//! access-execute architectures). It also keeps the per-LLIB FIFO of
//! completed long-latency load values: when a load that missed to main
//! memory completes, its value is held here until the first depending
//! instruction reaches the head of the LLIB and moves into a Memory
//! Processor.

use dkip_mem::{AccessOutcome, MemStats, MemoryHierarchy};
use dkip_model::config::AddressProcessorConfig;
use dkip_model::{fast_set_with_capacity, FastHashSet};
use dkip_ooo::{Lsq, MemPorts};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The Address Processor.
///
/// `Clone` deep-copies the LSQ, ports, memory hierarchy and in-flight
/// load bookkeeping, so a cloned processor checkpoint resumes
/// bit-identically.
#[derive(Debug, Clone)]
pub struct AddressProcessor {
    lsq: Lsq,
    ports: MemPorts,
    mem: MemoryHierarchy,
    /// Long-latency loads in flight: (completion cycle, load seq).
    pending_loads: BinaryHeap<Reverse<(u64, u64)>>,
    /// Long-latency loads whose value is available in the load-value FIFO.
    available_values: FastHashSet<u64>,
    total_long_latency_loads: u64,
}

impl AddressProcessor {
    /// Creates an Address Processor over a memory hierarchy.
    #[must_use]
    pub fn new(config: &AddressProcessorConfig, mem: MemoryHierarchy) -> Self {
        AddressProcessor {
            lsq: Lsq::new(config.lsq_capacity),
            ports: MemPorts::new(config.memory_ports),
            mem,
            pending_loads: BinaryHeap::with_capacity(config.lsq_capacity),
            available_values: fast_set_with_capacity(4 * config.lsq_capacity),
            total_long_latency_loads: 0,
        }
    }

    /// Starts a new cycle: refreshes the memory ports and appends the
    /// long-latency loads whose data arrives this cycle to `arrived` (their
    /// values enter the load-value FIFO). The caller reuses the buffer
    /// across cycles.
    pub fn begin_cycle_into(&mut self, now: u64, arrived: &mut Vec<u64>) {
        self.ports.begin_cycle();
        while let Some(&Reverse((cycle, seq))) = self.pending_loads.peek() {
            if cycle > now {
                break;
            }
            self.pending_loads.pop();
            self.available_values.insert(seq);
            arrived.push(seq);
        }
    }

    /// Allocating convenience form of [`AddressProcessor::begin_cycle_into`].
    pub fn begin_cycle(&mut self, now: u64) -> Vec<u64> {
        let mut arrived = Vec::new();
        self.begin_cycle_into(now, &mut arrived);
        arrived
    }

    /// The shared memory ports (consumed by the CP issue stage and the MPs).
    pub fn ports_mut(&mut self) -> &mut MemPorts {
        &mut self.ports
    }

    /// The load/store queue.
    pub fn lsq_mut(&mut self) -> &mut Lsq {
        &mut self.lsq
    }

    /// Immutable access to the load/store queue.
    #[must_use]
    pub fn lsq(&self) -> &Lsq {
        &self.lsq
    }

    /// Performs a timing access against the hierarchy.
    pub fn access(&mut self, addr: u64, is_write: bool, now: u64) -> AccessOutcome {
        self.mem.access(addr, is_write, now)
    }

    /// Performs a functional (timing-free) cache-warming access; see
    /// [`MemoryHierarchy::warm_access`].
    pub fn warm_access(&mut self, addr: u64, is_write: bool) {
        self.mem.warm_access(addr, is_write);
    }

    /// Registers a load whose miss is being serviced by main memory; its
    /// value becomes available at `completes_at`.
    pub fn register_long_latency_load(&mut self, seq: u64, completes_at: u64) {
        self.total_long_latency_loads += 1;
        self.pending_loads.push(Reverse((completes_at, seq)));
    }

    /// Whether the value of long-latency load `seq` is available in the
    /// load-value FIFO.
    #[must_use]
    pub fn load_value_ready(&self, seq: u64) -> bool {
        self.available_values.contains(&seq)
    }

    /// The earliest future cycle (strictly after `now`) at which the AP's
    /// state can change on its own: the next long-latency load-value
    /// arrival or the next outstanding cache fill. `None` when nothing is
    /// in flight.
    pub fn next_event(&mut self, now: u64) -> Option<u64> {
        let arrival = self
            .pending_loads
            .peek()
            .map(|&Reverse((cycle, _))| cycle)
            .filter(|&cycle| cycle > now);
        match (arrival, self.mem.next_event(now)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of long-latency loads handled by the AP so far.
    #[must_use]
    pub fn total_long_latency_loads(&self) -> u64 {
        self.total_long_latency_loads
    }

    /// Memory-hierarchy statistics.
    #[must_use]
    pub fn mem_stats(&self) -> MemStats {
        self.mem.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkip_mem::AccessLevel;
    use dkip_model::config::MemoryHierarchyConfig;

    fn ap() -> AddressProcessor {
        let mem = MemoryHierarchy::new(MemoryHierarchyConfig::mem_400()).unwrap();
        AddressProcessor::new(&AddressProcessorConfig::paper_default(), mem)
    }

    #[test]
    fn long_latency_loads_become_available_at_their_completion_cycle() {
        let mut ap = ap();
        ap.register_long_latency_load(7, 500);
        assert!(!ap.load_value_ready(7));
        assert!(ap.begin_cycle(499).is_empty());
        let arrived = ap.begin_cycle(500);
        assert_eq!(arrived, vec![7]);
        assert!(ap.load_value_ready(7));
        assert_eq!(ap.total_long_latency_loads(), 1);
    }

    #[test]
    fn accesses_go_through_the_hierarchy() {
        let mut ap = ap();
        let outcome = ap.access(0xdead_0000, false, 0);
        assert_eq!(outcome.level, AccessLevel::Memory);
        let again = ap.access(0xdead_0000, false, outcome.latency + 1);
        assert_eq!(again.level, AccessLevel::L1);
        assert!(ap.mem_stats().total() == 2);
    }

    #[test]
    fn ports_are_limited_per_cycle() {
        let mut ap = ap();
        ap.begin_cycle(0);
        assert!(ap.ports_mut().try_issue());
        assert!(ap.ports_mut().try_issue());
        assert!(
            !ap.ports_mut().try_issue(),
            "Table 2: two global memory ports"
        );
        ap.begin_cycle(1);
        assert!(ap.ports_mut().try_issue());
    }

    #[test]
    fn next_event_tracks_pending_loads_and_fills() {
        let mut ap = ap();
        assert_eq!(ap.next_event(0), None);
        ap.register_long_latency_load(7, 500);
        assert_eq!(ap.next_event(0), Some(500));
        // An outstanding hierarchy fill completing earlier wins.
        let outcome = ap.access(0xbeef_0000, false, 10);
        assert_eq!(ap.next_event(10), Some(10 + outcome.latency));
        // Once the fill expires only the load-value arrival remains, and an
        // event is always strictly in the future.
        assert_eq!(ap.next_event(499), Some(500));
        assert_eq!(ap.next_event(500), None);
    }

    #[test]
    fn lsq_is_exposed_for_dispatch_and_retire() {
        let mut ap = ap();
        assert_eq!(ap.lsq().capacity(), 512);
        ap.lsq_mut().dispatch_load(1);
        assert_eq!(ap.lsq().occupancy(), 1);
        ap.lsq_mut().retire_load(1);
        assert_eq!(ap.lsq().occupancy(), 0);
    }
}
