//! The Checkpointing Stack.
//!
//! Checkpoints of the architectural register file are taken during the
//! Analyze stage (Section 3.2 of the paper). The D-KIP needs at least one
//! checkpoint in flight whenever low-locality instructions exist, so that a
//! misprediction or exception resolved in the Memory Processor can be
//! recovered from. A checkpoint can be released once every low-locality
//! instruction belonging to its *epoch* (the instructions analysed between
//! it and the next checkpoint) has completed.

use std::collections::VecDeque;

/// One checkpoint epoch: the sequence number at which the checkpoint was
/// taken and how many of its low-locality instructions are still
/// outstanding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Epoch {
    id: u64,
    taken_at_seq: u64,
    outstanding: u64,
}

/// The stack of in-flight checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStack {
    capacity: usize,
    epochs: VecDeque<Epoch>,
    next_id: u64,
    taken: u64,
    recoveries: u64,
}

impl CheckpointStack {
    /// Creates a stack with room for `capacity` checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "checkpoint stack capacity must be positive");
        CheckpointStack {
            capacity,
            epochs: VecDeque::new(),
            next_id: 0,
            taken: 0,
            recoveries: 0,
        }
    }

    /// Whether a new checkpoint can be taken.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.epochs.len() < self.capacity
    }

    /// Number of live checkpoints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether no checkpoints are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Total checkpoints ever taken.
    #[must_use]
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Total recoveries performed.
    #[must_use]
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// The epoch id of the most recent checkpoint, if any.
    #[must_use]
    pub fn current_epoch(&self) -> Option<u64> {
        self.epochs.back().map(|e| e.id)
    }

    /// Takes a checkpoint at instruction `seq`, returning its epoch id, or
    /// `None` if the stack is full (the Analyze stage must stall).
    pub fn take(&mut self, seq: u64) -> Option<u64> {
        if !self.has_space() {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.taken += 1;
        self.epochs.push_back(Epoch {
            id,
            taken_at_seq: seq,
            outstanding: 0,
        });
        Some(id)
    }

    /// Registers a low-locality instruction belonging to epoch `epoch`.
    pub fn register_instruction(&mut self, epoch: u64) {
        if let Some(e) = self.epochs.iter_mut().find(|e| e.id == epoch) {
            e.outstanding += 1;
        }
    }

    /// Records the completion of a low-locality instruction of epoch
    /// `epoch`, then releases any leading checkpoints whose epochs have
    /// fully drained (a checkpoint is only released while a newer one
    /// exists, so there is always a recovery point for in-flight
    /// low-locality code).
    pub fn complete_instruction(&mut self, epoch: u64) {
        if let Some(e) = self.epochs.iter_mut().find(|e| e.id == epoch) {
            e.outstanding = e.outstanding.saturating_sub(1);
        }
        while self.epochs.len() > 1 && self.epochs.front().is_some_and(|e| e.outstanding == 0) {
            self.epochs.pop_front();
        }
    }

    /// Performs a recovery to the most recent checkpoint (counts it and
    /// keeps the stack intact — younger state simply does not exist in the
    /// trace-driven model because fetch stalled at the mispredicted branch).
    pub fn recover(&mut self) {
        self.recoveries += 1;
    }

    /// The sequence number at which the oldest live checkpoint was taken.
    #[must_use]
    pub fn oldest_seq(&self) -> Option<u64> {
        self.epochs.front().map(|e| e.taken_at_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_register_complete_releases_drained_epochs() {
        let mut stack = CheckpointStack::new(4);
        let e0 = stack.take(100).unwrap();
        stack.register_instruction(e0);
        stack.register_instruction(e0);
        let e1 = stack.take(200).unwrap();
        stack.register_instruction(e1);
        assert_eq!(stack.len(), 2);

        stack.complete_instruction(e0);
        assert_eq!(
            stack.len(),
            2,
            "epoch 0 still has one outstanding instruction"
        );
        stack.complete_instruction(e0);
        assert_eq!(
            stack.len(),
            1,
            "epoch 0 drained and a newer checkpoint exists"
        );
        assert_eq!(stack.current_epoch(), Some(e1));
    }

    #[test]
    fn the_last_checkpoint_is_never_released() {
        let mut stack = CheckpointStack::new(2);
        let e0 = stack.take(10).unwrap();
        stack.register_instruction(e0);
        stack.complete_instruction(e0);
        assert_eq!(
            stack.len(),
            1,
            "a lone checkpoint stays as the recovery point"
        );
    }

    #[test]
    fn full_stack_refuses_new_checkpoints() {
        let mut stack = CheckpointStack::new(2);
        assert!(stack.take(1).is_some());
        assert!(stack.take(2).is_some());
        assert!(stack.take(3).is_none());
        assert_eq!(stack.taken(), 2);
        assert!(!stack.has_space());
    }

    #[test]
    fn recoveries_are_counted() {
        let mut stack = CheckpointStack::new(2);
        stack.take(1);
        stack.recover();
        stack.recover();
        assert_eq!(stack.recoveries(), 2);
    }

    #[test]
    fn oldest_seq_tracks_the_front_checkpoint() {
        let mut stack = CheckpointStack::new(4);
        assert_eq!(stack.oldest_seq(), None);
        stack.take(5);
        stack.take(9);
        assert_eq!(stack.oldest_seq(), Some(5));
    }
}
