//! The Low-Locality Bit Vector (LLBV) and the Architectural Writers Log
//! (AWL).
//!
//! The LLBV has one bit per architectural register: the bit is set while the
//! latest (in program order, as seen by the in-order Analyze stage) writer
//! of that register is a long-latency event — a load serviced by main
//! memory, or an instruction that itself was classified as low locality.
//! The AWL remembers *which* low-locality producer wrote the register, so
//! that instructions entering the Memory Processor know what they are
//! waiting for.

use dkip_model::{ArchReg, TOTAL_ARCH_REGS};

/// Identifies the low-locality producer of a register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LowLocalityWriter {
    /// The value is produced by a long-latency load executed by the Address
    /// Processor; the payload is the load's sequence number.
    Load(u64),
    /// The value is produced by an instruction sent to the LLIB / Memory
    /// Processor; the payload is that instruction's sequence number.
    MpInstr(u64),
}

/// The LLBV plus its associated writers log.
#[derive(Debug, Clone)]
pub struct Llbv {
    long_latency: [bool; TOTAL_ARCH_REGS],
    writers: [Option<LowLocalityWriter>; TOTAL_ARCH_REGS],
    marked: usize,
}

impl Llbv {
    /// Creates an all-clear bit vector.
    #[must_use]
    pub fn new() -> Self {
        Llbv {
            long_latency: [false; TOTAL_ARCH_REGS],
            writers: [None; TOTAL_ARCH_REGS],
            marked: 0,
        }
    }

    /// Marks `reg` as long latency, produced by `writer`.
    pub fn mark(&mut self, reg: ArchReg, writer: LowLocalityWriter) {
        let idx = reg.flat_index();
        if !self.long_latency[idx] {
            self.marked += 1;
        }
        self.long_latency[idx] = true;
        self.writers[idx] = Some(writer);
    }

    /// Clears `reg` (a short-latency instruction redefined it).
    pub fn clear(&mut self, reg: ArchReg) {
        let idx = reg.flat_index();
        if self.long_latency[idx] {
            self.marked -= 1;
        }
        self.long_latency[idx] = false;
        self.writers[idx] = None;
    }

    /// Whether `reg` currently holds a long-latency value.
    #[must_use]
    pub fn is_long_latency(&self, reg: ArchReg) -> bool {
        self.long_latency[reg.flat_index()]
    }

    /// The low-locality writer of `reg`, if the register is marked.
    #[must_use]
    pub fn writer(&self, reg: ArchReg) -> Option<LowLocalityWriter> {
        self.writers[reg.flat_index()]
    }

    /// Number of registers currently marked long latency.
    #[must_use]
    pub fn marked_count(&self) -> usize {
        self.marked
    }

    /// Clears every bit (checkpoint recovery restores the full state to the
    /// Cache Processor).
    pub fn clear_all(&mut self) {
        self.long_latency = [false; TOTAL_ARCH_REGS];
        self.writers = [None; TOTAL_ARCH_REGS];
        self.marked = 0;
    }
}

impl Default for Llbv {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_clear_round_trip() {
        let mut llbv = Llbv::new();
        let r5 = ArchReg::int(5);
        assert!(!llbv.is_long_latency(r5));
        llbv.mark(r5, LowLocalityWriter::Load(42));
        assert!(llbv.is_long_latency(r5));
        assert_eq!(llbv.writer(r5), Some(LowLocalityWriter::Load(42)));
        assert_eq!(llbv.marked_count(), 1);
        llbv.clear(r5);
        assert!(!llbv.is_long_latency(r5));
        assert_eq!(llbv.marked_count(), 0);
        assert_eq!(llbv.writer(r5), None);
    }

    #[test]
    fn int_and_fp_registers_are_independent() {
        let mut llbv = Llbv::new();
        llbv.mark(ArchReg::int(3), LowLocalityWriter::Load(1));
        assert!(!llbv.is_long_latency(ArchReg::fp(3)));
    }

    #[test]
    fn double_mark_does_not_double_count() {
        let mut llbv = Llbv::new();
        llbv.mark(ArchReg::fp(1), LowLocalityWriter::Load(1));
        llbv.mark(ArchReg::fp(1), LowLocalityWriter::MpInstr(9));
        assert_eq!(llbv.marked_count(), 1);
        assert_eq!(
            llbv.writer(ArchReg::fp(1)),
            Some(LowLocalityWriter::MpInstr(9))
        );
        llbv.clear(ArchReg::fp(1));
        llbv.clear(ArchReg::fp(1));
        assert_eq!(llbv.marked_count(), 0);
    }

    #[test]
    fn clear_all_resets_everything() {
        let mut llbv = Llbv::new();
        for i in 0..8 {
            llbv.mark(ArchReg::int(i), LowLocalityWriter::Load(u64::from(i)));
        }
        assert_eq!(llbv.marked_count(), 8);
        llbv.clear_all();
        assert_eq!(llbv.marked_count(), 0);
        assert!(!llbv.is_long_latency(ArchReg::int(3)));
    }
}
