//! The Low-Locality Register File (LLRF).
//!
//! The LLRF stores the READY operand (at most one per instruction — an
//! Alpha-ISA property the paper relies on) of each instruction parked in the
//! LLIB. It is organised as single-ported banks; because the LLIB is a FIFO,
//! insertion and extraction always touch disjoint groups of banks, so no
//! port conflicts arise. This model tracks per-bank occupancy, allocation
//! round-robin across banks, and the peak occupancy reported in Figures 13
//! and 14.

use dkip_model::config::LlibConfig;

/// A banked register file for READY operands of low-locality instructions.
#[derive(Debug, Clone)]
pub struct Llrf {
    banks: Vec<usize>,
    regs_per_bank: usize,
    next_bank: usize,
    occupied: usize,
    peak: usize,
}

/// The bank and slot an LLRF register was allocated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlrfSlot {
    /// Bank index.
    pub bank: usize,
}

impl Llrf {
    /// Creates an LLRF from the LLIB configuration.
    #[must_use]
    pub fn new(config: &LlibConfig) -> Self {
        Llrf {
            banks: vec![0; config.llrf_banks],
            regs_per_bank: config.llrf_regs_per_bank,
            next_bank: 0,
            occupied: 0,
            peak: 0,
        }
    }

    /// Total register capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.banks.len() * self.regs_per_bank
    }

    /// Registers currently allocated.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Peak number of simultaneously allocated registers.
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Whether at least one register can be allocated.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.occupied < self.capacity()
    }

    /// Allocates one register, rotating across banks (the FIFO insertion
    /// order of the LLIB naturally spreads registers over banks).
    ///
    /// Returns `None` when every bank is full.
    pub fn allocate(&mut self) -> Option<LlrfSlot> {
        if !self.has_space() {
            return None;
        }
        for probe in 0..self.banks.len() {
            let bank = (self.next_bank + probe) % self.banks.len();
            if self.banks[bank] < self.regs_per_bank {
                self.banks[bank] += 1;
                self.next_bank = (bank + 1) % self.banks.len();
                self.occupied += 1;
                self.peak = self.peak.max(self.occupied);
                return Some(LlrfSlot { bank });
            }
        }
        None
    }

    /// Frees a previously allocated register (its value has been read into
    /// the Memory Processor's Future File).
    ///
    /// # Panics
    ///
    /// Panics if the bank has no allocated registers.
    pub fn free(&mut self, slot: LlrfSlot) {
        assert!(self.banks[slot.bank] > 0, "freeing an empty LLRF bank");
        self.banks[slot.bank] -= 1;
        self.occupied -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LlibConfig {
        LlibConfig {
            capacity: 64,
            insertion_rate: 4,
            extraction_rate: 4,
            llrf_banks: 8,
            llrf_regs_per_bank: 2,
        }
    }

    #[test]
    fn allocation_rotates_across_banks() {
        let mut llrf = Llrf::new(&small());
        let slots: Vec<_> = (0..8).map(|_| llrf.allocate().unwrap()).collect();
        let banks: std::collections::HashSet<_> = slots.iter().map(|s| s.bank).collect();
        assert_eq!(
            banks.len(),
            8,
            "first eight allocations hit eight distinct banks"
        );
    }

    #[test]
    fn capacity_and_peak_tracking() {
        let mut llrf = Llrf::new(&small());
        assert_eq!(llrf.capacity(), 16);
        let mut slots = Vec::new();
        for _ in 0..16 {
            slots.push(llrf.allocate().unwrap());
        }
        assert!(!llrf.has_space());
        assert!(llrf.allocate().is_none());
        assert_eq!(llrf.peak(), 16);
        for slot in slots {
            llrf.free(slot);
        }
        assert_eq!(llrf.occupied(), 0);
        assert_eq!(llrf.peak(), 16, "peak is sticky");
        assert!(llrf.has_space());
    }

    #[test]
    fn paper_default_capacity_matches_table_2() {
        let llrf = Llrf::new(&LlibConfig::paper_default());
        assert_eq!(llrf.capacity(), 8 * 256);
    }

    #[test]
    #[should_panic(expected = "empty LLRF bank")]
    fn double_free_panics() {
        let mut llrf = Llrf::new(&small());
        let slot = llrf.allocate().unwrap();
        llrf.free(slot);
        llrf.free(slot);
    }
}
