//! The full Decoupled KILO-Instruction Processor pipeline (Figure 8 of the
//! paper).
//!
//! The pipeline chains three engines:
//!
//! 1. the out-of-order **Cache Processor** — fetch, rename, small issue
//!    queues, an **Aging-ROB** whose head reaches the **Analyze** stage a
//!    fixed number of cycles after decode;
//! 2. the FIFO **Low-Locality Instruction Buffers** (one integer, one FP)
//!    with their banked **LLRF** register storage; and
//! 3. the in-order (by default) **Memory Processors** fed by the LLIBs and
//!    by the **Address Processor**'s load-value FIFO.
//!
//! The Analyze stage classifies each instruction using the **LLBV**: an
//! instruction with a long-latency source drains to the LLIB, everything
//! else completes in the Cache Processor. Checkpoints taken at Analyze
//! provide recovery for branches that resolve in a Memory Processor.

use crate::address_processor::AddressProcessor;
use crate::checkpoint::CheckpointStack;
use crate::llbv::{Llbv, LowLocalityWriter};
use crate::llib::{Llib, LlibEntry, SourceState};
use crate::llrf::Llrf;
use crate::memory_processor::MemoryProcessor;
use dkip_bpred::{BranchPredictor, PredictorKind};
use dkip_mem::{AccessLevel, MemoryHierarchy};
use dkip_model::config::{event_clock_enabled, DkipConfig, MemoryHierarchyConfig};
use dkip_model::telemetry::{MetricsFrame, Stage, Telemetry};
use dkip_model::{
    fast_map_with_capacity, fast_set_with_capacity, ConsumerTable, DepList, FastHashMap,
    FastHashSet, LastWriters, MicroOp, OpClass, RegClass, SimStats,
};
use dkip_ooo::lsq::FORWARD_LATENCY;
use dkip_ooo::{FunctionalUnits, IssueQueue, Rob, RobEntry};
use dkip_trace::{Benchmark, TraceGenerator};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Metadata kept for every instruction that left the Cache Processor as low
/// locality (parked in an LLIB, executing in a Memory Processor, or a
/// long-latency load owned by the Address Processor).
#[derive(Debug, Clone)]
struct LowMeta {
    op: MicroOp,
    epoch: u64,
    queue: RegClass,
    predicted_taken: bool,
    mispredicted: bool,
}

/// A deep-copied checkpoint of a [`DkipProcessor`], captured by
/// [`DkipProcessor::snapshot`].
///
/// The snapshot holds the complete state of every decoupled engine — Cache
/// Processor, LLIBs/LLRFs/LLBV, checkpoint stack, Memory Processors,
/// Address Processor (with its cache hierarchy), branch predictor and
/// statistics — so a processor restored from it ([`DkipProcessor::restore`]
/// or [`DkipSnapshot::to_processor`]) continues bit-identically.
#[derive(Debug, Clone)]
pub struct DkipSnapshot {
    state: DkipProcessor,
}

impl DkipSnapshot {
    /// Materialises an independent processor that resumes from this
    /// checkpoint.
    #[must_use]
    pub fn to_processor(&self) -> DkipProcessor {
        self.state.clone()
    }
}

/// The Decoupled KILO-Instruction Processor.
#[derive(Debug, Clone)]
pub struct DkipProcessor {
    cfg: DkipConfig,
    predictor: Box<dyn BranchPredictor>,
    cycle: u64,

    // Cache Processor.
    rob: Rob,
    cp_int_iq: IssueQueue,
    cp_fp_iq: IssueQueue,
    cp_fus: FunctionalUnits,
    cp_completions: BinaryHeap<Reverse<(u64, u64)>>,
    cp_consumers: ConsumerTable,
    last_writer: LastWriters,
    /// Loads that issued in the CP and were discovered to miss to memory.
    cp_long_latency_loads: FastHashSet<u64>,

    // Low-locality machinery.
    llbv: Llbv,
    llib_int: Llib,
    llib_fp: Llib,
    llrf_int: Llrf,
    llrf_fp: Llrf,
    checkpoints: CheckpointStack,
    analyzed_since_checkpoint: u64,

    // Memory Processors and Address Processor.
    mp_int: MemoryProcessor,
    mp_fp: MemoryProcessor,
    ap: AddressProcessor,
    low_meta: FastHashMap<u64, LowMeta>,
    /// Producer (MP instruction) → consumers inserted in an MP waiting on it.
    mp_consumers: ConsumerTable,
    /// Long-latency load → consumers inserted in an MP waiting on its value.
    load_waiters: ConsumerTable,

    // Front end.
    fetch_queue: VecDeque<MicroOp>,
    unresolved_mispredicts: VecDeque<u64>,
    fetch_resume_at: u64,
    refill_boundary: u64,
    /// Whether the trace iterator has returned `None` (finite streams such
    /// as the execution-driven RISC-V kernels end; the synthetic generators
    /// never do).
    trace_done: bool,
    /// Force one `tick()` per simulated cycle instead of letting [`run`]
    /// fast-forward over quiesced stretches (set by `DKIP_NO_SKIP=1`).
    ///
    /// [`run`]: DkipProcessor::run
    single_step: bool,

    stats: SimStats,

    // Reusable per-cycle buffers (cleared and refilled every tick; they keep
    // the steady-state cycle loop free of heap allocation).
    arrived_scratch: Vec<u64>,
    mp_done_scratch: Vec<u64>,
    select_scratch: Vec<(u64, OpClass)>,
}

impl DkipProcessor {
    /// Builds a D-KIP from its configuration and a memory hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(cfg: DkipConfig, mem: MemoryHierarchy) -> Self {
        cfg.validate().expect("invalid D-KIP configuration");
        let cp = &cfg.cache_processor;
        DkipProcessor {
            predictor: PredictorKind::Perceptron.build(),
            cycle: 0,
            rob: Rob::new(cp.rob_capacity),
            cp_int_iq: IssueQueue::new(cp.int_iq_capacity, cp.sched),
            cp_fp_iq: IssueQueue::new(cp.fp_iq_capacity, cp.sched),
            cp_fus: FunctionalUnits::new(cp.fu),
            cp_completions: BinaryHeap::with_capacity(cp.rob_capacity),
            cp_consumers: ConsumerTable::with_capacity(cp.rob_capacity),
            last_writer: LastWriters::new(),
            cp_long_latency_loads: fast_set_with_capacity(cp.rob_capacity),
            llbv: Llbv::new(),
            llib_int: Llib::new(cfg.llib.capacity),
            llib_fp: Llib::new(cfg.llib.capacity),
            llrf_int: Llrf::new(&cfg.llib),
            llrf_fp: Llrf::new(&cfg.llib),
            checkpoints: CheckpointStack::new(cfg.checkpoint.stack_entries),
            analyzed_since_checkpoint: 0,
            mp_int: MemoryProcessor::new(&cfg.memory_processor),
            mp_fp: MemoryProcessor::new(&cfg.memory_processor),
            ap: AddressProcessor::new(&cfg.address_processor, mem),
            // Low-locality population is bounded by the two LLIBs plus the
            // two MP queues plus the AP's outstanding loads.
            low_meta: fast_map_with_capacity(
                2 * cfg.llib.capacity.min(16_384) + 2 * cfg.memory_processor.queue_capacity,
            ),
            mp_consumers: ConsumerTable::with_capacity(2 * cfg.memory_processor.queue_capacity),
            load_waiters: ConsumerTable::with_capacity(cfg.address_processor.lsq_capacity),
            fetch_queue: VecDeque::new(),
            unresolved_mispredicts: VecDeque::new(),
            fetch_resume_at: 0,
            refill_boundary: u64::MAX,
            trace_done: false,
            single_step: !event_clock_enabled(),
            stats: SimStats::new(),
            arrived_scratch: Vec::new(),
            mp_done_scratch: Vec::new(),
            select_scratch: Vec::new(),
            cfg,
        }
    }

    /// The configuration of this processor.
    #[must_use]
    pub fn config(&self) -> &DkipConfig {
        &self.cfg
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// A one-line snapshot of the main pipeline state, for debugging and
    /// the examples' progress output.
    #[must_use]
    pub fn debug_state(&self) -> String {
        let head = self.rob.head().map(|e| {
            format!(
                "seq={} {} issued={} completed={} pending={} age={}",
                e.op.seq,
                e.op.class,
                e.issued,
                e.completed,
                e.pending_srcs,
                self.cycle.saturating_sub(e.dispatch_cycle)
            )
        });
        format!(
            "cycle={} committed={} rob={} head=[{}] iq_int={} iq_fp={} llib={}L/{}F mp={}L/{}F chkpt={} llbv={} lsq={}",
            self.cycle,
            self.stats.committed,
            self.rob.len(),
            head.unwrap_or_else(|| "empty".to_owned()),
            self.cp_int_iq.len(),
            self.cp_fp_iq.len(),
            self.llib_int.len(),
            self.llib_fp.len(),
            self.mp_int.occupancy(),
            self.mp_fp.occupancy(),
            self.checkpoints.len(),
            self.llbv.marked_count(),
            self.ap.lsq().occupancy(),
        )
    }

    /// Forces (or releases) single-stepped simulation regardless of the
    /// `DKIP_NO_SKIP` environment variable sampled at construction.
    pub fn set_single_step(&mut self, single_step: bool) {
        self.single_step = single_step;
    }

    /// Captures a checkpoint of the complete processor state (all decoupled
    /// engines, caches, predictor, statistics). See [`DkipSnapshot`] for
    /// the contract.
    ///
    /// The trace iterator is *not* part of the processor: callers pairing a
    /// snapshot with a resumable stream must checkpoint the stream position
    /// themselves (e.g. by cloning the [`MicroOp`] source).
    #[must_use]
    pub fn snapshot(&self) -> DkipSnapshot {
        DkipSnapshot {
            state: self.clone(),
        }
    }

    /// Replaces this processor's entire state with the checkpoint's; the
    /// next [`DkipProcessor::run`] continues exactly as the snapshotted
    /// processor would have.
    pub fn restore(&mut self, snapshot: &DkipSnapshot) {
        *self = snapshot.state.clone();
    }

    /// Functionally warms the long-lived microarchitectural state with one
    /// instruction that is *not* being simulated in detail: memory ops
    /// install/promote their line in the Address Processor's hierarchy
    /// (timing-free) and conditional branches train the direction predictor
    /// with the in-order predict/update pair the Cache Processor would
    /// apply. Used by the sampled-simulation mode for every fast-forwarded
    /// instruction; pipeline, clock and committed counters are untouched.
    pub fn warm_op(&mut self, op: &MicroOp) {
        if let Some(addr) = op.mem_addr {
            self.ap.warm_access(addr, op.is_store());
        }
        if op.is_conditional_branch() {
            let taken = op.branch.expect("conditional branch").taken;
            let predicted = self.predictor.predict(op.pc);
            self.predictor.update(op.pc, taken, predicted);
        }
    }

    /// Runs until `max_instrs` instructions have committed, the trace ends
    /// and the whole machine drains (finite execution-driven streams run to
    /// completion), or a safety cycle bound is reached. Returns the
    /// accumulated statistics.
    ///
    /// Unless single-stepping is forced (`DKIP_NO_SKIP=1`), quiesced
    /// stretches — a tick in which no load value arrived, no instruction
    /// moved between pipeline structures and nothing fetched, issued,
    /// completed or committed — are fast-forwarded to the earliest
    /// [`DkipProcessor::next_event`], with the per-cycle stall counters
    /// bumped by the skipped delta so every statistic stays bit-identical
    /// to single-stepping.
    pub fn run(&mut self, trace: &mut dyn Iterator<Item = MicroOp>, max_instrs: u64) -> SimStats {
        self.run_probed(trace, max_instrs, None)
    }

    /// [`run`] with an optional telemetry sink attached. `None` takes the
    /// exact same path as [`run`]; a sink observes every pipeline stage and
    /// an interval-metrics row whenever the committed-instruction counter
    /// crosses a boundary, without perturbing any statistic.
    ///
    /// [`run`]: DkipProcessor::run
    pub fn run_probed(
        &mut self,
        trace: &mut dyn Iterator<Item = MicroOp>,
        max_instrs: u64,
        mut probe: Option<&mut Telemetry>,
    ) -> SimStats {
        let cycle_cap = self
            .cycle
            .saturating_add(max_instrs.saturating_mul(2000).max(1_000_000));
        // Each run() call may bring a fresh trace, so exhaustion must not
        // latch across calls (it re-latches on the first empty fetch).
        self.trace_done = false;
        while self.stats.committed < max_instrs && self.cycle < cycle_cap {
            let stalls_before = self.stats.stall_counter_snapshot();
            let progress = self.tick_probed(trace, probe.as_deref_mut());
            if let Some(t) = probe.as_deref_mut() {
                if t.metrics_due(self.stats.committed) {
                    t.record_metrics(&self.metrics_frame());
                }
            }
            // Drained: nothing left in the front end, the Aging-ROB, or on
            // the low-locality side (LLIBs / Memory Processors / Address
            // Processor, all tracked by `low_meta`).
            if self.trace_done
                && self.fetch_queue.is_empty()
                && self.rob.is_empty()
                && self.low_meta.is_empty()
            {
                break;
            }
            if !progress && !self.single_step {
                self.skip_quiesced_cycles(cycle_cap, stalls_before);
            }
        }
        self.finalize_stats();
        self.stats.clone()
    }

    /// Advances the whole machine by one cycle.
    pub fn tick(&mut self, trace: &mut dyn Iterator<Item = MicroOp>) {
        let _ = self.tick_probed(trace, None);
    }

    /// The interval-metrics snapshot of the current machine state: Aging-ROB
    /// / CP issue-queue / AP LSQ occupancy, the two LLIBs, the LLBV marked
    /// count, and the cumulative commit, branch, cache and clock counters.
    fn metrics_frame(&self) -> MetricsFrame {
        let mut frame = MetricsFrame {
            cycle: self.cycle,
            committed: self.stats.committed,
            rob: self.rob.len() as u64,
            iq: (self.cp_int_iq.len() + self.cp_fp_iq.len()) as u64,
            lsq: self.ap.lsq().occupancy() as u64,
            llib: (self.llib_int.len() + self.llib_fp.len()) as u64,
            llbv: self.llbv.marked_count() as u64,
            cond_branches: self.stats.cond_branches,
            branch_mispredicts: self.stats.branch_mispredicts,
            ticks_executed: self.stats.ticks_executed,
            cycles_skipped: self.stats.cycles_skipped,
            ..MetricsFrame::default()
        };
        self.ap.mem_stats().fill_metrics(&mut frame);
        frame
    }

    /// Advances the whole machine by one cycle and reports whether any work
    /// happened in any stage. A `false` return means the machine state is
    /// unchanged apart from time-gated conditions, so every following cycle
    /// until [`DkipProcessor::next_event`] would be identical.
    fn tick_probed(
        &mut self,
        trace: &mut dyn Iterator<Item = MicroOp>,
        mut probe: Option<&mut Telemetry>,
    ) -> bool {
        self.cycle += 1;
        self.stats.ticks_executed += 1;
        self.cp_fus.begin_cycle();
        self.mp_int.begin_cycle();
        self.mp_fp.begin_cycle();
        let mut arrived_loads = std::mem::take(&mut self.arrived_scratch);
        arrived_loads.clear();
        self.ap.begin_cycle_into(self.cycle, &mut arrived_loads);
        for &load in &arrived_loads {
            self.handle_load_value_arrival(load, probe.as_deref_mut());
        }
        let mut progress = !arrived_loads.is_empty();
        self.arrived_scratch = arrived_loads;
        progress |= self.drain_mp_completions(probe.as_deref_mut());
        progress |= self.mp_issue(probe.as_deref_mut());
        progress |= self.llib_to_mp_transfer();
        progress |= self.cp_writeback(probe.as_deref_mut());
        progress |= self.analyze(probe.as_deref_mut());
        progress |= self.cp_issue(probe.as_deref_mut());
        progress |= self.cp_dispatch(probe.as_deref_mut());
        progress |= self.fetch(trace, probe);
        progress
    }

    /// The earliest future cycle (strictly after the current one) at which
    /// the machine's state can change without new work arriving: a Cache
    /// Processor completion, a Memory Processor completion, a long-latency
    /// load value arriving at the Address Processor (or any outstanding
    /// cache fill), the end of the front-end refill penalty, or the
    /// Aging-ROB head reaching the Analyze stage. `None` means no event is
    /// pending and the machine can never wake on its own.
    #[must_use]
    pub fn next_event(&mut self) -> Option<u64> {
        let now = self.cycle;
        let mut next = self
            .cp_completions
            .peek()
            .map(|&Reverse((cycle, _))| cycle)
            .filter(|&cycle| cycle > now);
        let mut consider = |candidate: Option<u64>| {
            if let Some(cycle) = candidate {
                next = Some(next.map_or(cycle, |n| n.min(cycle)));
            }
        };
        consider(self.mp_int.next_event(now));
        consider(self.mp_fp.next_event(now));
        consider(self.ap.next_event(now));
        consider(Some(self.fetch_resume_at).filter(|&at| at > now));
        // The Aging-ROB: a head that has not aged yet becomes analyzable at
        // a fixed future cycle even if nothing else happens.
        consider(
            self.rob
                .head()
                .map(|head| head.dispatch_cycle + self.cfg.cache_processor.rob_timer)
                .filter(|&at| at > now),
        );
        next
    }

    /// Fast-forwards over a quiesced stretch: advances `cycle` to just
    /// before the next event (or past `cycle_cap` when no event is pending,
    /// matching a single-stepped spin to the cap) and replays the per-cycle
    /// stall bumps the skipped ticks would have performed.
    fn skip_quiesced_cycles(&mut self, cycle_cap: u64, stalls_before: [u64; 4]) {
        let event = self
            .next_event()
            .unwrap_or_else(|| cycle_cap.saturating_add(1));
        let target = event.min(cycle_cap.saturating_add(1)) - 1;
        if target <= self.cycle {
            return;
        }
        let skipped = target - self.cycle;
        self.cycle = target;
        self.stats.cycles_skipped += skipped;
        self.stats.replay_stall_cycles(stalls_before, skipped);
    }

    fn finalize_stats(&mut self) {
        self.stats.cycles = self.cycle;
        let mem = self.ap.mem_stats();
        self.stats.l1_hits = mem.l1_hits;
        self.stats.l2_hits = mem.l2_hits;
        self.stats.mem_accesses = mem.memory_accesses;
        self.stats.llib_int_peak_instrs = self.llib_int.peak() as u64;
        self.stats.llib_fp_peak_instrs = self.llib_fp.peak() as u64;
        self.stats.llrf_int_peak_regs = self.llrf_int.peak() as u64;
        self.stats.llrf_fp_peak_regs = self.llrf_fp.peak() as u64;
        self.stats.checkpoints_taken = self.checkpoints.taken();
        self.stats.checkpoint_recoveries = self.checkpoints.recoveries();
    }

    fn queue_class(op: &MicroOp) -> RegClass {
        if op.class.is_fp() || op.dst.map(|d| d.class()) == Some(RegClass::Fp) {
            RegClass::Fp
        } else {
            RegClass::Int
        }
    }

    // ------------------------------------------------------------------
    // Long-latency load values arriving at the Address Processor.
    // ------------------------------------------------------------------
    fn handle_load_value_arrival(&mut self, load_seq: u64, mut probe: Option<&mut Telemetry>) {
        // The load itself retires now (it was removed from the Aging-ROB at
        // Analyze and handed to the AP).
        if let Some(meta) = self.low_meta.remove(&load_seq) {
            self.stats.committed += 1;
            self.stats.low_locality_instrs += 1;
            self.checkpoints.complete_instruction(meta.epoch);
            self.ap.lsq_mut().retire_load(load_seq);
            if let Some(t) = probe.as_deref_mut() {
                t.trace_stage(load_seq, Stage::Complete, self.cycle);
                t.trace_commit(load_seq, self.cycle);
            }
        } else if self.cp_long_latency_loads.remove(&load_seq) {
            // The value returned before the load reached the Analyze stage
            // (common for accesses merged into an already-outstanding miss).
            // The load then behaves like a late Cache Processor completion:
            // consumers still inside the CP wake up normally and the Analyze
            // stage commits it as an ordinary executed load.
            self.complete_cp_instruction(load_seq, probe);
        }
        let waiters = self.load_waiters.take(load_seq);
        for &consumer in &waiters {
            let queue = self.low_meta.get(&consumer).map(|m| m.queue);
            match queue {
                Some(RegClass::Int) => self.mp_int.satisfy(consumer),
                Some(RegClass::Fp) => self.mp_fp.satisfy(consumer),
                None => {}
            }
        }
        self.load_waiters.recycle(waiters);
    }

    // ------------------------------------------------------------------
    // Memory Processor completion and issue.
    // ------------------------------------------------------------------
    fn drain_mp_completions(&mut self, mut probe: Option<&mut Telemetry>) -> bool {
        let mut done = std::mem::take(&mut self.mp_done_scratch);
        done.clear();
        self.mp_int.drain_completed_into(self.cycle, &mut done);
        self.mp_fp.drain_completed_into(self.cycle, &mut done);
        for &seq in &done {
            self.handle_mp_completion(seq, probe.as_deref_mut());
        }
        let completed = !done.is_empty();
        self.mp_done_scratch = done;
        completed
    }

    fn handle_mp_completion(&mut self, seq: u64, probe: Option<&mut Telemetry>) {
        let Some(meta) = self.low_meta.remove(&seq) else {
            return;
        };
        self.stats.committed += 1;
        self.stats.low_locality_instrs += 1;
        self.checkpoints.complete_instruction(meta.epoch);
        if let Some(t) = probe {
            t.trace_stage(seq, Stage::Complete, self.cycle);
            t.trace_commit(seq, self.cycle);
        }
        if meta.op.class.is_mem() {
            match meta.op.class {
                OpClass::Load => self.ap.lsq_mut().retire_load(seq),
                OpClass::Store => self.ap.lsq_mut().retire_store(seq),
                _ => {}
            }
        }
        if meta.op.is_conditional_branch() {
            let taken = meta.op.branch.expect("conditional branch").taken;
            self.stats.cond_branches += 1;
            self.predictor
                .update(meta.op.pc, taken, meta.predicted_taken);
            if meta.mispredicted {
                self.stats.branch_mispredicts += 1;
                if self.unresolved_mispredicts.front() == Some(&seq) {
                    self.unresolved_mispredicts.pop_front();
                    // Recovery past the Cache Processor uses the checkpoint
                    // stack: pay the refill penalty plus the checkpoint
                    // restore penalty.
                    self.checkpoints.recover();
                    self.fetch_resume_at = self.cycle
                        + self.cfg.cache_processor.mispredict_penalty
                        + self.cfg.checkpoint.recovery_penalty;
                    self.refill_boundary = seq;
                }
            }
        }
        // Wake MP consumers of this value.
        let waiters = self.mp_consumers.take(seq);
        for &consumer in &waiters {
            let queue = self.low_meta.get(&consumer).map(|m| m.queue);
            match queue {
                Some(RegClass::Int) => self.mp_int.satisfy(consumer),
                Some(RegClass::Fp) => self.mp_fp.satisfy(consumer),
                None => {}
            }
        }
        self.mp_consumers.recycle(waiters);
    }

    fn mp_issue(&mut self, mut probe: Option<&mut Telemetry>) -> bool {
        let mut issued = false;
        let width = self.cfg.memory_processor.decode_width;
        for class in [RegClass::Int, RegClass::Fp] {
            let mut selected = std::mem::take(&mut self.select_scratch);
            selected.clear();
            match class {
                RegClass::Int => self
                    .mp_int
                    .select_into(width, self.ap.ports_mut(), &mut selected),
                RegClass::Fp => self
                    .mp_fp
                    .select_into(width, self.ap.ports_mut(), &mut selected),
            }
            issued |= !selected.is_empty();
            for &(seq, op_class) in &selected {
                if let Some(t) = probe.as_deref_mut() {
                    t.trace_stage(seq, Stage::Issue, self.cycle);
                }
                let latency = if op_class.is_mem() {
                    let addr = self
                        .low_meta
                        .get(&seq)
                        .and_then(|m| m.op.mem_addr)
                        .expect("memory op has an address");
                    let outcome = self.ap.access(addr, op_class.is_store(), self.cycle);
                    if op_class.is_store() {
                        1
                    } else {
                        outcome.latency
                    }
                } else {
                    op_class.exec_latency()
                };
                match class {
                    RegClass::Int => self
                        .mp_int
                        .schedule_completion(seq, self.cycle + latency.max(1)),
                    RegClass::Fp => self
                        .mp_fp
                        .schedule_completion(seq, self.cycle + latency.max(1)),
                }
            }
            self.select_scratch = selected;
        }
        issued
    }

    // ------------------------------------------------------------------
    // LLIB → MP transfer.
    // ------------------------------------------------------------------
    fn llib_to_mp_transfer(&mut self) -> bool {
        let mut transferred = false;
        for class in [RegClass::Int, RegClass::Fp] {
            for _ in 0..self.cfg.llib.extraction_rate {
                let (llib, mp, llrf) = match class {
                    RegClass::Int => (&mut self.llib_int, &mut self.mp_int, &mut self.llrf_int),
                    RegClass::Fp => (&mut self.llib_fp, &mut self.mp_fp, &mut self.llrf_fp),
                };
                let Some(head) = llib.head() else { break };
                if !mp.has_space() {
                    break;
                }
                // The paper's transfer rule: the head may move once the
                // long-latency load it directly depends on has completed;
                // other instructions move without additional checks.
                if let Some(load) = head.blocking_load() {
                    if !self.ap.load_value_ready(load) {
                        break;
                    }
                }
                let entry = llib.pop().expect("head exists");
                transferred = true;
                if let Some(slot) = entry.llrf_slot {
                    llrf.free(slot);
                }
                let seq = entry.op.seq;
                let mut unavailable = 0u8;
                for source in entry.sources.iter().flatten() {
                    match source {
                        SourceState::Ready => {}
                        SourceState::WaitsForLoad(load) => {
                            if !self.ap.load_value_ready(*load) {
                                unavailable += 1;
                                self.load_waiters.push(*load, seq);
                            }
                        }
                        SourceState::WaitsForMp(producer) => {
                            // A producer still in `low_meta` has not
                            // completed (completion removes it), so this one
                            // membership test decides availability.
                            if self.low_meta.contains_key(producer) {
                                unavailable += 1;
                                self.mp_consumers.push(*producer, seq);
                            }
                        }
                    }
                }
                mp.insert(seq, entry.op.class, unavailable);
            }
        }
        transferred
    }

    // ------------------------------------------------------------------
    // Cache Processor: writeback, analyze, issue, dispatch, fetch.
    // ------------------------------------------------------------------
    fn cp_writeback(&mut self, mut probe: Option<&mut Telemetry>) -> bool {
        let mut completed = false;
        while let Some(&Reverse((cycle, seq))) = self.cp_completions.peek() {
            if cycle > self.cycle {
                break;
            }
            completed = true;
            self.cp_completions.pop();
            self.complete_cp_instruction(seq, probe.as_deref_mut());
        }
        completed
    }

    fn complete_cp_instruction(&mut self, seq: u64, probe: Option<&mut Telemetry>) {
        if let Some(t) = probe {
            t.trace_stage(seq, Stage::Complete, self.cycle);
        }
        let (is_cond, taken, predicted, mispredicted, pc) = {
            let Some(entry) = self.rob.get_mut(seq) else {
                return;
            };
            entry.completed = true;
            (
                entry.op.is_conditional_branch(),
                entry.op.branch.map(|b| b.taken).unwrap_or(false),
                entry.predicted_taken,
                entry.mispredicted,
                entry.op.pc,
            )
        };
        if is_cond {
            self.stats.cond_branches += 1;
            self.predictor.update(pc, taken, predicted);
            if mispredicted {
                self.stats.branch_mispredicts += 1;
                if self.unresolved_mispredicts.front() == Some(&seq) {
                    self.unresolved_mispredicts.pop_front();
                    self.fetch_resume_at = self.cycle + self.cfg.cache_processor.mispredict_penalty;
                    self.refill_boundary = seq;
                }
            }
        }
        let waiters = self.cp_consumers.take(seq);
        for &consumer in &waiters {
            self.wake_cp_consumer(consumer);
        }
        self.cp_consumers.recycle(waiters);
    }

    fn wake_cp_consumer(&mut self, seq: u64) {
        let Some(entry) = self.rob.get_mut(seq) else {
            return;
        };
        if entry.pending_srcs == 0 {
            return;
        }
        entry.pending_srcs -= 1;
        if entry.pending_srcs == 0 && !entry.issued {
            match entry.queue_class {
                RegClass::Int => self.cp_int_iq.mark_ready(seq),
                RegClass::Fp => self.cp_fp_iq.mark_ready(seq),
            }
        }
    }

    /// The Analyze stage: classify up to `analyze width` aged instructions
    /// from the head of the Aging-ROB. Returns whether any instruction left
    /// the Aging-ROB.
    #[allow(clippy::too_many_lines)]
    fn analyze(&mut self, mut probe: Option<&mut Telemetry>) -> bool {
        let mut advanced = false;
        let mut stalled = false;
        for _ in 0..self.cfg.cache_processor.widths.commit {
            let Some(head) = self.rob.head() else { break };
            // The Aging-ROB: instructions reach Analyze a fixed number of
            // cycles after decode.
            if self.cycle < head.dispatch_cycle + self.cfg.cache_processor.rob_timer {
                break;
            }
            let seq = head.op.seq;
            let completed = head.completed;
            let issued = head.issued;
            let is_load = head.op.is_load();
            let long_latency_load = self.cp_long_latency_loads.contains(&seq);
            let has_long_latency_src = head.op.sources().any(|r| self.llbv.is_long_latency(r));

            if completed {
                // High execution locality: executed in the Cache Processor.
                let entry = self.rob.pop_head().expect("head exists");
                if let Some(dst) = entry.op.dst {
                    self.llbv.clear(dst);
                }
                match entry.op.class {
                    OpClass::Load => self.ap.lsq_mut().retire_load(seq),
                    OpClass::Store => self.ap.lsq_mut().retire_store(seq),
                    _ => {}
                }
                self.stats.committed += 1;
                self.stats.high_locality_instrs += 1;
                self.analyzed_since_checkpoint += 1;
                if let Some(t) = probe.as_deref_mut() {
                    t.trace_commit(seq, self.cycle);
                }
                advanced = true;
                continue;
            }

            if is_load && long_latency_load {
                // A load that issued in the CP and missed to main memory:
                // the Address Processor owns it from here on.
                let Some(epoch) = self.ensure_checkpoint(seq) else {
                    stalled = true;
                    break;
                };
                let entry = self.rob.pop_head().expect("head exists");
                self.cp_long_latency_loads.remove(&seq);
                if let Some(dst) = entry.op.dst {
                    self.llbv.mark(dst, LowLocalityWriter::Load(seq));
                }
                self.checkpoints.register_instruction(epoch);
                self.low_meta.insert(
                    seq,
                    LowMeta {
                        op: entry.op,
                        epoch,
                        queue: RegClass::Int,
                        predicted_taken: false,
                        mispredicted: false,
                    },
                );
                self.analyzed_since_checkpoint += 1;
                if let Some(t) = probe.as_deref_mut() {
                    t.trace_stage(seq, Stage::MpHandoff, self.cycle);
                }
                advanced = true;
                continue;
            }

            if has_long_latency_src && !issued {
                // Low execution locality: drain to the LLIB.
                if !self.insert_into_llib(seq) {
                    stalled = true;
                    break;
                }
                self.analyzed_since_checkpoint += 1;
                if let Some(t) = probe.as_deref_mut() {
                    t.trace_stage(seq, Stage::MpHandoff, self.cycle);
                }
                advanced = true;
                continue;
            }

            // Otherwise the instruction is short latency but still in
            // flight (or a load whose hit/miss status is not known yet):
            // Analyze stalls until it writes back, as in the paper.
            stalled = true;
            break;
        }
        if stalled {
            self.stats.analyze_stall_cycles += 1;
        }
        advanced
    }

    /// Takes (or reuses) a checkpoint for a new low-locality instruction.
    /// Returns the epoch, or `None` if the checkpoint stack is full and the
    /// Analyze stage must stall.
    fn ensure_checkpoint(&mut self, seq: u64) -> Option<u64> {
        let need_new = self.checkpoints.is_empty()
            || self.analyzed_since_checkpoint >= self.cfg.checkpoint.interval_instrs;
        if need_new {
            let epoch = self.checkpoints.take(seq)?;
            self.analyzed_since_checkpoint = 0;
            Some(epoch)
        } else {
            self.checkpoints.current_epoch()
        }
    }

    /// Moves the Aging-ROB head into the LLIB of its class. Returns `false`
    /// if a resource (LLIB entry, LLRF register, checkpoint) is unavailable
    /// and the Analyze stage must stall.
    fn insert_into_llib(&mut self, seq: u64) -> bool {
        let head = self.rob.head().expect("caller checked");
        let op = head.op;
        let class = Self::queue_class(&op);
        let llib_has_space = match class {
            RegClass::Int => self.llib_int.has_space(),
            RegClass::Fp => self.llib_fp.has_space(),
        };
        if !llib_has_space {
            self.stats.llib_full_stall_cycles += 1;
            return false;
        }
        // Classify the sources and stage the READY operand into the LLRF.
        let mut sources = [None, None];
        let mut llrf_slot = None;
        for (idx, src) in op.srcs.iter().enumerate() {
            let Some(reg) = src else { continue };
            if self.llbv.is_long_latency(*reg) {
                sources[idx] = Some(match self.llbv.writer(*reg) {
                    Some(LowLocalityWriter::Load(l)) => SourceState::WaitsForLoad(l),
                    Some(LowLocalityWriter::MpInstr(p)) => SourceState::WaitsForMp(p),
                    // Defensive: a marked register always has a writer.
                    None => SourceState::Ready,
                });
            } else {
                sources[idx] = Some(SourceState::Ready);
                if llrf_slot.is_none() {
                    let allocated = match class {
                        RegClass::Int => self.llrf_int.allocate(),
                        RegClass::Fp => self.llrf_fp.allocate(),
                    };
                    match allocated {
                        Some(slot) => llrf_slot = Some(slot),
                        None => return false,
                    }
                }
            }
        }
        let Some(epoch) = self.ensure_checkpoint(seq) else {
            // Undo the LLRF allocation; the Analyze stage retries next cycle.
            if let Some(slot) = llrf_slot {
                match class {
                    RegClass::Int => self.llrf_int.free(slot),
                    RegClass::Fp => self.llrf_fp.free(slot),
                }
            }
            return false;
        };

        let entry = self.rob.pop_head().expect("caller checked");
        // The instruction leaves the CP issue queue if it was still waiting
        // there.
        match entry.queue_class {
            RegClass::Int => {
                self.cp_int_iq.remove(seq);
            }
            RegClass::Fp => {
                self.cp_fp_iq.remove(seq);
            }
        }
        if let Some(dst) = entry.op.dst {
            self.llbv.mark(dst, LowLocalityWriter::MpInstr(seq));
        }
        let llib = match class {
            RegClass::Int => &mut self.llib_int,
            RegClass::Fp => &mut self.llib_fp,
        };
        llib.push(LlibEntry {
            op: entry.op,
            sources,
            llrf_slot,
            checkpoint_epoch: epoch,
            inserted_at: self.cycle,
        });
        self.checkpoints.register_instruction(epoch);
        self.low_meta.insert(
            seq,
            LowMeta {
                op: entry.op,
                epoch,
                queue: class,
                predicted_taken: entry.predicted_taken,
                mispredicted: entry.mispredicted,
            },
        );
        true
    }

    fn cp_issue(&mut self, mut probe: Option<&mut Telemetry>) -> bool {
        let width = self.cfg.cache_processor.widths.issue;
        let mut selected = std::mem::take(&mut self.select_scratch);
        selected.clear();
        self.cp_int_iq
            .select_into(width, &mut self.cp_fus, self.ap.ports_mut(), &mut selected);
        let remaining = width.saturating_sub(selected.len());
        self.cp_fp_iq.select_into(
            remaining,
            &mut self.cp_fus,
            self.ap.ports_mut(),
            &mut selected,
        );
        for &(seq, class) in &selected {
            if let Some(t) = probe.as_deref_mut() {
                t.trace_stage(seq, Stage::Issue, self.cycle);
            }
            self.start_cp_execution(seq, class);
        }
        let issued = !selected.is_empty();
        self.select_scratch = selected;
        issued
    }

    fn start_cp_execution(&mut self, seq: u64, class: OpClass) {
        let now = self.cycle;
        let addr = {
            let entry = self.rob.get_mut(seq).expect("issued instruction in flight");
            entry.issued = true;
            entry.issue_cycle = Some(now);
            entry.op.mem_addr
        };
        match class {
            OpClass::Load => {
                let addr = addr.expect("load has an address");
                if self.ap.lsq().forwards_from_store(seq, addr) {
                    self.cp_completions
                        .push(Reverse((now + FORWARD_LATENCY, seq)));
                    return;
                }
                let outcome = self.ap.access(addr, false, now);
                if outcome.level == AccessLevel::Memory {
                    // Long-latency: the Address Processor takes over; the
                    // destination register will be flagged in the LLBV when
                    // the load reaches Analyze.
                    self.cp_long_latency_loads.insert(seq);
                    self.ap
                        .register_long_latency_load(seq, now + outcome.latency);
                } else {
                    self.cp_completions
                        .push(Reverse((now + outcome.latency, seq)));
                }
            }
            OpClass::Store => {
                let addr = addr.expect("store has an address");
                let _ = self.ap.access(addr, true, now);
                self.cp_completions.push(Reverse((now + 1, seq)));
            }
            other => {
                self.cp_completions
                    .push(Reverse((now + other.exec_latency().max(1), seq)));
            }
        }
    }

    fn cp_dispatch(&mut self, mut probe: Option<&mut Telemetry>) -> bool {
        let mut dispatched = false;
        for _ in 0..self.cfg.cache_processor.widths.decode {
            let Some(op) = self.fetch_queue.front() else {
                break;
            };
            if let Some(&blocking) = self.unresolved_mispredicts.front() {
                if op.seq > blocking {
                    break;
                }
            }
            if self.cycle < self.fetch_resume_at && op.seq > self.refill_boundary {
                break;
            }
            if !self.rob.has_space() {
                self.stats.rob_full_stall_cycles += 1;
                break;
            }
            if op.class.is_mem() && !self.ap.lsq().has_space() {
                break;
            }
            let queue_class = Self::queue_class(op);
            let iq = match queue_class {
                RegClass::Int => &self.cp_int_iq,
                RegClass::Fp => &self.cp_fp_iq,
            };
            if !iq.has_space() {
                break;
            }

            let op = self.fetch_queue.pop_front().expect("checked non-empty");
            dispatched = true;
            let seq = op.seq;
            if let Some(t) = probe.as_deref_mut() {
                t.trace_stage(seq, Stage::Dispatch, self.cycle);
            }
            let mut entry = RobEntry::new(op, self.cycle, queue_class);

            // Wire dependencies on producers still in the Cache Processor.
            // Producers that have already moved to the low-locality side are
            // not wired here: this instruction will be classified by the
            // LLBV at Analyze instead. The producer list is inline
            // ([`DepList`]): at most two sources, no heap.
            let mut pending_producers = DepList::new();
            for src in entry.op.sources() {
                if let Some(producer) = self.last_writer.get(src) {
                    if self
                        .rob
                        .get(producer)
                        .map(|e| !e.completed)
                        .unwrap_or(false)
                    {
                        pending_producers.push(producer);
                    }
                }
            }
            for producer in pending_producers.iter() {
                self.cp_consumers.push(producer, seq);
            }
            entry.pending_srcs = pending_producers.len();

            if entry.op.is_conditional_branch() {
                let predicted = self.predictor.predict(entry.op.pc);
                entry.predicted_taken = predicted;
                let actual = entry.op.branch.expect("conditional branch").taken;
                entry.mispredicted = predicted != actual;
                if entry.mispredicted {
                    self.unresolved_mispredicts.push_back(seq);
                }
            }

            match entry.op.class {
                OpClass::Load => {
                    self.ap.lsq_mut().dispatch_load(seq);
                    self.stats.loads += 1;
                }
                OpClass::Store => {
                    let addr = entry.op.mem_addr.expect("store has an address");
                    self.ap.lsq_mut().dispatch_store(seq, addr);
                    self.stats.stores += 1;
                }
                _ => {}
            }
            if let Some(dst) = entry.op.dst {
                self.last_writer.set(dst, seq);
            }

            let ready = entry.pending_srcs == 0;
            let op_class = entry.op.class;
            self.rob.push(entry);
            match queue_class {
                RegClass::Int => self.cp_int_iq.insert(seq, op_class, ready),
                RegClass::Fp => self.cp_fp_iq.insert(seq, op_class, ready),
            }
        }
        dispatched
    }

    fn fetch(
        &mut self,
        trace: &mut dyn Iterator<Item = MicroOp>,
        mut probe: Option<&mut Telemetry>,
    ) -> bool {
        if !self.unresolved_mispredicts.is_empty() || self.cycle < self.fetch_resume_at {
            self.stats.mispredict_stall_cycles += 1;
            return false;
        }
        let mut fetched = false;
        let limit = self.cfg.cache_processor.widths.fetch * 3;
        for _ in 0..self.cfg.cache_processor.widths.fetch {
            if self.fetch_queue.len() >= limit {
                break;
            }
            let Some(op) = trace.next() else {
                self.trace_done = true;
                break;
            };
            self.stats.fetched += 1;
            if let Some(t) = probe.as_deref_mut() {
                t.trace_fetch(&op, self.cycle);
            }
            self.fetch_queue.push_back(op);
            fetched = true;
        }
        fetched
    }
}

/// Runs an arbitrary correct-path [`MicroOp`] stream for up to `max_instrs`
/// committed instructions on a D-KIP with configuration `cfg` and memory
/// hierarchy `mem_cfg`. Finite streams (e.g. the `dkip-riscv` kernels) run
/// to completion and drain the whole machine.
///
/// # Panics
///
/// Panics if the memory or processor configuration is invalid.
#[must_use]
pub fn run_dkip_stream(
    cfg: &DkipConfig,
    mem_cfg: &MemoryHierarchyConfig,
    stream: &mut dyn Iterator<Item = MicroOp>,
    max_instrs: u64,
) -> SimStats {
    run_dkip_stream_probed(cfg, mem_cfg, stream, max_instrs, None)
}

/// [`run_dkip_stream`] with an optional telemetry sink attached (`None` is
/// bit-identical to the plain entry point). The pipeline trace records the
/// D-KIP's CP→MP handoff (the Analyze stage draining an instruction to the
/// LLIB or handing a long-latency load to the Address Processor) as an
/// extra per-µop timestamp.
///
/// # Panics
///
/// Panics if the memory or processor configuration is invalid.
#[must_use]
pub fn run_dkip_stream_probed(
    cfg: &DkipConfig,
    mem_cfg: &MemoryHierarchyConfig,
    stream: &mut dyn Iterator<Item = MicroOp>,
    max_instrs: u64,
    probe: Option<&mut Telemetry>,
) -> SimStats {
    let mem = MemoryHierarchy::new(mem_cfg.clone()).expect("invalid memory configuration");
    let mut proc = DkipProcessor::new(cfg.clone(), mem);
    proc.run_probed(stream, max_instrs, probe)
}

/// Runs `benchmark` for `max_instrs` committed instructions on a D-KIP with
/// configuration `cfg` and memory hierarchy `mem_cfg`.
///
/// # Panics
///
/// Panics if the memory or processor configuration is invalid.
#[must_use]
pub fn run_dkip(
    cfg: &DkipConfig,
    mem_cfg: &MemoryHierarchyConfig,
    benchmark: Benchmark,
    max_instrs: u64,
    seed: u64,
) -> SimStats {
    run_dkip_stream(
        cfg,
        mem_cfg,
        &mut TraceGenerator::new(benchmark, seed),
        max_instrs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkip_model::config::BaselineConfig;
    use dkip_model::config::SchedPolicy;
    use dkip_ooo::run_baseline;

    fn run(cfg: &DkipConfig, mem: MemoryHierarchyConfig, bench: Benchmark, n: u64) -> SimStats {
        run_dkip(cfg, &mem, bench, n, 1)
    }

    #[test]
    fn commits_the_requested_number_of_instructions() {
        let stats = run(
            &DkipConfig::paper_default(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Mesa,
            5_000,
        );
        assert!(stats.committed >= 5_000, "committed={}", stats.committed);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn most_instructions_have_high_execution_locality() {
        let stats = run(
            &DkipConfig::paper_default(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Swim,
            15_000,
        );
        let frac = stats.high_locality_fraction();
        // The synthetic swim is considerably more memory bound than the real
        // SimPoint, so the CP share is lower than the paper's 67-77%; it must
        // still handle a substantial fraction while the MP handles the rest.
        assert!(
            frac > 0.3 && frac < 1.0,
            "the CP should process a substantial share of swim but not everything: {frac}"
        );
        assert!(
            stats.low_locality_instrs > 0,
            "swim misses must create low-locality slices"
        );
    }

    #[test]
    fn cache_resident_workloads_barely_use_the_memory_processor() {
        let stats = run(
            &DkipConfig::paper_default(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Mesa,
            10_000,
        );
        assert!(
            stats.high_locality_fraction() > 0.6,
            "mesa is mostly cache resident: {}",
            stats.high_locality_fraction()
        );
    }

    #[test]
    fn dkip_beats_an_equally_sized_conventional_core_on_memory_bound_fp() {
        let mem = MemoryHierarchyConfig::mem_400();
        let dkip = run(
            &DkipConfig::paper_default(),
            mem.clone(),
            Benchmark::Swim,
            15_000,
        );
        let r10_64 = run_baseline(&BaselineConfig::r10_64(), &mem, Benchmark::Swim, 15_000, 1);
        assert!(
            dkip.ipc() > r10_64.ipc() * 1.2,
            "D-KIP must clearly beat the small conventional core: dkip={} r10-64={}",
            dkip.ipc(),
            r10_64.ipc()
        );
    }

    #[test]
    fn llib_occupancy_is_tracked_and_bounded() {
        let stats = run(
            &DkipConfig::paper_default(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Swim,
            15_000,
        );
        assert!(
            stats.llib_fp_peak_instrs > 0,
            "FP slices must park in the FP LLIB"
        );
        assert!(stats.llib_fp_peak_instrs <= 2048);
        assert!(stats.llrf_fp_peak_regs <= 8 * 256);
        assert!(
            stats.llrf_fp_peak_regs <= stats.llib_fp_peak_instrs,
            "at most one READY register per parked instruction"
        );
    }

    #[test]
    fn checkpoints_are_taken_when_low_locality_code_exists() {
        let stats = run(
            &DkipConfig::paper_default(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Art,
            10_000,
        );
        assert!(stats.checkpoints_taken > 0);
    }

    #[test]
    fn out_of_order_cp_beats_in_order_cp() {
        // Figure 10's headline effect, measured on a mostly cache-resident
        // benchmark where the Cache Processor dominates execution.
        let mem = MemoryHierarchyConfig::mem_400();
        let ooo = run(
            &DkipConfig::paper_default().with_cp(SchedPolicy::OutOfOrder, 40),
            mem.clone(),
            Benchmark::Mesa,
            12_000,
        );
        let ino = run(
            &DkipConfig::paper_default().with_cp(SchedPolicy::InOrder, 40),
            mem,
            Benchmark::Mesa,
            12_000,
        );
        assert!(
            ooo.ipc() > ino.ipc(),
            "OOO CP must beat in-order CP: ooo={} ino={}",
            ooo.ipc(),
            ino.ipc()
        );
    }

    #[test]
    fn pointer_chasing_workloads_still_make_progress() {
        let stats = run(
            &DkipConfig::paper_default(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Mcf,
            8_000,
        );
        assert!(stats.committed >= 8_000);
        assert!(
            stats.low_locality_instrs > 0,
            "mcf chases pointers through the MP"
        );
    }

    #[test]
    fn event_clock_is_bit_identical_to_single_stepping() {
        for bench in [Benchmark::Swim, Benchmark::Mcf] {
            let run_mode = |single_step: bool| {
                let mem = MemoryHierarchy::new(MemoryHierarchyConfig::mem_1000()).unwrap();
                let mut proc = DkipProcessor::new(DkipConfig::paper_default(), mem);
                proc.set_single_step(single_step);
                let mut trace = TraceGenerator::new(bench, 1);
                proc.run(&mut trace, 8_000)
            };
            let stepped = run_mode(true);
            let skipped = run_mode(false);
            assert_eq!(
                stepped.to_kv(),
                skipped.to_kv(),
                "{bench:?}: skipping must be observationally pure"
            );
            assert_eq!(stepped.cycles_skipped, 0);
            assert_eq!(stepped.ticks_executed, stepped.cycles);
            assert_eq!(
                skipped.ticks_executed + skipped.cycles_skipped,
                skipped.cycles,
                "{bench:?}: every simulated cycle is either ticked or skipped"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(
            &DkipConfig::paper_default(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Gcc,
            6_000,
        );
        let b = run(
            &DkipConfig::paper_default(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Gcc,
            6_000,
        );
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
    }

    #[test]
    fn d_kip_is_less_sensitive_to_l2_size_than_a_conventional_core_on_fp() {
        let small_l2 = MemoryHierarchyConfig::mem_400().with_l2_kb(64);
        let big_l2 = MemoryHierarchyConfig::mem_400().with_l2_kb(4096);
        let n = 12_000;
        let dkip_small = run(
            &DkipConfig::paper_default(),
            small_l2.clone(),
            Benchmark::Applu,
            n,
        );
        let dkip_big = run(
            &DkipConfig::paper_default(),
            big_l2.clone(),
            Benchmark::Applu,
            n,
        );
        let r10_small = run_baseline(
            &BaselineConfig::r10_256(),
            &small_l2,
            Benchmark::Applu,
            n,
            1,
        );
        let r10_big = run_baseline(&BaselineConfig::r10_256(), &big_l2, Benchmark::Applu, n, 1);
        let dkip_gain = dkip_big.ipc() / dkip_small.ipc().max(1e-9);
        let r10_gain = r10_big.ipc() / r10_small.ipc().max(1e-9);
        assert!(
            dkip_gain <= r10_gain * 1.15,
            "the D-KIP should be comparatively cache-size tolerant: dkip_gain={dkip_gain} r10_gain={r10_gain}"
        );
    }
}
