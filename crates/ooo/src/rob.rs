//! The reorder buffer.
//!
//! In-flight instructions are stored in program order in a circular buffer
//! indexed by dynamic sequence number. Because the reproduction is trace
//! driven (wrong-path instructions are never injected) the buffer never
//! contains holes: entries enter at the tail at dispatch and leave from the
//! head at commit (or, in the Aging-ROB of the D-KIP, at Analyze).

use dkip_model::{MicroOp, RegClass};
use std::collections::VecDeque;

/// The state of one in-flight instruction.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// The micro-op.
    pub op: MicroOp,
    /// Cycle at which the instruction was dispatched (renamed).
    pub dispatch_cycle: u64,
    /// Number of source operands still waiting for a producer.
    pub pending_srcs: u8,
    /// Whether the instruction has been issued to a functional unit.
    pub issued: bool,
    /// Whether the instruction has finished executing.
    pub completed: bool,
    /// For conditional branches: the direction predicted at fetch.
    pub predicted_taken: bool,
    /// For conditional branches: whether the prediction was wrong.
    pub mispredicted: bool,
    /// Which issue queue (by register class) the instruction was sent to.
    pub queue_class: RegClass,
    /// Cycle at which the instruction issued (for the Figure 3 histogram).
    pub issue_cycle: Option<u64>,
}

impl RobEntry {
    /// Creates an entry for a freshly dispatched instruction.
    #[must_use]
    pub fn new(op: MicroOp, dispatch_cycle: u64, queue_class: RegClass) -> Self {
        RobEntry {
            op,
            dispatch_cycle,
            pending_srcs: 0,
            issued: false,
            completed: false,
            predicted_taken: false,
            mispredicted: false,
            queue_class,
            issue_cycle: None,
        }
    }
}

/// A reorder buffer holding in-flight instructions in program order.
#[derive(Debug, Clone)]
pub struct Rob {
    capacity: usize,
    head_seq: u64,
    entries: VecDeque<RobEntry>,
}

impl Rob {
    /// Creates a reorder buffer with room for `capacity` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be positive");
        Rob {
            capacity,
            head_seq: 0,
            entries: VecDeque::with_capacity(capacity.min(4096)),
        }
    }

    /// Whether another instruction can be dispatched.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Number of in-flight instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The sequence number of the oldest in-flight instruction (the next to
    /// commit), if any.
    #[must_use]
    pub fn head_seq(&self) -> Option<u64> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.head_seq)
        }
    }

    /// Appends a dispatched instruction.
    ///
    /// An empty buffer adopts the entry's sequence number as the new head,
    /// so a reset core can pick up a stream mid-program (the sampled
    /// simulation mode fast-forwards the workload between detailed
    /// windows); once occupied, entries must stay dense.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full or, when it is non-empty, the sequence
    /// number is not the next expected one (entries must be pushed in
    /// program order).
    pub fn push(&mut self, entry: RobEntry) {
        assert!(self.has_space(), "ROB overflow");
        if self.entries.is_empty() {
            self.head_seq = entry.op.seq;
        } else {
            let expected = self.head_seq + self.entries.len() as u64;
            assert_eq!(
                entry.op.seq, expected,
                "ROB entries must be pushed in program order"
            );
        }
        self.entries.push_back(entry);
    }

    /// Looks up an in-flight instruction by sequence number.
    #[must_use]
    pub fn get(&self, seq: u64) -> Option<&RobEntry> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        self.entries.get(idx)
    }

    /// Mutable lookup by sequence number.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        self.entries.get_mut(idx)
    }

    /// A reference to the oldest entry, if any.
    #[must_use]
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry.
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        let entry = self.entries.pop_front()?;
        self.head_seq += 1;
        Some(entry)
    }

    /// Iterates over the in-flight entries in program order.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkip_model::{MicroOp, OpClass};

    fn entry(seq: u64) -> RobEntry {
        RobEntry::new(
            MicroOp::new(seq, 0x400 + seq * 4, OpClass::IntAlu),
            0,
            RegClass::Int,
        )
    }

    #[test]
    fn push_and_commit_in_program_order() {
        let mut rob = Rob::new(4);
        for seq in 0..4 {
            rob.push(entry(seq));
        }
        assert!(!rob.has_space());
        assert_eq!(rob.head_seq(), Some(0));
        let head = rob.pop_head().unwrap();
        assert_eq!(head.op.seq, 0);
        assert_eq!(rob.head_seq(), Some(1));
        assert!(rob.has_space());
    }

    #[test]
    fn lookup_by_sequence_number() {
        let mut rob = Rob::new(8);
        for seq in 0..5 {
            rob.push(entry(seq));
        }
        rob.pop_head();
        rob.pop_head();
        assert!(rob.get(0).is_none(), "committed entries are gone");
        assert!(rob.get(1).is_none());
        assert_eq!(rob.get(3).unwrap().op.seq, 3);
        rob.get_mut(4).unwrap().completed = true;
        assert!(rob.get(4).unwrap().completed);
        assert!(rob.get(100).is_none());
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_push_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(2));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0));
        rob.push(entry(1));
    }

    #[test]
    fn iteration_preserves_order() {
        let mut rob = Rob::new(8);
        for seq in 0..6 {
            rob.push(entry(seq));
        }
        let seqs: Vec<u64> = rob.iter().map(|e| e.op.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_rob_reports_no_head() {
        let mut rob = Rob::new(2);
        assert!(rob.head_seq().is_none());
        assert!(rob.pop_head().is_none());
        assert!(rob.is_empty());
    }
}
