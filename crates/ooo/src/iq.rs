//! Issue queues with in-order and out-of-order scheduling policies.
//!
//! The queue is the hottest structure of the cycle loop: every core family
//! consults it every cycle. It is therefore stored as a single `Vec` of
//! slots kept sorted by sequence number (age order), with the ready flag
//! inline — a contiguous scoreboard the selection loop scans front-to-back
//! instead of walking a `BTreeMap`. Capacities are small (the paper's
//! queues hold 20–72 entries), so sorted-insert and compacting removal are
//! cheap, and [`IssueQueue::select_into`] lets callers reuse one selection
//! buffer across cycles so steady-state selection performs no heap
//! allocation at all.

use crate::fu::{FunctionalUnits, MemPorts};
use dkip_model::config::SchedPolicy;
use dkip_model::OpClass;

/// One waiting instruction in an issue queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IqSlot {
    seq: u64,
    class: OpClass,
    ready: bool,
}

/// An issue queue holding dispatched-but-not-yet-issued instructions.
///
/// Entries are identified by their dynamic sequence number; age order is the
/// sequence-number order. The queue supports the two scheduling policies of
/// the paper's Table 3: `OutOfOrder` (any ready instruction may issue,
/// oldest first) and `InOrder` (issue stops at the first non-ready or
/// non-issuable entry).
#[derive(Debug, Clone)]
pub struct IssueQueue {
    capacity: usize,
    policy: SchedPolicy,
    /// Slots sorted by sequence number (oldest first).
    slots: Vec<IqSlot>,
    /// Number of slots with `ready == true`; lets selection skip the scan
    /// entirely on (frequent) cycles where nothing can issue.
    ready_count: usize,
}

impl IssueQueue {
    /// Creates an issue queue with the given capacity and policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, policy: SchedPolicy) -> Self {
        assert!(capacity > 0, "issue queue capacity must be positive");
        IssueQueue {
            capacity,
            policy,
            slots: Vec::with_capacity(capacity.min(4096)),
            ready_count: 0,
        }
    }

    /// Number of instructions currently waiting.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether another instruction can be dispatched into the queue.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.slots.len() < self.capacity
    }

    /// The queue capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The scheduling policy.
    #[must_use]
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// The insertion point keeping `slots` sorted by seq: `Ok(idx)` when the
    /// seq is already present, `Err(idx)` otherwise. Dispatch inserts in
    /// program order (append), so probe the tail before binary-searching.
    fn position(&self, seq: u64) -> Result<usize, usize> {
        match self.slots.last() {
            None => Err(0),
            Some(last) if last.seq < seq => Err(self.slots.len()),
            _ => self.slots.binary_search_by_key(&seq, |slot| slot.seq),
        }
    }

    /// Dispatches instruction `seq` into the queue.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or the sequence number is already
    /// present.
    pub fn insert(&mut self, seq: u64, class: OpClass, ready: bool) {
        assert!(self.has_space(), "issue queue overflow");
        match self.position(seq) {
            Ok(_) => panic!("sequence number {seq} already in issue queue"),
            Err(idx) => self.slots.insert(idx, IqSlot { seq, class, ready }),
        }
        self.ready_count += usize::from(ready);
    }

    /// Marks instruction `seq` as having all sources available. Unknown
    /// sequence numbers are ignored (the instruction may have been squashed
    /// or moved elsewhere).
    pub fn mark_ready(&mut self, seq: u64) {
        if let Ok(idx) = self.position(seq) {
            self.ready_count += usize::from(!self.slots[idx].ready);
            self.slots[idx].ready = true;
        }
    }

    /// Whether the queue currently holds instruction `seq`.
    #[must_use]
    pub fn contains(&self, seq: u64) -> bool {
        self.position(seq).is_ok()
    }

    /// Removes instruction `seq` without issuing it (used when an
    /// instruction is reclassified, e.g. moved to a slow lane or an LLIB).
    pub fn remove(&mut self, seq: u64) -> bool {
        match self.position(seq) {
            Ok(idx) => {
                self.ready_count -= usize::from(self.slots[idx].ready);
                self.slots.remove(idx);
                true
            }
            Err(_) => false,
        }
    }

    /// Selects up to `max_issue` instructions to issue this cycle, consuming
    /// functional units / memory ports, removes them from the queue, and
    /// appends the selected `(seq, class)` pairs — oldest first — to
    /// `issued`.
    ///
    /// This is the allocation-free form of [`IssueQueue::select`]: the
    /// caller owns (and reuses) the output buffer.
    pub fn select_into(
        &mut self,
        max_issue: usize,
        fus: &mut FunctionalUnits,
        ports: &mut MemPorts,
        issued: &mut Vec<(u64, OpClass)>,
    ) {
        if max_issue == 0 || self.ready_count == 0 {
            return;
        }
        let mut taken = 0usize;
        match self.policy {
            SchedPolicy::OutOfOrder => {
                // Walk age order, skipping non-ready and resource-blocked
                // entries; compact survivors in place (stable, single pass).
                // The scan stops as soon as no further issue is possible —
                // the width is filled or every ready entry has been
                // considered — and the untouched tail is bulk-shifted over
                // the gap left by the issued entries.
                let len = self.slots.len();
                let mut write = 0usize;
                let mut read = 0usize;
                let mut ready_seen = 0usize;
                while read < len {
                    if taken == max_issue || ready_seen == self.ready_count {
                        break;
                    }
                    let slot = self.slots[read];
                    ready_seen += usize::from(slot.ready);
                    if slot.ready && Self::acquire_resources(slot.class, fus, ports) {
                        issued.push((slot.seq, slot.class));
                        taken += 1;
                    } else {
                        self.slots[write] = slot;
                        write += 1;
                    }
                    read += 1;
                }
                if taken > 0 && read < len {
                    self.slots.copy_within(read..len, write);
                }
                self.slots.truncate(len - taken);
            }
            SchedPolicy::InOrder => {
                // Strict in-order issue: walk from the oldest entry and stop
                // at the first instruction that is not ready or cannot get
                // its resources.
                while taken < max_issue {
                    let Some(&slot) = self.slots.get(taken) else {
                        break;
                    };
                    if !slot.ready || !Self::acquire_resources(slot.class, fus, ports) {
                        break;
                    }
                    issued.push((slot.seq, slot.class));
                    taken += 1;
                }
                self.slots.drain(..taken);
            }
        }
        self.ready_count -= taken;
    }

    /// Selects up to `max_issue` instructions to issue this cycle, consuming
    /// functional units / memory ports, and removes them from the queue.
    ///
    /// Returns the selected `(seq, class)` pairs, oldest first. Hot callers
    /// use [`IssueQueue::select_into`] with a reused buffer instead.
    pub fn select(
        &mut self,
        max_issue: usize,
        fus: &mut FunctionalUnits,
        ports: &mut MemPorts,
    ) -> Vec<(u64, OpClass)> {
        let mut issued = Vec::new();
        self.select_into(max_issue, fus, ports, &mut issued);
        issued
    }

    fn acquire_resources(class: OpClass, fus: &mut FunctionalUnits, ports: &mut MemPorts) -> bool {
        if class.is_mem() {
            ports.try_issue()
        } else if let Some(pool) = class.fu_pool() {
            fus.try_issue(pool)
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkip_model::config::FuConfig;

    fn resources() -> (FunctionalUnits, MemPorts) {
        (
            FunctionalUnits::new(FuConfig::paper_default()),
            MemPorts::new(2),
        )
    }

    #[test]
    fn ooo_selects_oldest_ready_first() {
        let mut iq = IssueQueue::new(8, SchedPolicy::OutOfOrder);
        iq.insert(10, OpClass::IntAlu, false);
        iq.insert(11, OpClass::IntAlu, true);
        iq.insert(12, OpClass::IntAlu, true);
        let (mut fus, mut ports) = resources();
        let issued = iq.select(1, &mut fus, &mut ports);
        assert_eq!(issued, vec![(11, OpClass::IntAlu)]);
        assert!(iq.contains(10));
        assert!(iq.contains(12));
    }

    #[test]
    fn ooo_skips_blocked_instructions() {
        // Two FP divides but only one FP mul/div unit: the second divide is
        // skipped and a younger ALU op issues instead.
        let mut iq = IssueQueue::new(8, SchedPolicy::OutOfOrder);
        iq.insert(1, OpClass::FpDiv, true);
        iq.insert(2, OpClass::FpDiv, true);
        iq.insert(3, OpClass::IntAlu, true);
        let (mut fus, mut ports) = resources();
        let issued = iq.select(4, &mut fus, &mut ports);
        assert_eq!(issued, vec![(1, OpClass::FpDiv), (3, OpClass::IntAlu)]);
        assert!(iq.contains(2));
    }

    #[test]
    fn in_order_stalls_at_first_unready_entry() {
        let mut iq = IssueQueue::new(8, SchedPolicy::InOrder);
        iq.insert(1, OpClass::IntAlu, false);
        iq.insert(2, OpClass::IntAlu, true);
        let (mut fus, mut ports) = resources();
        assert!(iq.select(4, &mut fus, &mut ports).is_empty());
        iq.mark_ready(1);
        let issued = iq.select(4, &mut fus, &mut ports);
        assert_eq!(
            issued.len(),
            2,
            "once the head is ready both issue in order"
        );
        assert_eq!(issued[0].0, 1);
        assert_eq!(issued[1].0, 2);
    }

    #[test]
    fn in_order_stalls_when_resources_run_out() {
        let mut iq = IssueQueue::new(8, SchedPolicy::InOrder);
        iq.insert(1, OpClass::IntMul, true);
        iq.insert(2, OpClass::IntMul, true);
        iq.insert(3, OpClass::IntAlu, true);
        let (mut fus, mut ports) = resources();
        let issued = iq.select(4, &mut fus, &mut ports);
        assert_eq!(
            issued,
            vec![(1, OpClass::IntMul)],
            "second multiply blocks the head"
        );
    }

    #[test]
    fn memory_ops_consume_ports_not_fus() {
        let mut iq = IssueQueue::new(8, SchedPolicy::OutOfOrder);
        iq.insert(1, OpClass::Load, true);
        iq.insert(2, OpClass::Load, true);
        iq.insert(3, OpClass::Load, true);
        let (mut fus, mut ports) = resources();
        let issued = iq.select(4, &mut fus, &mut ports);
        assert_eq!(issued.len(), 2, "only two memory ports");
        assert!(fus.can_issue(dkip_model::FuPool::IntAlu));
    }

    #[test]
    fn issue_width_bounds_selection() {
        let mut iq = IssueQueue::new(16, SchedPolicy::OutOfOrder);
        for seq in 0..8 {
            iq.insert(seq, OpClass::IntAlu, true);
        }
        let (mut fus, mut ports) = resources();
        let issued = iq.select(2, &mut fus, &mut ports);
        assert_eq!(issued.len(), 2);
        assert_eq!(iq.len(), 6);
    }

    #[test]
    fn select_into_appends_to_a_reused_buffer() {
        let mut iq = IssueQueue::new(8, SchedPolicy::OutOfOrder);
        iq.insert(1, OpClass::IntAlu, true);
        iq.insert(2, OpClass::IntAlu, true);
        let (mut fus, mut ports) = resources();
        let mut buffer = vec![(99, OpClass::Load)];
        iq.select_into(1, &mut fus, &mut ports, &mut buffer);
        assert_eq!(buffer, vec![(99, OpClass::Load), (1, OpClass::IntAlu)]);
    }

    #[test]
    fn out_of_order_insertion_keeps_age_order() {
        // Slow-lane reinsertion can insert an *older* seq after younger ones
        // were dispatched; selection must still be oldest-first.
        let mut iq = IssueQueue::new(8, SchedPolicy::OutOfOrder);
        iq.insert(20, OpClass::IntAlu, true);
        iq.insert(5, OpClass::IntAlu, true);
        iq.insert(12, OpClass::IntAlu, true);
        let (mut fus, mut ports) = resources();
        let issued = iq.select(3, &mut fus, &mut ports);
        assert_eq!(
            issued.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![5, 12, 20],
            "selection follows age order regardless of insertion order"
        );
    }

    #[test]
    fn capacity_is_enforced() {
        let mut iq = IssueQueue::new(2, SchedPolicy::OutOfOrder);
        assert!(iq.has_space());
        iq.insert(1, OpClass::IntAlu, true);
        iq.insert(2, OpClass::IntAlu, true);
        assert!(!iq.has_space());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn inserting_into_a_full_queue_panics() {
        let mut iq = IssueQueue::new(1, SchedPolicy::OutOfOrder);
        iq.insert(1, OpClass::IntAlu, true);
        iq.insert(2, OpClass::IntAlu, true);
    }

    #[test]
    #[should_panic(expected = "already in issue queue")]
    fn duplicate_sequence_numbers_panic() {
        let mut iq = IssueQueue::new(4, SchedPolicy::OutOfOrder);
        iq.insert(1, OpClass::IntAlu, true);
        iq.insert(1, OpClass::IntAlu, false);
    }

    #[test]
    fn remove_and_mark_ready_on_missing_entries_are_harmless() {
        let mut iq = IssueQueue::new(4, SchedPolicy::OutOfOrder);
        assert!(!iq.remove(42));
        iq.mark_ready(42);
        assert!(iq.is_empty());
    }
}
