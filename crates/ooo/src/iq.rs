//! Issue queues with in-order and out-of-order scheduling policies.

use crate::fu::{FunctionalUnits, MemPorts};
use dkip_model::config::SchedPolicy;
use dkip_model::OpClass;
use std::collections::{BTreeMap, BTreeSet};

/// One waiting instruction in an issue queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IqEntry {
    class: OpClass,
    ready: bool,
}

/// An issue queue holding dispatched-but-not-yet-issued instructions.
///
/// Entries are identified by their dynamic sequence number; age order is the
/// sequence-number order. The queue supports the two scheduling policies of
/// the paper's Table 3: `OutOfOrder` (any ready instruction may issue,
/// oldest first) and `InOrder` (issue stops at the first non-ready or
/// non-issuable entry).
#[derive(Debug, Clone)]
pub struct IssueQueue {
    capacity: usize,
    policy: SchedPolicy,
    entries: BTreeMap<u64, IqEntry>,
    ready: BTreeSet<u64>,
}

impl IssueQueue {
    /// Creates an issue queue with the given capacity and policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, policy: SchedPolicy) -> Self {
        assert!(capacity > 0, "issue queue capacity must be positive");
        IssueQueue {
            capacity,
            policy,
            entries: BTreeMap::new(),
            ready: BTreeSet::new(),
        }
    }

    /// Number of instructions currently waiting.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether another instruction can be dispatched into the queue.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// The queue capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The scheduling policy.
    #[must_use]
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Dispatches instruction `seq` into the queue.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or the sequence number is already
    /// present.
    pub fn insert(&mut self, seq: u64, class: OpClass, ready: bool) {
        assert!(self.has_space(), "issue queue overflow");
        let previous = self.entries.insert(seq, IqEntry { class, ready });
        assert!(previous.is_none(), "sequence number {seq} already in issue queue");
        if ready {
            self.ready.insert(seq);
        }
    }

    /// Marks instruction `seq` as having all sources available. Unknown
    /// sequence numbers are ignored (the instruction may have been squashed
    /// or moved elsewhere).
    pub fn mark_ready(&mut self, seq: u64) {
        if let Some(entry) = self.entries.get_mut(&seq) {
            if !entry.ready {
                entry.ready = true;
                self.ready.insert(seq);
            }
        }
    }

    /// Whether the queue currently holds instruction `seq`.
    #[must_use]
    pub fn contains(&self, seq: u64) -> bool {
        self.entries.contains_key(&seq)
    }

    /// Removes instruction `seq` without issuing it (used when an
    /// instruction is reclassified, e.g. moved to a slow lane or an LLIB).
    pub fn remove(&mut self, seq: u64) -> bool {
        self.ready.remove(&seq);
        self.entries.remove(&seq).is_some()
    }

    /// Selects up to `max_issue` instructions to issue this cycle, consuming
    /// functional units / memory ports, and removes them from the queue.
    ///
    /// Returns the selected `(seq, class)` pairs, oldest first.
    pub fn select(
        &mut self,
        max_issue: usize,
        fus: &mut FunctionalUnits,
        ports: &mut MemPorts,
    ) -> Vec<(u64, OpClass)> {
        let mut issued = Vec::new();
        if max_issue == 0 {
            return issued;
        }
        match self.policy {
            SchedPolicy::OutOfOrder => {
                let candidates: Vec<u64> = self.ready.iter().copied().collect();
                for seq in candidates {
                    if issued.len() >= max_issue {
                        break;
                    }
                    let class = self.entries[&seq].class;
                    if Self::acquire_resources(class, fus, ports) {
                        self.ready.remove(&seq);
                        self.entries.remove(&seq);
                        issued.push((seq, class));
                    }
                }
            }
            SchedPolicy::InOrder => {
                // Strict in-order issue: walk from the oldest entry and stop
                // at the first instruction that is not ready or cannot get
                // its resources.
                loop {
                    if issued.len() >= max_issue {
                        break;
                    }
                    let Some((&seq, entry)) = self.entries.iter().next() else {
                        break;
                    };
                    if !entry.ready {
                        break;
                    }
                    let class = entry.class;
                    if !Self::acquire_resources(class, fus, ports) {
                        break;
                    }
                    self.ready.remove(&seq);
                    self.entries.remove(&seq);
                    issued.push((seq, class));
                }
            }
        }
        issued
    }

    fn acquire_resources(class: OpClass, fus: &mut FunctionalUnits, ports: &mut MemPorts) -> bool {
        if class.is_mem() {
            ports.try_issue()
        } else if let Some(pool) = class.fu_pool() {
            fus.try_issue(pool)
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkip_model::config::FuConfig;

    fn resources() -> (FunctionalUnits, MemPorts) {
        (FunctionalUnits::new(FuConfig::paper_default()), MemPorts::new(2))
    }

    #[test]
    fn ooo_selects_oldest_ready_first() {
        let mut iq = IssueQueue::new(8, SchedPolicy::OutOfOrder);
        iq.insert(10, OpClass::IntAlu, false);
        iq.insert(11, OpClass::IntAlu, true);
        iq.insert(12, OpClass::IntAlu, true);
        let (mut fus, mut ports) = resources();
        let issued = iq.select(1, &mut fus, &mut ports);
        assert_eq!(issued, vec![(11, OpClass::IntAlu)]);
        assert!(iq.contains(10));
        assert!(iq.contains(12));
    }

    #[test]
    fn ooo_skips_blocked_instructions() {
        // Two FP divides but only one FP mul/div unit: the second divide is
        // skipped and a younger ALU op issues instead.
        let mut iq = IssueQueue::new(8, SchedPolicy::OutOfOrder);
        iq.insert(1, OpClass::FpDiv, true);
        iq.insert(2, OpClass::FpDiv, true);
        iq.insert(3, OpClass::IntAlu, true);
        let (mut fus, mut ports) = resources();
        let issued = iq.select(4, &mut fus, &mut ports);
        assert_eq!(issued, vec![(1, OpClass::FpDiv), (3, OpClass::IntAlu)]);
        assert!(iq.contains(2));
    }

    #[test]
    fn in_order_stalls_at_first_unready_entry() {
        let mut iq = IssueQueue::new(8, SchedPolicy::InOrder);
        iq.insert(1, OpClass::IntAlu, false);
        iq.insert(2, OpClass::IntAlu, true);
        let (mut fus, mut ports) = resources();
        assert!(iq.select(4, &mut fus, &mut ports).is_empty());
        iq.mark_ready(1);
        let issued = iq.select(4, &mut fus, &mut ports);
        assert_eq!(issued.len(), 2, "once the head is ready both issue in order");
        assert_eq!(issued[0].0, 1);
        assert_eq!(issued[1].0, 2);
    }

    #[test]
    fn in_order_stalls_when_resources_run_out() {
        let mut iq = IssueQueue::new(8, SchedPolicy::InOrder);
        iq.insert(1, OpClass::IntMul, true);
        iq.insert(2, OpClass::IntMul, true);
        iq.insert(3, OpClass::IntAlu, true);
        let (mut fus, mut ports) = resources();
        let issued = iq.select(4, &mut fus, &mut ports);
        assert_eq!(issued, vec![(1, OpClass::IntMul)], "second multiply blocks the head");
    }

    #[test]
    fn memory_ops_consume_ports_not_fus() {
        let mut iq = IssueQueue::new(8, SchedPolicy::OutOfOrder);
        iq.insert(1, OpClass::Load, true);
        iq.insert(2, OpClass::Load, true);
        iq.insert(3, OpClass::Load, true);
        let (mut fus, mut ports) = resources();
        let issued = iq.select(4, &mut fus, &mut ports);
        assert_eq!(issued.len(), 2, "only two memory ports");
        assert!(fus.can_issue(dkip_model::FuPool::IntAlu));
    }

    #[test]
    fn issue_width_bounds_selection() {
        let mut iq = IssueQueue::new(16, SchedPolicy::OutOfOrder);
        for seq in 0..8 {
            iq.insert(seq, OpClass::IntAlu, true);
        }
        let (mut fus, mut ports) = resources();
        let issued = iq.select(2, &mut fus, &mut ports);
        assert_eq!(issued.len(), 2);
        assert_eq!(iq.len(), 6);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut iq = IssueQueue::new(2, SchedPolicy::OutOfOrder);
        assert!(iq.has_space());
        iq.insert(1, OpClass::IntAlu, true);
        iq.insert(2, OpClass::IntAlu, true);
        assert!(!iq.has_space());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn inserting_into_a_full_queue_panics() {
        let mut iq = IssueQueue::new(1, SchedPolicy::OutOfOrder);
        iq.insert(1, OpClass::IntAlu, true);
        iq.insert(2, OpClass::IntAlu, true);
    }

    #[test]
    fn remove_and_mark_ready_on_missing_entries_are_harmless() {
        let mut iq = IssueQueue::new(4, SchedPolicy::OutOfOrder);
        assert!(!iq.remove(42));
        iq.mark_ready(42);
        assert!(iq.is_empty());
    }
}
