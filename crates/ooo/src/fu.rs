//! Functional-unit pools and memory-port tracking.

use dkip_model::config::FuConfig;
use dkip_model::FuPool;

/// Per-cycle tracker of functional-unit availability.
///
/// Every pool may start `count` operations per cycle (fully pipelined
/// units); [`begin_cycle`](FunctionalUnits::begin_cycle) resets the budget.
#[derive(Debug, Clone)]
pub struct FunctionalUnits {
    config: FuConfig,
    available: [usize; 4],
}

impl FunctionalUnits {
    /// Creates the tracker from a pool configuration.
    #[must_use]
    pub fn new(config: FuConfig) -> Self {
        let mut fus = FunctionalUnits {
            config,
            available: [0; 4],
        };
        fus.begin_cycle();
        fus
    }

    /// Resets per-cycle availability; call once at the start of each cycle.
    pub fn begin_cycle(&mut self) {
        self.available = [
            self.config.int_alu,
            self.config.int_mul,
            self.config.fp_add,
            self.config.fp_mul_div,
        ];
    }

    /// Whether an operation of `pool` can start this cycle.
    #[must_use]
    pub fn can_issue(&self, pool: FuPool) -> bool {
        self.available[pool.index()] > 0
    }

    /// Consumes one unit of `pool` for this cycle; returns `false` without
    /// consuming anything if the pool is exhausted.
    pub fn try_issue(&mut self, pool: FuPool) -> bool {
        let slot = &mut self.available[pool.index()];
        if *slot > 0 {
            *slot -= 1;
            true
        } else {
            false
        }
    }

    /// The configuration this tracker was created from.
    #[must_use]
    pub fn config(&self) -> &FuConfig {
        &self.config
    }
}

/// Per-cycle tracker of the Address Processor's global memory ports.
#[derive(Debug, Clone)]
pub struct MemPorts {
    ports: usize,
    available: usize,
}

impl MemPorts {
    /// Creates a tracker with `ports` read/write ports.
    #[must_use]
    pub fn new(ports: usize) -> Self {
        MemPorts {
            ports,
            available: ports,
        }
    }

    /// Resets per-cycle availability; call once at the start of each cycle.
    pub fn begin_cycle(&mut self) {
        self.available = self.ports;
    }

    /// Whether a memory operation can start this cycle.
    #[must_use]
    pub fn can_issue(&self) -> bool {
        self.available > 0
    }

    /// Consumes one port; returns `false` without consuming if exhausted.
    pub fn try_issue(&mut self) -> bool {
        if self.available > 0 {
            self.available -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_budgets_reset_each_cycle() {
        let mut fus = FunctionalUnits::new(FuConfig::paper_default());
        assert!(fus.try_issue(FuPool::IntMul));
        assert!(
            !fus.try_issue(FuPool::IntMul),
            "only one integer multiplier"
        );
        fus.begin_cycle();
        assert!(fus.try_issue(FuPool::IntMul));
    }

    #[test]
    fn alu_pool_allows_four_per_cycle() {
        let mut fus = FunctionalUnits::new(FuConfig::paper_default());
        for _ in 0..4 {
            assert!(fus.try_issue(FuPool::IntAlu));
        }
        assert!(!fus.can_issue(FuPool::IntAlu));
    }

    #[test]
    fn pools_are_independent() {
        let mut fus = FunctionalUnits::new(FuConfig::paper_default());
        while fus.try_issue(FuPool::FpAdd) {}
        assert!(fus.can_issue(FuPool::FpMulDiv));
        assert!(fus.can_issue(FuPool::IntAlu));
    }

    #[test]
    fn mem_ports_limit_per_cycle_accesses() {
        let mut ports = MemPorts::new(2);
        assert!(ports.try_issue());
        assert!(ports.try_issue());
        assert!(!ports.try_issue());
        ports.begin_cycle();
        assert!(ports.can_issue());
    }
}
