//! The out-of-order core model.
//!
//! [`OooCore`] implements a trace-driven, cycle-level R10000-style
//! out-of-order pipeline: fetch (with branch prediction), rename/dispatch
//! into a ROB + issue queues + LSQ, dependency-driven issue bounded by
//! functional units and memory ports, execution against the memory
//! hierarchy, and in-order commit.
//!
//! The same engine also provides the *slow-lane* option used by the
//! traditional KILO-instruction baseline (`dkip-kilo`): when a slow lane is
//! configured, instructions that depend on an outstanding long-latency load
//! are parked outside the issue queues (as in the WIB / SLIQ proposals) and
//! re-enter an issue queue once their operands are available.

use crate::fu::{FunctionalUnits, MemPorts};
use crate::iq::IssueQueue;
use crate::lsq::{Lsq, FORWARD_LATENCY};
use crate::rob::{Rob, RobEntry};
use dkip_bpred::{BranchPredictor, PredictorKind};
use dkip_mem::{AccessLevel, MemoryHierarchy};
use dkip_model::config::{
    event_clock_enabled, BaselineConfig, FuConfig, MemoryHierarchyConfig, SchedPolicy, WidthConfig,
};
use dkip_model::telemetry::{MetricsFrame, Stage, Telemetry};
use dkip_model::{
    fast_set_with_capacity, ConsumerTable, DepList, FastHashSet, Histogram, LastWriters, MicroOp,
    OpClass, RegClass, SimStats,
};
use dkip_trace::{Benchmark, TraceGenerator};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// An outstanding memory access is considered *long latency* (and therefore
/// creates low execution locality) when its total latency is at least this
/// many cycles — i.e. it went to main memory rather than a cache.
pub const LONG_LATENCY_THRESHOLD: u64 = 50;

/// Engine-level parameters, independent of which paper configuration they
/// came from.
#[derive(Debug, Clone)]
pub struct CoreParams {
    /// Display name.
    pub name: String,
    /// In-flight instruction window (ROB capacity).
    pub window: usize,
    /// Integer issue-queue capacity.
    pub int_iq: usize,
    /// Floating-point issue-queue capacity.
    pub fp_iq: usize,
    /// Scheduling policy of both issue queues.
    pub sched: SchedPolicy,
    /// Load/store queue capacity.
    pub lsq: usize,
    /// Memory ports per cycle.
    pub memory_ports: usize,
    /// Pipeline widths.
    pub widths: WidthConfig,
    /// Functional-unit pools.
    pub fu: FuConfig,
    /// Front-end refill penalty after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// Collect the decode→issue histogram (Figure 3).
    pub collect_issue_histogram: bool,
    /// Capacity of the slow lane (WIB/SLIQ-style buffer) if present.
    pub slow_lane: Option<usize>,
    /// Branch predictor to instantiate.
    pub predictor: PredictorKind,
}

impl From<&BaselineConfig> for CoreParams {
    fn from(cfg: &BaselineConfig) -> Self {
        CoreParams {
            name: cfg.name.clone(),
            window: cfg.rob_capacity,
            int_iq: cfg.int_iq_capacity,
            fp_iq: cfg.fp_iq_capacity,
            sched: cfg.sched,
            lsq: cfg.lsq_capacity,
            memory_ports: cfg.memory_ports,
            widths: cfg.widths,
            fu: cfg.fu,
            mispredict_penalty: cfg.mispredict_penalty,
            collect_issue_histogram: cfg.collect_issue_histogram,
            slow_lane: None,
            predictor: PredictorKind::Perceptron,
        }
    }
}

/// A deep-copied checkpoint of an [`OooCore`], captured by
/// [`OooCore::snapshot`].
///
/// The snapshot holds the complete microarchitectural state — ROB, issue
/// queues, LSQ, rename scoreboard, in-flight completions, branch-predictor
/// tables, cache contents and statistics — so a core restored from it
/// ([`OooCore::restore`] or [`CoreSnapshot::to_core`]) continues the
/// simulation bit-identically to the original. This is what lets the
/// sampled-simulation mode seed detailed windows mid-stream and lets
/// interrupted sweeps resume.
#[derive(Debug, Clone)]
pub struct CoreSnapshot {
    state: OooCore,
}

impl CoreSnapshot {
    /// Materialises an independent core that resumes from this checkpoint.
    #[must_use]
    pub fn to_core(&self) -> OooCore {
        self.state.clone()
    }
}

/// The trace-driven out-of-order core.
#[derive(Debug, Clone)]
pub struct OooCore {
    params: CoreParams,
    mem: MemoryHierarchy,
    predictor: Box<dyn BranchPredictor>,
    cycle: u64,
    rob: Rob,
    int_iq: IssueQueue,
    fp_iq: IssueQueue,
    lsq: Lsq,
    fus: FunctionalUnits,
    ports: MemPorts,
    /// Completion events: (cycle, seq).
    completions: BinaryHeap<Reverse<(u64, u64)>>,
    /// Producer seq → consumer seqs still waiting on it (pooled spines).
    consumers: ConsumerTable,
    /// Architectural register → seq of its most recent producer (flat
    /// scoreboard).
    last_writer: LastWriters,
    /// Fetched but not yet dispatched instructions.
    fetch_queue: VecDeque<MicroOp>,
    /// Dispatched, mispredicted, not-yet-resolved conditional branches
    /// (front = oldest). Fetch and younger dispatch stall behind the front.
    unresolved_mispredicts: VecDeque<u64>,
    /// Cycle at which fetch may resume after the refill penalty.
    fetch_resume_at: u64,
    /// Instructions with a sequence number greater than this may not
    /// dispatch while the refill penalty is being paid.
    refill_boundary: u64,
    /// Instructions parked in the slow lane (present only when configured).
    slow_lane: FastHashSet<u64>,
    /// Parked instructions whose operands are now ready, waiting for issue
    /// queue space.
    reinsert_queue: VecDeque<u64>,
    /// Instructions that produce a long-latency (memory) value and have not
    /// completed yet.
    long_latency_producers: FastHashSet<u64>,
    /// Whether the trace iterator has returned `None` (finite traces such as
    /// the execution-driven RISC-V kernels end; the synthetic generators
    /// never do).
    trace_done: bool,
    /// Force one `tick()` per simulated cycle instead of letting [`run`]
    /// fast-forward over quiesced stretches (set by `DKIP_NO_SKIP=1`).
    ///
    /// [`run`]: OooCore::run
    single_step: bool,
    stats: SimStats,
    issue_hist: Option<Histogram>,
    /// Reusable per-cycle selection buffer (see [`IssueQueue::select_into`]).
    issue_scratch: Vec<(u64, OpClass)>,
    /// Reusable traversal frontier for [`OooCore::mark_long_latency`].
    frontier_scratch: Vec<u64>,
}

impl OooCore {
    /// Builds a core from engine parameters and a memory hierarchy.
    #[must_use]
    pub fn new(params: CoreParams, mem: MemoryHierarchy) -> Self {
        let predictor = params.predictor.build();
        let issue_hist = params
            .collect_issue_histogram
            .then(|| Histogram::new(20, 2000));
        OooCore {
            rob: Rob::new(params.window),
            int_iq: IssueQueue::new(params.int_iq, params.sched),
            fp_iq: IssueQueue::new(params.fp_iq, params.sched),
            lsq: Lsq::new(params.lsq),
            fus: FunctionalUnits::new(params.fu),
            ports: MemPorts::new(params.memory_ports),
            completions: BinaryHeap::with_capacity(params.window.min(4096)),
            consumers: ConsumerTable::with_capacity(params.window.min(4096)),
            last_writer: LastWriters::new(),
            fetch_queue: VecDeque::new(),
            unresolved_mispredicts: VecDeque::new(),
            fetch_resume_at: 0,
            refill_boundary: u64::MAX,
            slow_lane: fast_set_with_capacity(params.slow_lane.unwrap_or(0).min(4096)),
            reinsert_queue: VecDeque::new(),
            long_latency_producers: fast_set_with_capacity(params.window.min(4096)),
            trace_done: false,
            single_step: !event_clock_enabled(),
            stats: SimStats::new(),
            issue_hist,
            issue_scratch: Vec::new(),
            frontier_scratch: Vec::new(),
            cycle: 0,
            predictor,
            mem,
            params,
        }
    }

    /// Convenience constructor from a paper baseline configuration.
    #[must_use]
    pub fn from_baseline(cfg: &BaselineConfig, mem: MemoryHierarchy) -> Self {
        Self::new(CoreParams::from(cfg), mem)
    }

    /// The engine parameters.
    #[must_use]
    pub fn params(&self) -> &CoreParams {
        &self.params
    }

    /// Current cycle count.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Forces (or releases) single-stepped simulation regardless of the
    /// `DKIP_NO_SKIP` environment variable sampled at construction.
    pub fn set_single_step(&mut self, single_step: bool) {
        self.single_step = single_step;
    }

    /// Captures a checkpoint of the complete core state (pipeline, caches,
    /// predictor, statistics). See [`CoreSnapshot`] for the contract.
    ///
    /// Note the trace iterator is *not* part of the core: callers pairing a
    /// snapshot with a resumable stream must checkpoint the stream
    /// position themselves (e.g. by cloning the [`dkip_model::MicroOp`]
    /// source).
    #[must_use]
    pub fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            state: self.clone(),
        }
    }

    /// Replaces this core's entire state with the checkpoint's; the next
    /// [`OooCore::run`] continues exactly as the snapshotted core would
    /// have.
    pub fn restore(&mut self, snapshot: &CoreSnapshot) {
        *self = snapshot.state.clone();
    }

    /// Functionally warms the long-lived microarchitectural state with one
    /// instruction that is *not* being simulated in detail: memory ops
    /// install/promote their line in the cache hierarchy (timing-free, see
    /// [`MemoryHierarchy::warm_access`]) and conditional branches train the
    /// direction predictor with the in-order predict/update pair the
    /// pipeline itself would apply.
    ///
    /// The sampled-simulation mode calls this for every fast-forwarded
    /// instruction so detailed windows measure against cache and predictor
    /// contents that track the exact run, without modelling any timing. The
    /// pipeline, clock and committed counters are untouched.
    pub fn warm_op(&mut self, op: &MicroOp) {
        if let Some(addr) = op.mem_addr {
            self.mem.warm_access(addr, op.is_store());
        }
        if op.is_conditional_branch() {
            let taken = op.branch.expect("conditional branch").taken;
            let predicted = self.predictor.predict(op.pc);
            self.predictor.update(op.pc, taken, predicted);
        }
    }

    /// Runs the core until `max_instrs` instructions have committed, the
    /// trace ends and the pipeline drains (finite execution-driven streams
    /// run to completion), or a safety cycle bound is hit. Returns the
    /// accumulated statistics.
    ///
    /// Unless single-stepping is forced (`DKIP_NO_SKIP=1`), quiesced
    /// stretches — a tick that fetched, dispatched, issued, reinserted,
    /// completed and committed nothing — are fast-forwarded to the earliest
    /// [`OooCore::next_event`], with the per-cycle stall counters bumped by
    /// the skipped delta so every statistic stays bit-identical to
    /// single-stepping.
    pub fn run(&mut self, trace: &mut dyn Iterator<Item = MicroOp>, max_instrs: u64) -> SimStats {
        self.run_probed(trace, max_instrs, None)
    }

    /// [`OooCore::run`] with an optional telemetry sink attached. The sink
    /// is a run parameter, not core state, so snapshots and `Clone` are
    /// unaffected; with `None` each probe site costs one predictable
    /// branch and no allocation, and the simulation is bit-identical
    /// either way.
    pub fn run_probed(
        &mut self,
        trace: &mut dyn Iterator<Item = MicroOp>,
        max_instrs: u64,
        mut probe: Option<&mut Telemetry>,
    ) -> SimStats {
        let cycle_cap = self
            .cycle
            .saturating_add(max_instrs.saturating_mul(2000).max(1_000_000));
        // Each run() call may bring a fresh trace, so exhaustion must not
        // latch across calls (it re-latches on the first empty fetch).
        self.trace_done = false;
        while self.stats.committed < max_instrs && self.cycle < cycle_cap {
            let stalls_before = self.stats.stall_counter_snapshot();
            let progress = self.tick_probed(trace, probe.as_deref_mut());
            if let Some(t) = probe.as_deref_mut() {
                if t.metrics_due(self.stats.committed) {
                    t.record_metrics(&self.metrics_frame());
                }
            }
            if self.trace_done && self.fetch_queue.is_empty() && self.rob.is_empty() {
                break;
            }
            if !progress && !self.single_step {
                self.skip_quiesced_cycles(cycle_cap, stalls_before);
            }
        }
        self.finalize_stats();
        self.stats.clone()
    }

    /// Advances the pipeline by one cycle.
    pub fn tick(&mut self, trace: &mut dyn Iterator<Item = MicroOp>) {
        let _ = self.tick_probed(trace, None);
    }

    /// Advances the pipeline by one cycle and reports whether any work
    /// happened: an instruction fetched, dispatched, issued, reinserted,
    /// completed or committed. A `false` return means the machine state is
    /// unchanged apart from time-gated conditions, so every following cycle
    /// until [`OooCore::next_event`] would be identical.
    ///
    /// The telemetry sink observes exactly the work the progress flag
    /// reports: any stage that can make progress must feed both.
    fn tick_probed(
        &mut self,
        trace: &mut dyn Iterator<Item = MicroOp>,
        mut probe: Option<&mut Telemetry>,
    ) -> bool {
        self.cycle += 1;
        self.stats.ticks_executed += 1;
        self.fus.begin_cycle();
        self.ports.begin_cycle();
        let mut progress = self.do_commit(probe.as_deref_mut());
        progress |= self.do_writeback(probe.as_deref_mut());
        progress |= self.do_reinsert();
        progress |= self.do_issue(probe.as_deref_mut());
        progress |= self.do_dispatch(probe.as_deref_mut());
        progress |= self.do_fetch(trace, probe);
        progress
    }

    /// Snapshot of the occupancies and cumulative counters the interval
    /// metrics report, taken at a row boundary. The slow lane (KILO) maps
    /// onto the frame's low-locality-buffer column; the plain baseline has
    /// neither an LLIB nor an LLBV.
    fn metrics_frame(&self) -> MetricsFrame {
        let mut frame = MetricsFrame {
            cycle: self.cycle,
            committed: self.stats.committed,
            rob: self.rob.len() as u64,
            iq: (self.int_iq.len() + self.fp_iq.len()) as u64,
            lsq: self.lsq.occupancy() as u64,
            llib: self.slow_lane.len() as u64,
            llbv: 0,
            cond_branches: self.stats.cond_branches,
            branch_mispredicts: self.stats.branch_mispredicts,
            ticks_executed: self.stats.ticks_executed,
            cycles_skipped: self.stats.cycles_skipped,
            ..MetricsFrame::default()
        };
        self.mem.stats().fill_metrics(&mut frame);
        frame
    }

    /// The earliest future cycle (strictly after the current one) at which
    /// the core's state can change without new work arriving: the next
    /// scheduled execution completion, the end of the front-end refill
    /// penalty, or the next outstanding cache fill. `None` means no event is
    /// pending and the machine can never wake on its own.
    #[must_use]
    pub fn next_event(&mut self) -> Option<u64> {
        let mut next = self
            .completions
            .peek()
            .map(|&Reverse((cycle, _))| cycle)
            .filter(|&cycle| cycle > self.cycle);
        if self.fetch_resume_at > self.cycle {
            next = Some(next.map_or(self.fetch_resume_at, |n| n.min(self.fetch_resume_at)));
        }
        if let Some(fill) = self.mem.next_event(self.cycle) {
            next = Some(next.map_or(fill, |n| n.min(fill)));
        }
        next
    }

    /// Fast-forwards over a quiesced stretch: advances `cycle` to just
    /// before the next event (or past `cycle_cap` when no event is pending,
    /// matching a single-stepped spin to the cap) and replays the per-cycle
    /// stall bumps the skipped ticks would have performed.
    fn skip_quiesced_cycles(&mut self, cycle_cap: u64, stalls_before: [u64; 4]) {
        let event = self
            .next_event()
            .unwrap_or_else(|| cycle_cap.saturating_add(1));
        let target = event.min(cycle_cap.saturating_add(1)) - 1;
        if target <= self.cycle {
            return;
        }
        let skipped = target - self.cycle;
        self.cycle = target;
        self.stats.cycles_skipped += skipped;
        self.stats.replay_stall_cycles(stalls_before, skipped);
    }

    fn finalize_stats(&mut self) {
        self.stats.cycles = self.cycle;
        let mem_stats = self.mem.stats();
        self.stats.l1_hits = mem_stats.l1_hits;
        self.stats.l2_hits = mem_stats.l2_hits;
        self.stats.mem_accesses = mem_stats.memory_accesses;
        self.stats.issue_latency = self.issue_hist.clone();
    }

    fn queue_class(op: &MicroOp) -> RegClass {
        if op.class.is_fp() || op.dst.map(|d| d.class()) == Some(RegClass::Fp) {
            RegClass::Fp
        } else {
            RegClass::Int
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------
    fn do_commit(&mut self, mut probe: Option<&mut Telemetry>) -> bool {
        let mut committed = false;
        for _ in 0..self.params.widths.commit {
            let Some(head) = self.rob.head() else { break };
            if !head.completed {
                break;
            }
            committed = true;
            let entry = self.rob.pop_head().expect("head exists");
            match entry.op.class {
                OpClass::Load => self.lsq.retire_load(entry.op.seq),
                OpClass::Store => self.lsq.retire_store(entry.op.seq),
                _ => {}
            }
            self.stats.committed += 1;
            self.stats.high_locality_instrs += 1;
            if let Some(t) = probe.as_deref_mut() {
                t.trace_commit(entry.op.seq, self.cycle);
            }
        }
        committed
    }

    // ------------------------------------------------------------------
    // Writeback / wakeup
    // ------------------------------------------------------------------
    fn do_writeback(&mut self, mut probe: Option<&mut Telemetry>) -> bool {
        let mut completed = false;
        while let Some(&Reverse((cycle, seq))) = self.completions.peek() {
            if cycle > self.cycle {
                break;
            }
            completed = true;
            self.completions.pop();
            self.complete_instruction(seq, probe.as_deref_mut());
        }
        completed
    }

    fn complete_instruction(&mut self, seq: u64, probe: Option<&mut Telemetry>) {
        if let Some(t) = probe {
            t.trace_stage(seq, Stage::Complete, self.cycle);
        }
        self.long_latency_producers.remove(&seq);
        let (is_cond_branch, taken, predicted, mispredicted, pc) = {
            let Some(entry) = self.rob.get_mut(seq) else {
                return;
            };
            entry.completed = true;
            let is_cond = entry.op.is_conditional_branch();
            let taken = entry.op.branch.map(|b| b.taken).unwrap_or(false);
            (
                is_cond,
                taken,
                entry.predicted_taken,
                entry.mispredicted,
                entry.op.pc,
            )
        };

        if is_cond_branch {
            self.stats.cond_branches += 1;
            self.predictor.update(pc, taken, predicted);
            if mispredicted {
                self.stats.branch_mispredicts += 1;
                if self.unresolved_mispredicts.front() == Some(&seq) {
                    self.unresolved_mispredicts.pop_front();
                    self.fetch_resume_at = self.cycle + self.params.mispredict_penalty;
                    self.refill_boundary = seq;
                }
            }
        }

        // Wake consumers.
        let waiters = self.consumers.take(seq);
        for &consumer in &waiters {
            self.wake_consumer(consumer);
        }
        self.consumers.recycle(waiters);
    }

    fn wake_consumer(&mut self, seq: u64) {
        let Some(entry) = self.rob.get_mut(seq) else {
            return;
        };
        if entry.pending_srcs == 0 {
            return;
        }
        entry.pending_srcs -= 1;
        if entry.pending_srcs == 0 && !entry.issued {
            let class = entry.queue_class;
            if self.slow_lane.remove(&seq) {
                // Parked instructions re-enter an issue queue when space
                // allows.
                self.reinsert_queue.push_back(seq);
            } else {
                match class {
                    RegClass::Int => self.int_iq.mark_ready(seq),
                    RegClass::Fp => self.fp_iq.mark_ready(seq),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Slow-lane reinsertion (KILO baseline only)
    // ------------------------------------------------------------------
    fn do_reinsert(&mut self) -> bool {
        let mut moved = false;
        let budget = self.params.widths.decode;
        for _ in 0..budget {
            let Some(&seq) = self.reinsert_queue.front() else {
                break;
            };
            let Some(entry) = self.rob.get(seq) else {
                self.reinsert_queue.pop_front();
                moved = true;
                continue;
            };
            let class = entry.queue_class;
            let op_class = entry.op.class;
            let iq = match class {
                RegClass::Int => &mut self.int_iq,
                RegClass::Fp => &mut self.fp_iq,
            };
            if !iq.has_space() {
                break;
            }
            iq.insert(seq, op_class, true);
            self.reinsert_queue.pop_front();
            moved = true;
        }
        moved
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------
    fn do_issue(&mut self, mut probe: Option<&mut Telemetry>) -> bool {
        let width = self.params.widths.issue;
        let mut selected = std::mem::take(&mut self.issue_scratch);
        selected.clear();
        self.int_iq
            .select_into(width, &mut self.fus, &mut self.ports, &mut selected);
        let remaining = width.saturating_sub(selected.len());
        self.fp_iq
            .select_into(remaining, &mut self.fus, &mut self.ports, &mut selected);

        for &(seq, class) in &selected {
            if let Some(t) = probe.as_deref_mut() {
                t.trace_stage(seq, Stage::Issue, self.cycle);
            }
            self.start_execution(seq, class);
        }
        let issued = !selected.is_empty();
        self.issue_scratch = selected;
        issued
    }

    fn start_execution(&mut self, seq: u64, class: OpClass) {
        let now = self.cycle;
        let (addr, dispatch_cycle) = {
            let entry = self
                .rob
                .get_mut(seq)
                .expect("issued instruction must be in flight");
            entry.issued = true;
            entry.issue_cycle = Some(now);
            (entry.op.mem_addr, entry.dispatch_cycle)
        };
        if let Some(hist) = self.issue_hist.as_mut() {
            hist.record(now - dispatch_cycle);
        }

        let latency = match class {
            OpClass::Load => {
                let addr = addr.expect("load has an address");
                if self.lsq.forwards_from_store(seq, addr) {
                    FORWARD_LATENCY
                } else {
                    let outcome = self.mem.access(addr, false, now);
                    if outcome.level == AccessLevel::Memory {
                        self.mark_long_latency(seq);
                    }
                    outcome.latency
                }
            }
            OpClass::Store => {
                let addr = addr.expect("store has an address");
                // The store is considered complete once it is in the store
                // buffer; the cache is updated immediately for timing
                // purposes.
                let _ = self.mem.access(addr, true, now);
                1
            }
            other => other.exec_latency(),
        };
        self.completions.push(Reverse((now + latency.max(1), seq)));
    }

    /// Marks `seq` as producing a long-latency value and, when a slow lane
    /// is configured, parks its not-yet-issued dependants outside the issue
    /// queues (transitively), as the WIB/SLIQ designs do.
    fn mark_long_latency(&mut self, seq: u64) {
        self.long_latency_producers.insert(seq);
        if self.params.slow_lane.is_none() {
            return;
        }
        let mut frontier = std::mem::take(&mut self.frontier_scratch);
        frontier.clear();
        frontier.push(seq);
        while let Some(producer) = frontier.pop() {
            for &consumer in self.consumers.get(producer) {
                let Some(entry) = self.rob.get(consumer) else {
                    continue;
                };
                if entry.issued || self.slow_lane.contains(&consumer) {
                    continue;
                }
                let moved = match entry.queue_class {
                    RegClass::Int => self.int_iq.remove(consumer),
                    RegClass::Fp => self.fp_iq.remove(consumer),
                };
                if moved {
                    self.slow_lane.insert(consumer);
                    frontier.push(consumer);
                }
            }
        }
        self.frontier_scratch = frontier;
    }

    // ------------------------------------------------------------------
    // Dispatch / rename
    // ------------------------------------------------------------------
    fn do_dispatch(&mut self, mut probe: Option<&mut Telemetry>) -> bool {
        let mut dispatched = false;
        for _ in 0..self.params.widths.decode {
            let Some(op) = self.fetch_queue.front() else {
                break;
            };
            // Instructions younger than an unresolved mispredicted branch are
            // (conceptually) wrong-path refetches: they only enter the
            // pipeline once the branch has resolved and the refill penalty
            // has been paid.
            if let Some(&blocking) = self.unresolved_mispredicts.front() {
                if op.seq > blocking {
                    break;
                }
            }
            if self.cycle < self.fetch_resume_at && op.seq > self.refill_boundary {
                break;
            }
            if !self.rob.has_space() {
                self.stats.rob_full_stall_cycles += 1;
                break;
            }
            if op.class.is_mem() && !self.lsq.has_space() {
                break;
            }
            let queue_class = Self::queue_class(op);
            // Decide whether the instruction goes to an issue queue or is
            // parked in the slow lane before checking queue space. The
            // producer list is inline ([`DepList`]): a micro-op has at most
            // two sources, so dispatch never touches the heap for it.
            let mut pending_producers = DepList::new();
            for src in op.sources() {
                if let Some(producer) = self.last_writer.get(src) {
                    if self
                        .rob
                        .get(producer)
                        .map(|e| !e.completed)
                        .unwrap_or(false)
                    {
                        pending_producers.push(producer);
                    }
                }
            }
            let depends_on_long_latency = pending_producers
                .iter()
                .any(|p| self.long_latency_producers.contains(&p) || self.slow_lane.contains(&p));
            let park = self.params.slow_lane.is_some()
                && depends_on_long_latency
                && !pending_producers.is_empty();
            if park {
                if self.slow_lane.len() >= self.params.slow_lane.unwrap_or(usize::MAX) {
                    break;
                }
            } else {
                let iq = match queue_class {
                    RegClass::Int => &self.int_iq,
                    RegClass::Fp => &self.fp_iq,
                };
                if !iq.has_space() {
                    break;
                }
            }

            let op = self.fetch_queue.pop_front().expect("checked non-empty");
            dispatched = true;
            let seq = op.seq;
            if let Some(t) = probe.as_deref_mut() {
                t.trace_stage(seq, Stage::Dispatch, self.cycle);
            }
            let mut entry = RobEntry::new(op, self.cycle, queue_class);

            // Wire dependencies.
            for producer in pending_producers.iter() {
                self.consumers.push(producer, seq);
            }
            // A pointer-chasing load can name the same producer twice via
            // dst==src; dedup is unnecessary because sources() yields each
            // register slot once and distinct slots may legitimately wait on
            // the same producer (two wakeups, counted twice at dispatch).
            entry.pending_srcs = pending_producers.len();

            if entry.op.is_conditional_branch() {
                let predicted = self.predictor.predict(entry.op.pc);
                entry.predicted_taken = predicted;
                let actual = entry.op.branch.expect("conditional branch").taken;
                entry.mispredicted = predicted != actual;
                if entry.mispredicted {
                    self.unresolved_mispredicts.push_back(seq);
                }
            }

            match entry.op.class {
                OpClass::Load => {
                    self.lsq.dispatch_load(seq);
                    self.stats.loads += 1;
                }
                OpClass::Store => {
                    let addr = entry.op.mem_addr.expect("store has an address");
                    self.lsq.dispatch_store(seq, addr);
                    self.stats.stores += 1;
                }
                _ => {}
            }

            if let Some(dst) = entry.op.dst {
                self.last_writer.set(dst, seq);
            }

            let ready = entry.pending_srcs == 0;
            let op_class = entry.op.class;
            self.rob.push(entry);
            if park {
                self.slow_lane.insert(seq);
                if ready {
                    self.reinsert_queue.push_back(seq);
                    self.slow_lane.remove(&seq);
                }
            } else {
                match queue_class {
                    RegClass::Int => self.int_iq.insert(seq, op_class, ready),
                    RegClass::Fp => self.fp_iq.insert(seq, op_class, ready),
                }
            }
        }
        dispatched
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------
    fn do_fetch(
        &mut self,
        trace: &mut dyn Iterator<Item = MicroOp>,
        mut probe: Option<&mut Telemetry>,
    ) -> bool {
        if !self.unresolved_mispredicts.is_empty() || self.cycle < self.fetch_resume_at {
            self.stats.mispredict_stall_cycles += 1;
            return false;
        }
        let mut fetched = false;
        let limit = self.params.widths.fetch * 3;
        for _ in 0..self.params.widths.fetch {
            if self.fetch_queue.len() >= limit {
                break;
            }
            let Some(op) = trace.next() else {
                self.trace_done = true;
                break;
            };
            self.stats.fetched += 1;
            if let Some(t) = probe.as_deref_mut() {
                t.trace_fetch(&op, self.cycle);
            }
            self.fetch_queue.push_back(op);
            fetched = true;
        }
        fetched
    }
}

/// Runs an arbitrary correct-path [`MicroOp`] stream for up to `max_instrs`
/// committed instructions on the baseline configuration `cfg` with memory
/// hierarchy `mem_cfg`. Finite streams (e.g. the execution-driven RISC-V
/// kernels of `dkip-riscv`) run to completion and drain the pipeline.
///
/// This is the single entry point every workload source funnels through;
/// [`run_baseline`] is the synthetic-benchmark convenience wrapper.
///
/// # Panics
///
/// Panics if the memory configuration is invalid.
#[must_use]
pub fn run_baseline_stream(
    cfg: &BaselineConfig,
    mem_cfg: &MemoryHierarchyConfig,
    stream: &mut dyn Iterator<Item = MicroOp>,
    max_instrs: u64,
) -> SimStats {
    run_baseline_stream_probed(cfg, mem_cfg, stream, max_instrs, None)
}

/// [`run_baseline_stream`] with an optional telemetry sink attached
/// (`None` is bit-identical to the plain entry point).
///
/// # Panics
///
/// Panics if the memory configuration is invalid.
#[must_use]
pub fn run_baseline_stream_probed(
    cfg: &BaselineConfig,
    mem_cfg: &MemoryHierarchyConfig,
    stream: &mut dyn Iterator<Item = MicroOp>,
    max_instrs: u64,
    probe: Option<&mut Telemetry>,
) -> SimStats {
    let mem = MemoryHierarchy::new(mem_cfg.clone()).expect("invalid memory configuration");
    let mut core = OooCore::from_baseline(cfg, mem);
    core.run_probed(stream, max_instrs, probe)
}

/// Runs `benchmark` for `max_instrs` committed instructions on the baseline
/// configuration `cfg` with memory hierarchy `mem_cfg`.
///
/// This is the entry point used by the Figure 1/2/3/9 experiment drivers.
///
/// # Panics
///
/// Panics if the memory configuration is invalid.
#[must_use]
pub fn run_baseline(
    cfg: &BaselineConfig,
    mem_cfg: &MemoryHierarchyConfig,
    benchmark: Benchmark,
    max_instrs: u64,
    seed: u64,
) -> SimStats {
    run_baseline_stream(
        cfg,
        mem_cfg,
        &mut TraceGenerator::new(benchmark, seed),
        max_instrs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkip_model::config::MemoryHierarchyConfig;

    fn run(cfg: &BaselineConfig, mem: MemoryHierarchyConfig, bench: Benchmark, n: u64) -> SimStats {
        run_baseline(cfg, &mem, bench, n, 1)
    }

    #[test]
    fn commits_the_requested_number_of_instructions() {
        let stats = run(
            &BaselineConfig::r10_64(),
            MemoryHierarchyConfig::l1_2(),
            Benchmark::Crafty,
            5_000,
        );
        // Commit is up to 4 wide, so the run may overshoot by at most
        // commit_width - 1 instructions.
        assert!(
            stats.committed >= 5_000 && stats.committed < 5_004,
            "committed={}",
            stats.committed
        );
        assert!(stats.cycles > 0);
        assert!(stats.fetched >= stats.committed);
    }

    #[test]
    fn ipc_is_bounded_by_the_machine_width() {
        let stats = run(
            &BaselineConfig::r10_256(),
            MemoryHierarchyConfig::l1_2(),
            Benchmark::Swim,
            10_000,
        );
        assert!(stats.ipc() <= 4.0 + 1e-9, "ipc={}", stats.ipc());
        assert!(
            stats.ipc() > 0.5,
            "a perfect-L1 machine should sustain decent IPC"
        );
    }

    #[test]
    fn slower_memory_lowers_ipc() {
        let fast = run(
            &BaselineConfig::r10_64(),
            MemoryHierarchyConfig::l1_2(),
            Benchmark::Swim,
            8_000,
        );
        let slow = run(
            &BaselineConfig::r10_64(),
            MemoryHierarchyConfig::mem_1000(),
            Benchmark::Swim,
            8_000,
        );
        assert!(
            slow.ipc() < fast.ipc() * 0.8,
            "memory wall must hurt: fast={} slow={}",
            fast.ipc(),
            slow.ipc()
        );
    }

    #[test]
    fn larger_windows_help_fp_codes_with_slow_memory() {
        let small = run(
            &BaselineConfig::idealized(32),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Swim,
            12_000,
        );
        let large = run(
            &BaselineConfig::idealized(1024),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Swim,
            12_000,
        );
        assert!(
            large.ipc() > small.ipc() * 1.5,
            "window scaling must recover FP IPC: small={} large={}",
            small.ipc(),
            large.ipc()
        );
    }

    #[test]
    fn pointer_chasing_defeats_window_scaling() {
        let small = run(
            &BaselineConfig::idealized(64),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Mcf,
            6_000,
        );
        let large = run(
            &BaselineConfig::idealized(2048),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Mcf,
            6_000,
        );
        // Some benefit is allowed (prefetching effect) but nothing like the
        // FP recovery.
        assert!(
            large.ipc() < small.ipc() * 2.5,
            "mcf should not scale dramatically: small={} large={}",
            small.ipc(),
            large.ipc()
        );
    }

    #[test]
    fn branches_are_predicted_and_sometimes_mispredicted() {
        let stats = run(
            &BaselineConfig::r10_64(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Gcc,
            10_000,
        );
        assert!(stats.cond_branches > 500);
        assert!(stats.branch_mispredicts > 0);
        assert!(stats.mispredict_rate() < 0.35);
    }

    #[test]
    fn fp_codes_have_lower_mispredict_rates_than_int_codes() {
        let int = run(
            &BaselineConfig::r10_64(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Twolf,
            10_000,
        );
        let fp = run(
            &BaselineConfig::r10_64(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Mgrid,
            10_000,
        );
        assert!(
            fp.mispredict_rate() < int.mispredict_rate(),
            "fp={} int={}",
            fp.mispredict_rate(),
            int.mispredict_rate()
        );
    }

    #[test]
    fn issue_histogram_is_collected_when_requested() {
        let mut cfg = BaselineConfig::idealized(512);
        cfg.collect_issue_histogram = true;
        let stats = run(
            &cfg,
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Swim,
            8_000,
        );
        let hist = stats.issue_latency.expect("histogram requested");
        assert!(hist.total_samples() > 4_000);
        // Most instructions issue quickly; some wait for the 400-cycle memory.
        assert!(hist.fraction_at_most(100) > 0.4);
    }

    #[test]
    fn memory_statistics_are_propagated() {
        let stats = run(
            &BaselineConfig::r10_64(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Art,
            8_000,
        );
        assert!(stats.loads > 0);
        assert!(stats.l1_hits + stats.l2_hits + stats.mem_accesses > 0);
        assert!(stats.mem_accesses > 0, "art must miss to memory");
    }

    #[test]
    fn slow_lane_keeps_small_queues_from_clogging() {
        // A KILO-style configuration: small issue queues, big window, slow
        // lane enabled. It should clearly beat the same small queues without
        // a slow lane on a memory-bound FP workload.
        let mem = MemoryHierarchyConfig::mem_400();
        let mut params = CoreParams::from(&BaselineConfig::r10_64());
        params.window = 1024;
        params.int_iq = 72;
        params.fp_iq = 72;
        params.slow_lane = Some(1024);
        let hierarchy = MemoryHierarchy::new(mem.clone()).unwrap();
        let mut core = OooCore::new(params, hierarchy);
        let mut trace = TraceGenerator::new(Benchmark::Swim, 1);
        let with_lane = core.run(&mut trace, 10_000);

        let mut small = BaselineConfig::r10_64();
        small.rob_capacity = 1024;
        small.int_iq_capacity = 72;
        small.fp_iq_capacity = 72;
        let without_lane = run(&small, mem, Benchmark::Swim, 10_000);
        assert!(
            with_lane.ipc() >= without_lane.ipc(),
            "slow lane must not hurt: with={} without={}",
            with_lane.ipc(),
            without_lane.ipc()
        );
    }

    #[test]
    fn event_clock_is_bit_identical_to_single_stepping() {
        let mem = MemoryHierarchyConfig::mem_1000();
        let run_mode = |single_step: bool| {
            let hierarchy = MemoryHierarchy::new(mem.clone()).unwrap();
            let mut core = OooCore::from_baseline(&BaselineConfig::r10_64(), hierarchy);
            core.set_single_step(single_step);
            let mut trace = TraceGenerator::new(Benchmark::Swim, 1);
            core.run(&mut trace, 8_000)
        };
        let stepped = run_mode(true);
        let skipped = run_mode(false);
        assert_eq!(
            stepped.to_kv(),
            skipped.to_kv(),
            "skipping must be observationally pure"
        );
        assert_eq!(stepped.cycles_skipped, 0);
        assert_eq!(stepped.ticks_executed, stepped.cycles);
        assert!(
            skipped.cycles_skipped > 0,
            "a memory-bound small-window run must quiesce"
        );
        assert_eq!(
            skipped.ticks_executed + skipped.cycles_skipped,
            skipped.cycles,
            "every simulated cycle is either ticked or skipped"
        );
    }

    #[test]
    fn next_event_reports_pending_completions() {
        let hierarchy = MemoryHierarchy::new(MemoryHierarchyConfig::mem_400()).unwrap();
        let mut core = OooCore::from_baseline(&BaselineConfig::r10_64(), hierarchy);
        assert_eq!(core.next_event(), None, "an empty machine has no events");
        let mut trace = TraceGenerator::new(Benchmark::Swim, 1);
        // Fetch → dispatch → issue takes a few cycles; once something is
        // executing, a completion event must be pending.
        for _ in 0..20 {
            core.tick(&mut trace);
            if let Some(event) = core.next_event() {
                assert!(event > core.cycle());
                return;
            }
        }
        panic!("no event became pending while filling the pipeline");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(
            &BaselineConfig::r10_64(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Vpr,
            5_000,
        );
        let b = run(
            &BaselineConfig::r10_64(),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Vpr,
            5_000,
        );
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.branch_mispredicts, b.branch_mispredicts);
    }
}
