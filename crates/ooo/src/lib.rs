//! R10000-style out-of-order baseline core and shared pipeline components.
//!
//! The paper compares the D-KIP against conventional out-of-order processors
//! (`R10-64`, `R10-256`, the idealised cores of Figures 1–3) and builds its
//! own Cache Processor out of the same structures. This crate provides:
//!
//! * the reusable pipeline components — [`rob::Rob`], [`iq::IssueQueue`],
//!   [`lsq::Lsq`], [`fu::FunctionalUnits`] and [`fu::MemPorts`] — which are
//!   also used by the D-KIP's Cache Processor (`dkip-core`) and the
//!   traditional KILO baseline (`dkip-kilo`),
//! * [`core::OooCore`], a trace-driven cycle-level out-of-order pipeline
//!   with branch prediction, dependency-driven wakeup, functional-unit and
//!   memory-port arbitration, store-to-load forwarding and in-order commit,
//! * an optional *slow lane* (WIB/SLIQ-style buffer) in the same engine,
//!   used by the KILO-1024 baseline,
//! * [`core::run_baseline`], the one-call entry point used by the experiment
//!   drivers.
//!
//! # Example
//!
//! ```
//! use dkip_model::config::{BaselineConfig, MemoryHierarchyConfig};
//! use dkip_ooo::run_baseline;
//! use dkip_trace::Benchmark;
//!
//! let stats = run_baseline(
//!     &BaselineConfig::r10_64(),
//!     &MemoryHierarchyConfig::mem_400(),
//!     Benchmark::Mesa,
//!     5_000,
//!     1,
//! );
//! assert!(stats.ipc() > 0.0 && stats.ipc() <= 4.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod core;
pub mod fu;
pub mod iq;
pub mod lsq;
pub mod rob;

pub use crate::core::{
    run_baseline, run_baseline_stream, run_baseline_stream_probed, CoreParams, CoreSnapshot,
    OooCore, LONG_LATENCY_THRESHOLD,
};
pub use fu::{FunctionalUnits, MemPorts};
pub use iq::IssueQueue;
pub use lsq::Lsq;
pub use rob::{Rob, RobEntry};
