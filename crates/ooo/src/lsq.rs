//! The load/store queue: occupancy tracking and store-to-load forwarding.
//!
//! The paper treats the LSQ as an orthogonal, pluggable component (Section
//! 3.3) and assumes one of the published scalable designs. This model keeps
//! the timing-relevant behaviour: a bounded number of in-flight memory
//! operations, a bounded number of memory ports per cycle (enforced by
//! [`crate::fu::MemPorts`]), and store-to-load forwarding by address.
//!
//! Forwarding lookups are the per-load hot path, so pending stores are
//! indexed *by 8-byte slot*: each slot keeps its in-flight store sequence
//! numbers in ascending (program) order, which makes "does any older store
//! to this slot exist?" a two-step hash probe instead of a scan over the
//! whole store queue (the D-KIP's Address Processor LSQ holds 512 entries).
//! Emptied slot lists are recycled through a pool, so the steady state
//! allocates nothing.

use dkip_model::{fast_map_with_capacity, FastHashMap};

/// Latency of a load satisfied by store-to-load forwarding.
pub const FORWARD_LATENCY: u64 = 2;

/// A load/store queue.
#[derive(Debug, Clone, Default)]
pub struct Lsq {
    capacity: usize,
    occupancy: usize,
    /// In-flight (dispatched, not yet committed) stores: seq → 8-byte
    /// aligned slot (consulted at retire to unindex the store).
    store_slots: FastHashMap<u64, u64>,
    /// Slot → in-flight store seqs, ascending (stores dispatch in program
    /// order).
    stores_by_slot: FastHashMap<u64, Vec<u64>>,
    /// Recycled slot-list spines.
    spine_pool: Vec<Vec<u64>>,
}

impl Lsq {
    /// Creates a queue with room for `capacity` in-flight memory
    /// operations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LSQ capacity must be positive");
        Lsq {
            capacity,
            occupancy: 0,
            store_slots: fast_map_with_capacity(capacity),
            stores_by_slot: fast_map_with_capacity(capacity),
            spine_pool: Vec::new(),
        }
    }

    /// Whether another memory operation can be dispatched.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.occupancy < self.capacity
    }

    /// Current number of in-flight memory operations.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn slot(addr: u64) -> u64 {
        addr & !7
    }

    /// Registers a dispatched load.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full.
    pub fn dispatch_load(&mut self, _seq: u64) {
        assert!(self.has_space(), "LSQ overflow");
        self.occupancy += 1;
    }

    /// Registers a dispatched store and remembers its address for
    /// forwarding.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full.
    pub fn dispatch_store(&mut self, seq: u64, addr: u64) {
        assert!(self.has_space(), "LSQ overflow");
        self.occupancy += 1;
        let slot = Self::slot(addr);
        self.store_slots.insert(seq, slot);
        self.stores_by_slot
            .entry(slot)
            .or_insert_with(|| self.spine_pool.pop().unwrap_or_default())
            .push(seq);
    }

    /// Whether a load with sequence number `seq` and address `addr` can be
    /// satisfied by forwarding from an older in-flight store.
    #[must_use]
    pub fn forwards_from_store(&self, seq: u64, addr: u64) -> bool {
        // Slot lists are ascending, so "any in-flight store older than the
        // load" is just a check against the oldest entry.
        self.stores_by_slot
            .get(&Self::slot(addr))
            .and_then(|stores| stores.first())
            .is_some_and(|&oldest| oldest < seq)
    }

    /// Releases the entry of a committed load.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    pub fn retire_load(&mut self, _seq: u64) {
        assert!(self.occupancy > 0, "LSQ underflow");
        self.occupancy -= 1;
    }

    /// Releases the entry of a committed store.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    pub fn retire_store(&mut self, seq: u64) {
        assert!(self.occupancy > 0, "LSQ underflow");
        self.occupancy -= 1;
        let Some(slot) = self.store_slots.remove(&seq) else {
            return;
        };
        let Some(stores) = self.stores_by_slot.get_mut(&slot) else {
            return;
        };
        // Stores retire in program order, so the match is (almost always)
        // the front entry.
        if let Some(idx) = stores.iter().position(|&s| s == seq) {
            stores.remove(idx);
        }
        if stores.is_empty() {
            let spine = self.stores_by_slot.remove(&slot).expect("slot list exists");
            if spine.capacity() > 0 {
                self.spine_pool.push(spine);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_tracks_dispatch_and_retire() {
        let mut lsq = Lsq::new(4);
        lsq.dispatch_load(1);
        lsq.dispatch_store(2, 0x100);
        assert_eq!(lsq.occupancy(), 2);
        lsq.retire_load(1);
        lsq.retire_store(2);
        assert_eq!(lsq.occupancy(), 0);
        assert!(lsq.has_space());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut lsq = Lsq::new(2);
        lsq.dispatch_load(1);
        lsq.dispatch_load(2);
        assert!(!lsq.has_space());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn dispatch_past_capacity_panics() {
        let mut lsq = Lsq::new(1);
        lsq.dispatch_load(1);
        lsq.dispatch_load(2);
    }

    #[test]
    fn loads_forward_from_older_stores_to_the_same_slot() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch_store(5, 0x1000);
        assert!(lsq.forwards_from_store(7, 0x1004), "same 8-byte slot");
        assert!(!lsq.forwards_from_store(7, 0x1008), "different slot");
        assert!(
            !lsq.forwards_from_store(3, 0x1000),
            "younger stores do not forward"
        );
    }

    #[test]
    fn retired_stores_no_longer_forward() {
        let mut lsq = Lsq::new(8);
        lsq.dispatch_store(5, 0x2000);
        lsq.retire_store(5);
        assert!(!lsq.forwards_from_store(9, 0x2000));
    }
}
