# 3x3 box blur over an n x n int64 grid (interior cells only), then
# checksum of the output grid -> a0. The per-pixel divide exercises the
# multiply/divide unit; the 2-D neighbourhood reads exercise spatial
# locality.
#
# Inputs from the harness:
#   a0 = data base (input grid; output grid follows contiguously)
#   a1 = n (grid edge)
#
# Initialisation: in[y][x] = (7*x + 13*y) & 63. Memory starts zeroed, so
# the untouched border of the output grid contributes 0 to the checksum.

setup:
        mul     t0, a1, a1
        slli    t0, t0, 3
        add     t6, a0, t0          # out base
        mul     t5, a1, a1          # total cells

        li      t0, 0               # init: idx
init:
        bge     t0, t5, init_done
        rem     t1, t0, a1          # x
        div     t2, t0, a1          # y
        slli    s0, t1, 3
        sub     s0, s0, t1          # 7*x
        slli    s1, t2, 4
        sub     s1, s1, t2
        sub     s1, s1, t2
        sub     s1, s1, t2          # 13*y
        add     s0, s0, s1
        andi    s0, s0, 63
        slli    s1, t0, 3
        add     s1, a0, s1
        sd      s0, 0(s1)
        addi    t0, t0, 1
        j       init
init_done:

        li      s2, 1               # y
y_loop:
        addi    t0, a1, -1
        bge     s2, t0, blur_done
        li      s3, 1               # x
x_loop:
        addi    t0, a1, -1
        bge     s3, t0, y_next
        li      s4, 0               # acc
        li      s5, -1              # dy
dy_loop:
        li      t0, 2
        bge     s5, t0, dy_done
        li      s6, -1              # dx
dx_loop:
        li      t0, 2
        bge     s6, t0, dx_done
        add     t1, s2, s5          # y + dy
        mul     t2, t1, a1
        add     t3, s3, s6          # x + dx
        add     t2, t2, t3
        slli    t2, t2, 3
        add     t2, a0, t2
        ld      t4, 0(t2)
        add     s4, s4, t4
        addi    s6, s6, 1
        j       dx_loop
dx_done:
        addi    s5, s5, 1
        j       dy_loop
dy_done:
        li      t0, 9
        div     s4, s4, t0
        mul     t1, s2, a1
        add     t1, t1, s3
        slli    t1, t1, 3
        add     t1, t6, t1
        sd      s4, 0(t1)
        addi    s3, s3, 1
        j       x_loop
y_next:
        addi    s2, s2, 1
        j       y_loop
blur_done:

        li      t0, 0               # checksum out grid
        li      s0, 0
sum:
        bge     t0, t5, sum_done
        slli    t1, t0, 3
        add     t1, t6, t1
        ld      t2, 0(t1)
        add     s0, s0, t2
        addi    t0, t0, 1
        j       sum
sum_done:
        mv      a0, s0
        ecall
