# Recursive Fibonacci: a0 = fib(n). Exercises the call/return stack
# (jal/jalr with ra) and short data-dependent control flow.
#
# Inputs from the harness:
#   a1 = n

main:
        mv      a0, a1
        call    fib
        ecall

fib:                                # a0 = fib(a0)
        li      t0, 2
        blt     a0, t0, fib_base    # fib(0) = 0, fib(1) = 1
        addi    sp, sp, -16
        sd      ra, 8(sp)
        sd      a0, 0(sp)           # save n
        addi    a0, a0, -1
        call    fib                 # a0 = fib(n-1)
        ld      t1, 0(sp)           # t1 = n
        sd      a0, 0(sp)           # save fib(n-1)
        addi    a0, t1, -2
        call    fib                 # a0 = fib(n-2)
        ld      t1, 0(sp)           # t1 = fib(n-1)
        add     a0, a0, t1
        ld      ra, 8(sp)
        addi    sp, sp, 16
        ret
fib_base:
        ret
