# Streaming copy: initialise a source array of n doublewords, copy it to a
# destination array, checksum the destination -> a0. Swim-like strided
# streaming with minimal reuse.
#
# Inputs from the harness:
#   a0 = data base (source array; destination follows contiguously)
#   a1 = n (doublewords)

setup:
        slli    t0, a1, 3
        add     t1, a0, t0          # dst base

        li      t2, 0               # init: src[i] = 3*i + 1
init:
        bge     t2, a1, init_done
        slli    t3, t2, 3
        add     t3, a0, t3
        slli    t4, t2, 1
        add     t4, t4, t2          # 3*i
        addi    t4, t4, 1
        sd      t4, 0(t3)
        addi    t2, t2, 1
        j       init
init_done:

        li      t2, 0               # copy
copy:
        bge     t2, a1, copy_done
        slli    t3, t2, 3
        add     t4, a0, t3
        ld      t5, 0(t4)
        add     t4, t1, t3
        sd      t5, 0(t4)
        addi    t2, t2, 1
        j       copy
copy_done:

        li      t2, 0               # checksum dst
        li      t6, 0
sum:
        bge     t2, a1, sum_done
        slli    t3, t2, 3
        add     t3, t1, t3
        ld      t4, 0(t3)
        add     t6, t6, t4
        addi    t2, t2, 1
        j       sum
sum_done:
        mv      a0, t6
        ecall
