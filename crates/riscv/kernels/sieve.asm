# Sieve of Eratosthenes over a byte array; prime count -> a0.
#
# Inputs from the harness:
#   a0 = data base (one flag byte per candidate)
#   a1 = limit N (primes counted in [2, N))

clear:
        li      t0, 0
clear_loop:
        bge     t0, a1, clear_done
        add     t1, a0, t0
        sb      zero, 0(t1)
        addi    t0, t0, 1
        j       clear_loop
clear_done:

        li      t0, 2               # p
outer:
        mul     t1, t0, t0          # p*p
        bge     t1, a1, count
        add     t2, a0, t0
        lb      t3, 0(t2)
        bnez    t3, next_p          # p already composite
        li      t4, 1
mark:
        bge     t1, a1, next_p
        add     t2, a0, t1
        sb      t4, 0(t2)
        add     t1, t1, t0
        j       mark
next_p:
        addi    t0, t0, 1
        j       outer

count:
        li      t0, 2
        li      t1, 0               # prime count
count_loop:
        bge     t0, a1, count_done
        add     t2, a0, t0
        lb      t3, 0(t2)
        bnez    t3, composite
        addi    t1, t1, 1
composite:
        addi    t0, t0, 1
        j       count_loop
count_done:
        mv      a0, t1
        ecall
