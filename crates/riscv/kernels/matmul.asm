# Dense int64 matrix multiply: c = a * b, then checksum(c) -> a0.
#
# Inputs from the harness:
#   a0 = data base (matrix a; b and c follow contiguously)
#   a1 = dim (matrices are dim x dim)
#
# Initialisation is done in-program so the kernel is self-contained:
#   a[n] = n            (n = flat index)
#   b[n] = (n & 7) + 1

matmul:
        mul     t0, a1, a1          # cells per matrix
        slli    t0, t0, 3           # bytes per matrix
        add     t1, a0, t0          # b base
        add     t2, t1, t0          # c base

        mul     t3, a1, a1          # init: cells to fill
        mv      t4, a0              # cursor into a
        mv      t5, t1              # cursor into b
        li      t6, 0               # n
init:
        bge     t6, t3, init_done
        sd      t6, 0(t4)
        andi    s0, t6, 7
        addi    s0, s0, 1
        sd      s0, 0(t5)
        addi    t4, t4, 8
        addi    t5, t5, 8
        addi    t6, t6, 1
        j       init
init_done:

        li      s0, 0               # i
loop_i:
        bge     s0, a1, mm_done
        li      s1, 0               # j
loop_j:
        bge     s1, a1, i_next
        li      s2, 0               # k
        li      s3, 0               # acc
loop_k:
        bge     s2, a1, k_done
        mul     s4, s0, a1
        add     s4, s4, s2
        slli    s4, s4, 3
        add     s4, a0, s4          # &a[i][k]
        ld      s5, 0(s4)
        mul     s6, s2, a1
        add     s6, s6, s1
        slli    s6, s6, 3
        add     s6, t1, s6          # &b[k][j]
        ld      s7, 0(s6)
        mul     s5, s5, s7
        add     s3, s3, s5
        addi    s2, s2, 1
        j       loop_k
k_done:
        mul     s4, s0, a1
        add     s4, s4, s1
        slli    s4, s4, 3
        add     s4, t2, s4          # &c[i][j]
        sd      s3, 0(s4)
        addi    s1, s1, 1
        j       loop_j
i_next:
        addi    s0, s0, 1
        j       loop_i
mm_done:

        mul     t3, a1, a1          # checksum c
        li      t4, 0               # n
        li      t5, 0               # sum
sum_loop:
        bge     t4, t3, sum_done
        slli    s0, t4, 3
        add     s0, t2, s0
        ld      s1, 0(s0)
        add     t5, t5, s1
        addi    t4, t4, 1
        j       sum_loop
sum_done:
        mv      a0, t5
        ecall
