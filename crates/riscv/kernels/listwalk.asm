# Pointer-chasing linked-list traversal (mcf-like dependence chains).
#
# Inputs from the harness:
#   a0 = data base (node array)
#   a1 = node count n
#   a2 = walk steps
#
# Nodes are 16 bytes: [next: *node, value: i64]. Node i links to node
# (i + 7) mod n, so for n coprime with 7 the walk covers a long cycle and
# every step's load address depends on the previous step's loaded value.

build:
        li      t0, 0               # i
build_loop:
        bge     t0, a1, build_done
        slli    t1, t0, 4
        add     t1, a0, t1          # &node[i]
        addi    t2, t0, 7
        rem     t2, t2, a1          # (i + 7) mod n
        slli    t2, t2, 4
        add     t2, a0, t2          # &node[(i+7) mod n]
        sd      t2, 0(t1)           # node[i].next
        sd      t0, 8(t1)           # node[i].value = i
        addi    t0, t0, 1
        j       build_loop
build_done:

        mv      t0, a0              # cursor
        li      t1, 0               # sum
        li      t2, 0               # step
walk:
        bge     t2, a2, walk_done
        ld      t3, 8(t0)           # value
        add     t1, t1, t3
        ld      t0, 0(t0)           # chase the next pointer
        addi    t2, t2, 1
        j       walk
walk_done:
        mv      a0, t1
        ecall
