//! Directed edge-case tests for the RV64IM emulator, pinned against the
//! ISA manual (RISC-V Unprivileged ISA, chapters "M" and RV64I):
//!
//! * division corner cases (M-extension table 7.1): division by zero and
//!   the lone signed-overflow case, for both 64-bit and `*w` forms;
//! * the RV64I rule that every `*w` instruction operates on the low 32
//!   bits and sign-extends its 32-bit result, including the 5-bit (not
//!   6-bit) shift-amount masking of `sllw`/`srlw`/`sraw`;
//! * misaligned and memory-boundary loads/stores in the flat 1 MiB memory
//!   (the emulator allows misaligned accesses; crossing the top of memory
//!   is a panic, not wraparound).
//!
//! These pin exactly the behaviours a differential-fuzz campaign relies
//! on: if the oracle itself mis-implements an edge case, every core family
//! inherits the bug and the fuzzer goes blind to it.

use dkip_riscv::{assemble, Emulator, Reg, CODE_BASE, DATA_BASE, MEM_SIZE};

/// Assembles and runs `src` to its halting `ecall`.
fn run(src: &str) -> Emulator {
    let prog = assemble(src, CODE_BASE).expect("test program must assemble");
    let mut emu = Emulator::new(&prog);
    emu.run_to_halt();
    assert!(emu.ran_to_completion(), "test program must reach ecall");
    emu
}

#[test]
fn division_by_zero_follows_the_m_extension_table() {
    // M-extension: x/0 has quotient all-ones and remainder the dividend —
    // no trap.
    let emu = run("li a0, 13\n\
                   li a1, 0\n\
                   div a2, a0, a1\n\
                   divu a3, a0, a1\n\
                   rem a4, a0, a1\n\
                   remu a5, a0, a1\n\
                   ecall");
    assert_eq!(emu.reg(Reg::A2), u64::MAX, "div x/0 = -1");
    assert_eq!(emu.reg(Reg::A3), u64::MAX, "divu x/0 = 2^64-1");
    assert_eq!(emu.reg(Reg::A4), 13, "rem x/0 = x");
    assert_eq!(emu.reg(Reg::A5), 13, "remu x/0 = x");

    let emu = run("li a0, -13\n\
                   li a1, 0\n\
                   rem a2, a0, a1\n\
                   ecall");
    assert_eq!(emu.reg(Reg::A2), -13i64 as u64, "rem keeps the sign of x");
}

#[test]
fn signed_division_overflow_wraps_to_the_dividend() {
    // The one overflow case: i64::MIN / -1 cannot be represented; the
    // quotient is defined as i64::MIN and the remainder as 0.
    let emu = run("li a0, 1\n\
                   slli a0, a0, 63\n\
                   li a1, -1\n\
                   div a2, a0, a1\n\
                   rem a3, a0, a1\n\
                   ecall");
    assert_eq!(emu.reg(Reg::A2), i64::MIN as u64, "MIN / -1 = MIN");
    assert_eq!(emu.reg(Reg::A3), 0, "MIN rem -1 = 0");
}

#[test]
fn word_division_edge_cases_sign_extend_their_32_bit_results() {
    // divw/remw operate on the low 32 bits: division by zero and the
    // i32::MIN / -1 overflow both produce sign-extended 32-bit results.
    let emu = run("li a0, 1\n\
                   slliw a0, a0, 31\n\
                   li a1, 0\n\
                   divw a2, a0, a1\n\
                   remw a3, a0, a1\n\
                   li a4, -1\n\
                   divw a5, a0, a4\n\
                   remw a6, a0, a4\n\
                   ecall");
    assert_eq!(
        emu.reg(Reg::A0),
        i32::MIN as i64 as u64,
        "slliw sign-extends"
    );
    assert_eq!(emu.reg(Reg::A2), u64::MAX, "divw x/0 = -1 (sign-extended)");
    assert_eq!(
        emu.reg(Reg::A3),
        i32::MIN as i64 as u64,
        "remw x/0 = sext(x[31:0])"
    );
    assert_eq!(
        emu.reg(Reg::A5),
        i32::MIN as i64 as u64,
        "i32::MIN / -1 = i32::MIN, sign-extended"
    );
    assert_eq!(emu.reg(Reg::A6), 0, "i32::MIN remw -1 = 0");
}

#[test]
fn word_arithmetic_sign_extends_from_bit_31() {
    let emu = run("li a0, 0x7fffffff\n\
                   li a1, 1\n\
                   addw a2, a0, a1\n\
                   addiw a3, a0, 1\n\
                   sub a4, zero, a1\n\
                   subw a4, a4, a1\n\
                   li a5, 0x10000\n\
                   mulw a6, a5, a5\n\
                   ecall");
    let wrapped = 0x8000_0000u32 as i32 as i64 as u64;
    assert_eq!(
        emu.reg(Reg::A2),
        wrapped,
        "addw wraps at 2^31 and sign-extends"
    );
    assert_eq!(emu.reg(Reg::A3), wrapped, "addiw matches addw");
    assert_eq!(
        emu.reg(Reg::A4),
        -2i64 as u64,
        "subw on a negative stays negative"
    );
    assert_eq!(emu.reg(Reg::A6), 0, "mulw keeps only the low 32 bits");
}

#[test]
fn word_shifts_mask_the_amount_to_five_bits() {
    // RV64I: sllw/srlw/sraw take shamt from rs2[4:0] (not [5:0] as the
    // 64-bit shifts do), so a shift by 33 is a shift by 1.
    let emu = run("li a0, 1\n\
                   li a1, 33\n\
                   sllw a2, a0, a1\n\
                   sll a3, a0, a1\n\
                   li a4, 65\n\
                   sll a5, a0, a4\n\
                   li a6, -1\n\
                   srlw a7, a6, a1\n\
                   li t0, -2\n\
                   sraw t1, t0, a1\n\
                   ecall");
    assert_eq!(emu.reg(Reg::A2), 2, "sllw shamt 33 acts as 1");
    assert_eq!(emu.reg(Reg::A3), 1 << 33, "sll shamt 33 really shifts 33");
    assert_eq!(emu.reg(Reg::A5), 2, "sll shamt 65 acts as 1 (6-bit mask)");
    assert_eq!(
        emu.reg(Reg::A7),
        0x7fff_ffff,
        "srlw shifts the 32-bit value logically, then sign-extends (bit 31 is 0)"
    );
    assert_eq!(emu.reg(Reg::T1), -1i64 as u64, "sraw keeps the sign bit");
}

#[test]
fn misaligned_loads_read_little_endian_bytes() {
    // The flat memory allows misaligned accesses; a dword store followed
    // by loads at odd offsets must see the little-endian byte lanes.
    let emu = run(&format!(
        "li s0, {DATA_BASE}\n\
         li t0, 0x01020304\n\
         slli t0, t0, 32\n\
         li t1, 0x05060708\n\
         or t0, t0, t1\n\
         sd t0, 0(s0)\n\
         lw a0, 1(s0)\n\
         lh a1, 3(s0)\n\
         lbu a2, 7(s0)\n\
         lhu a3, 6(s0)\n\
         ecall"
    ));
    // Bytes at s0+0.. are 08 07 06 05 04 03 02 01.
    assert_eq!(emu.reg(Reg::A0), 0x0405_0607, "lw at +1");
    assert_eq!(emu.reg(Reg::A1), 0x0405, "lh at +3");
    assert_eq!(emu.reg(Reg::A2), 0x01, "lbu at +7");
    assert_eq!(emu.reg(Reg::A3), 0x0102, "lhu at +6");
}

#[test]
fn negative_bytes_sign_extend_through_every_load_width() {
    let emu = run(&format!(
        "li s0, {DATA_BASE}\n\
         li t0, -1\n\
         sw t0, 0(s0)\n\
         lb a0, 3(s0)\n\
         lh a1, 2(s0)\n\
         lw a2, 0(s0)\n\
         lbu a3, 3(s0)\n\
         lhu a4, 2(s0)\n\
         lwu a5, 0(s0)\n\
         ecall"
    ));
    assert_eq!(emu.reg(Reg::A0), u64::MAX, "lb sign-extends");
    assert_eq!(emu.reg(Reg::A1), u64::MAX, "lh sign-extends");
    assert_eq!(emu.reg(Reg::A2), u64::MAX, "lw sign-extends");
    assert_eq!(emu.reg(Reg::A3), 0xff, "lbu zero-extends");
    assert_eq!(emu.reg(Reg::A4), 0xffff, "lhu zero-extends");
    assert_eq!(emu.reg(Reg::A5), 0xffff_ffff, "lwu zero-extends");
}

#[test]
fn accesses_up_to_the_top_of_memory_are_in_bounds() {
    let top_dword = MEM_SIZE - 8;
    let emu = run(&format!(
        "li s0, {top_dword}\n\
         li t0, 0x5a\n\
         sd t0, 0(s0)\n\
         ld a0, 0(s0)\n\
         sb t0, 7(s0)\n\
         lbu a1, 7(s0)\n\
         ecall"
    ));
    assert_eq!(emu.reg(Reg::A1), 0x5a, "byte at MEM_SIZE-1 is addressable");
    assert_eq!(
        emu.reg(Reg::A0),
        0x5a,
        "dword at MEM_SIZE-8 reads back what was stored"
    );
}

#[test]
#[should_panic(expected = "outside")]
fn a_load_crossing_the_top_of_memory_panics() {
    // A dword starting 7 bytes under the top would read past MEM_SIZE;
    // the emulator treats that as a model bug, not wraparound.
    let top = MEM_SIZE - 7;
    run(&format!("li s0, {top}\nld a0, 0(s0)\necall"));
}
