//! Seeded generation of valid, terminating RV64IM programs for
//! differential fuzzing.
//!
//! [`GenConfig::generate`] turns a seed plus a handful of shape parameters
//! into an assembly source string that is **valid by construction** (it
//! always assembles at [`CODE_BASE`]) and **terminating by construction**
//! (the emulator reaches `ecall` within [`GeneratedProgram::dynamic_bound`]
//! retired instructions). The differential-fuzz harness feeds these
//! programs to the functional emulator and all three core families and
//! asserts they commit identical architectural state — see
//! `dkip_sim::fuzz`.
//!
//! # Structure of a generated program
//!
//! A program is a prologue, `blocks` basic blocks `b0..b{n-1}` laid out in
//! order, an `exit: ecall` block, and up to [`GenConfig::leaves`] callable
//! leaf functions placed after the exit:
//!
//! * the prologue pins the two scratch-region base registers (`s0`, `s1`),
//!   initialises every backward-loop counter register, and seeds the
//!   general register pool with random constants;
//! * each block body is straight-line: ALU operations (including the full
//!   div/rem family — their RV64M semantics are total, so any operands are
//!   legal), loads/stores, balanced `sp` push/pop pairs and `call`s into
//!   leaf functions;
//! * each block ends with a terminator: fallthrough, a forward `j`, a
//!   forward conditional branch, or a bounded backward loop edge.
//!
//! # Invariants (what makes every program valid and terminating)
//!
//! 1. **Register discipline.** Random instructions write only the 15-entry
//!    general pool (`t0`–`t2`, `a0`–`a7`, `t3`–`t6`). The base registers
//!    `s0`/`s1`, the loop counters (`s2`…), `ra` and `sp` are never
//!    destinations of pool instructions, so address bases, trip counters
//!    and the call/return linkage cannot be clobbered. Any register may be
//!    *read*.
//! 2. **Confined memory.** Every load/store address is `s0`- or
//!    `s1`-relative with an offset such that the access stays inside the
//!    4 KiB scratch window at [`DATA_BASE`]; stack traffic uses `sp`-relative
//!    offsets inside a push/pop pair. No access can leave the 1 MiB flat
//!    memory, so the emulator's bounds panic is unreachable.
//! 3. **Balanced `sp`.** Stack traffic is emitted only as an atomic
//!    `addi sp,-16; sd; ld; addi sp,+16` quadruple inside one block body,
//!    so `sp` has its initial value at every block boundary and at `ecall`.
//! 4. **Forward-only control flow, except bounded loops.** `j` and
//!    conditional branches only target *later* block labels (or `exit`).
//!    The only backward edges are loop terminators of the form
//!    `addi ck,ck,-1; bgtz ck, b<target>` where `ck` is a dedicated counter
//!    register initialised to a positive trip count in the prologue and
//!    decremented nowhere else. Each counter decreases monotonically, so
//!    each backward edge is taken fewer than `trip` times over the whole
//!    run, regardless of loop nesting.
//! 5. **Calls terminate.** `call` targets are leaf functions: straight-line
//!    ALU bodies ending in `ret`. Leaves write only pool registers and
//!    never call, so `ra` is live across the whole leaf.
//!
//! From (4) and (5): execution between two taken backward edges retires at
//! most one pass over the static program (forward progress plus bounded
//! leaf detours), and at most `sum of trips` backward edges are ever taken,
//! which yields the conservative bound [`GeneratedProgram::dynamic_bound`].

use crate::asm::{assemble, Program};
use crate::emu::{Emulator, CODE_BASE, DATA_BASE};
use crate::isa::{AluImmOp, AluOp, BranchCond, Inst, MemWidth, Reg};
use std::fmt::Write as _;

/// Size in bytes of each base register's scratch window. `s0` points at
/// [`DATA_BASE`], `s1` at `DATA_BASE + SCRATCH_WINDOW`; offsets stay below
/// the window size, confining all data accesses to 2 × 2 KiB.
pub const SCRATCH_WINDOW: u64 = 2048;

/// The general register pool random instructions may write.
pub const POOL: [Reg; 15] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::A4,
    Reg::A5,
    Reg::A6,
    Reg::A7,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
];

/// Loop-counter registers, allocated in order (`s2`–`s9`): at most
/// [`MAX_LOOPS`] backward edges per program.
const COUNTERS: [Reg; 8] = [
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
    Reg::S8,
    Reg::S9,
];

/// Maximum number of backward loop edges in one program.
pub const MAX_LOOPS: usize = COUNTERS.len();

/// Shape parameters for one generated program. Everything is derived
/// deterministically from `seed` and these knobs, which is what makes
/// shrinking-lite possible: lowering a knob at a fixed seed yields a
/// smaller program of the same character.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GenConfig {
    /// RNG seed; equal configs generate bit-identical sources.
    pub seed: u64,
    /// Number of basic blocks (`0` generates the bare `ecall` program).
    pub blocks: u32,
    /// Maximum straight-line instructions per block body.
    pub block_len: u32,
    /// Maximum trip count of each backward loop (`0` disables loops).
    pub max_trip: u32,
    /// Number of callable leaf functions (`0` disables calls).
    pub leaves: u32,
}

impl GenConfig {
    /// A mid-sized default shape: a handful of blocks with loops, calls,
    /// memory traffic and stack pairs all enabled.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        GenConfig {
            seed,
            blocks: 8,
            block_len: 12,
            max_trip: 24,
            leaves: 2,
        }
    }

    /// Generates the program for this configuration.
    #[must_use]
    pub fn generate(&self) -> GeneratedProgram {
        Generator::new(*self).emit()
    }
}

/// A generated program: the assembly source plus the metadata the fuzz
/// harness needs (a termination bound and a display name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedProgram {
    /// The configuration that produced this program.
    pub cfg: GenConfig,
    /// The assembly source (always assembles at [`CODE_BASE`]).
    pub source: String,
    /// Static instruction count after pseudo-instruction expansion.
    pub static_len: u64,
    /// Conservative upper bound on retired instructions: the emulator
    /// must reach `ecall` within this many steps (see the module docs for
    /// the argument).
    pub dynamic_bound: u64,
}

impl GeneratedProgram {
    /// Display name, `gen/<seed>` (hex).
    #[must_use]
    pub fn name(&self) -> String {
        format!("gen/{:#x}", self.cfg.seed)
    }

    /// Assembles the source at [`CODE_BASE`].
    ///
    /// # Panics
    ///
    /// Panics if the source does not assemble — a generator bug by
    /// definition (validity invariant 1 in the module docs), pinned by the
    /// `generated_programs_always_assemble` proptest.
    #[must_use]
    pub fn program(&self) -> Program {
        match assemble(&self.source, CODE_BASE) {
            Ok(program) => program,
            Err(err) => panic!("generated program {} does not assemble: {err}", self.name()),
        }
    }

    /// A ready-to-run emulator with the step backstop set to
    /// [`GeneratedProgram::dynamic_bound`], so a termination-invariant
    /// violation surfaces as `!ran_to_completion()` instead of a 50M-step
    /// spin.
    #[must_use]
    pub fn emulator(&self) -> Emulator {
        let mut emu = Emulator::new(&self.program());
        emu.set_step_limit(self.dynamic_bound);
        emu
    }
}

/// Per-block terminator plan, decided before emission so loop counters can
/// be initialised in the prologue.
#[derive(Debug, Clone, Copy)]
enum Term {
    /// Fall through to the next block.
    Fall,
    /// Unconditional forward jump to block index (== `blocks` means `exit`).
    Jump(u32),
    /// Conditional forward branch; not-taken falls through.
    CondForward(BranchCond, u32),
    /// Bounded backward edge: decrement `counter`, branch to `target`
    /// while positive. The prologue initialisation value (trip count) is
    /// recorded in `Generator::loops`, keyed by `counter`.
    LoopBack { target: u32, counter: Reg },
}

/// Deterministic SplitMix64 driving generation (same permutation family as
/// the vendored proptest shim, seeded directly).
#[derive(Debug)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Pre-mix so small consecutive seeds diverge immediately.
        let mut rng = Rng(seed ^ 0x6a09_e667_f3bc_c909);
        rng.next();
        rng
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform pick from a non-empty slice.
    fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[self.below(items.len() as u64) as usize]
    }

    /// True with probability `pct`%.
    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// Uniform `i32` in `lo..=hi`.
    fn imm(&mut self, lo: i32, hi: i32) -> i32 {
        lo + self.below((i64::from(hi) - i64::from(lo) + 1) as u64) as i32
    }
}

struct Generator {
    cfg: GenConfig,
    rng: Rng,
    src: String,
    /// `(counter, trip)` pairs allocated to backward edges, in order.
    loops: Vec<(Reg, u32)>,
    /// Static instructions emitted so far (post pseudo-expansion; `li` of a
    /// 32-bit constant may expand to 2, counted as 2).
    static_len: u64,
}

impl Generator {
    fn new(cfg: GenConfig) -> Self {
        Generator {
            rng: Rng::new(cfg.seed),
            cfg,
            src: String::new(),
            loops: Vec::new(),
            static_len: 0,
        }
    }

    fn line(&mut self, text: &str, static_cost: u64) {
        let _ = writeln!(self.src, "  {text}");
        self.static_len += static_cost;
    }

    fn inst(&mut self, inst: &Inst) {
        self.line(&inst.to_string(), 1);
    }

    fn label(&mut self, name: &str) {
        let _ = writeln!(self.src, "{name}:");
    }

    /// A random source register: mostly pool, sometimes `zero`, sometimes a
    /// reserved read-only register (base/counter) for extra dependence
    /// variety.
    fn src_reg(&mut self) -> Reg {
        if self.rng.chance(8) {
            Reg::ZERO
        } else if self.rng.chance(10) {
            let reserved = [Reg::S0, Reg::S1, Reg::SP, Reg::S2, Reg::S3];
            self.rng.pick(&reserved)
        } else {
            self.rng.pick(&POOL)
        }
    }

    fn pool_reg(&mut self) -> Reg {
        self.rng.pick(&POOL)
    }

    /// `li reg, <32-bit value>` costs up to 2 static instructions
    /// (`lui + addi`).
    fn li(&mut self, reg: Reg, value: i32) {
        self.line(&format!("li {reg}, {value}"), 2);
    }

    fn plan_terminators(&mut self) -> Vec<Term> {
        let blocks = self.cfg.blocks;
        let mut terms = Vec::with_capacity(blocks as usize);
        for i in 0..blocks {
            let exit = blocks; // label index of `exit`
            let can_loop = self.cfg.max_trip > 0 && self.loops.len() < MAX_LOOPS;
            let term = if can_loop && self.rng.chance(30) {
                let counter = COUNTERS[self.loops.len()];
                let trip = 1 + self.rng.below(u64::from(self.cfg.max_trip)) as u32;
                self.loops.push((counter, trip));
                Term::LoopBack {
                    target: self.rng.below(u64::from(i) + 1) as u32,
                    counter,
                }
            } else if self.rng.chance(20) {
                Term::Jump(i + 1 + self.rng.below(u64::from(exit - i)) as u32)
            } else if self.rng.chance(35) {
                let cond = self.rng.pick(&BranchCond::ALL);
                Term::CondForward(cond, i + 1 + self.rng.below(u64::from(exit - i)) as u32)
            } else {
                Term::Fall
            };
            terms.push(term);
        }
        terms
    }

    fn emit_prologue(&mut self) {
        let _ = writeln!(self.src, "  # prologue: bases, loop counters, pool seeds");
        #[allow(clippy::cast_possible_truncation)]
        self.li(Reg::S0, DATA_BASE as i32);
        #[allow(clippy::cast_possible_truncation)]
        self.li(Reg::S1, (DATA_BASE + SCRATCH_WINDOW) as i32);
        let loops = self.loops.clone();
        for (counter, trip) in loops {
            #[allow(clippy::cast_possible_wrap)]
            self.li(counter, trip as i32);
        }
        // Seed a random subset of the pool with random 32-bit constants so
        // the first block starts from varied values rather than all-zero.
        for reg in POOL {
            if self.rng.chance(70) {
                let value = self.rng.next() as i32;
                self.li(reg, value);
            }
        }
    }

    /// One random body instruction (or short atomic group).
    fn emit_body_inst(&mut self) {
        let roll = self.rng.below(100);
        match roll {
            // Register-register ALU, full RV64IM table including div/rem.
            0..=29 => {
                let inst = Inst::Op {
                    op: self.rng.pick(&AluOp::ALL),
                    rd: self.pool_reg(),
                    rs1: self.src_reg(),
                    rs2: self.src_reg(),
                };
                self.inst(&inst);
            }
            // Register-immediate ALU.
            30..=54 => {
                let op = self.rng.pick(&AluImmOp::ALL);
                let imm = if op.is_shift() {
                    self.rng.imm(0, op.max_shamt())
                } else {
                    self.rng.imm(-2048, 2047)
                };
                let inst = Inst::OpImm {
                    op,
                    rd: self.pool_reg(),
                    rs1: self.src_reg(),
                    imm,
                };
                self.inst(&inst);
            }
            // Upper-immediate producers.
            55..=62 => {
                let rd = self.pool_reg();
                let imm20 = self.rng.imm(-(1 << 19), (1 << 19) - 1);
                let inst = if self.rng.chance(50) {
                    Inst::Lui { rd, imm20 }
                } else {
                    Inst::Auipc { rd, imm20 }
                };
                self.inst(&inst);
            }
            // Scratch-region load.
            63..=77 => {
                let (width, signed) = self.rng.pick(&[
                    (MemWidth::B, true),
                    (MemWidth::B, false),
                    (MemWidth::H, true),
                    (MemWidth::H, false),
                    (MemWidth::W, true),
                    (MemWidth::W, false),
                    (MemWidth::D, true),
                ]);
                let inst = Inst::Load {
                    width,
                    signed,
                    rd: self.pool_reg(),
                    rs1: self.base_reg(),
                    imm: self.scratch_offset(width),
                };
                self.inst(&inst);
            }
            // Scratch-region store.
            78..=89 => {
                let width = self
                    .rng
                    .pick(&[MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D]);
                let inst = Inst::Store {
                    width,
                    rs2: self.src_reg(),
                    rs1: self.base_reg(),
                    imm: self.scratch_offset(width),
                };
                self.inst(&inst);
            }
            // Balanced sp push/pop pair (atomic within the block body).
            90..=94 => {
                let saved = self.pool_reg();
                let restored = self.pool_reg();
                self.line("addi sp, sp, -16", 1);
                self.line(&format!("sd {saved}, 8(sp)"), 1);
                self.line(&format!("ld {restored}, 8(sp)"), 1);
                self.line("addi sp, sp, 16", 1);
            }
            // Call into a leaf function (if any exist).
            _ => {
                if self.cfg.leaves > 0 {
                    let leaf = self.rng.below(u64::from(self.cfg.leaves));
                    self.line(&format!("call leaf{leaf}"), 1);
                } else {
                    let inst = Inst::Op {
                        op: AluOp::Add,
                        rd: self.pool_reg(),
                        rs1: self.src_reg(),
                        rs2: self.src_reg(),
                    };
                    self.inst(&inst);
                }
            }
        }
    }

    fn base_reg(&mut self) -> Reg {
        if self.rng.chance(50) {
            Reg::S0
        } else {
            Reg::S1
        }
    }

    /// An offset keeping `addr..addr+bytes` inside the base register's
    /// 2 KiB window; usually aligned, occasionally deliberately misaligned.
    fn scratch_offset(&mut self, width: MemWidth) -> i32 {
        let bytes = i32::from(width.bytes());
        let max = SCRATCH_WINDOW as i32 - bytes;
        let raw = self.rng.imm(0, max);
        if self.rng.chance(85) {
            raw & !(bytes - 1)
        } else {
            raw
        }
    }

    fn emit_terminator(&mut self, term: Term, blocks: u32) {
        let target_label = |t: u32| {
            if t >= blocks {
                "exit".to_owned()
            } else {
                format!("b{t}")
            }
        };
        match term {
            Term::Fall => {}
            Term::Jump(t) => self.line(&format!("j {}", target_label(t)), 1),
            Term::CondForward(cond, t) => {
                let rs1 = self.src_reg();
                let rs2 = self.src_reg();
                let line = format!("{} {rs1}, {rs2}, {}", cond.mnemonic(), target_label(t));
                self.line(&line, 1);
            }
            Term::LoopBack {
                target, counter, ..
            } => {
                self.line(&format!("addi {counter}, {counter}, -1"), 1);
                self.line(&format!("bgtz {counter}, {}", target_label(target)), 1);
            }
        }
    }

    fn emit_leaves(&mut self) {
        for leaf in 0..self.cfg.leaves {
            self.label(&format!("leaf{leaf}"));
            let body = 1 + self.rng.below(3);
            for _ in 0..body {
                let inst = Inst::Op {
                    op: self.rng.pick(&AluOp::ALL),
                    rd: self.pool_reg(),
                    rs1: self.src_reg(),
                    rs2: self.src_reg(),
                };
                self.inst(&inst);
            }
            self.line("ret", 1);
        }
    }

    fn emit(mut self) -> GeneratedProgram {
        let cfg = self.cfg;
        let _ = writeln!(
            self.src,
            "# generated RV64IM program: seed={:#x} blocks={} block_len={} max_trip={} leaves={}",
            cfg.seed, cfg.blocks, cfg.block_len, cfg.max_trip, cfg.leaves
        );
        let terms = self.plan_terminators();
        self.emit_prologue();
        for (i, term) in terms.iter().enumerate() {
            self.label(&format!("b{i}"));
            let body = self.rng.below(u64::from(self.cfg.block_len) + 1);
            for _ in 0..body {
                self.emit_body_inst();
            }
            self.emit_terminator(*term, cfg.blocks);
        }
        self.label("exit");
        self.line("ecall", 1);
        self.emit_leaves();

        // Termination bound (module docs): at most `1 + sum(trips)` straight
        // passes over the program, each pass at most `static_len` long; the
        // +8 and ×2 absorb prologue/leaf slop without risking tightness.
        let total_trips: u64 = self.loops.iter().map(|&(_, trip)| u64::from(trip)).sum();
        let dynamic_bound = (self.static_len + 8) * (total_trips + 2) * 2;
        GeneratedProgram {
            cfg,
            source: self.src,
            static_len: self.static_len,
            dynamic_bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::MEM_SIZE;

    fn run(cfg: &GenConfig) -> (GeneratedProgram, Emulator) {
        let gen = cfg.generate();
        let mut emu = gen.emulator();
        emu.run_to_halt();
        (gen, emu)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = GenConfig::new(42).generate();
        let b = GenConfig::new(42).generate();
        assert_eq!(a, b);
        let c = GenConfig::new(43).generate();
        assert_ne!(a.source, c.source, "different seeds generate differently");
    }

    #[test]
    fn generated_programs_assemble_and_terminate() {
        for seed in 0..200 {
            let (gen, emu) = run(&GenConfig::new(seed));
            assert!(
                emu.ran_to_completion(),
                "seed {seed}: did not halt within the {} bound ({} retired)",
                gen.dynamic_bound,
                emu.retired()
            );
            assert!(
                emu.retired() <= gen.dynamic_bound,
                "seed {seed}: bound not conservative"
            );
        }
    }

    #[test]
    fn zero_block_config_is_the_bare_ecall_program() {
        let (gen, emu) = run(&GenConfig {
            seed: 7,
            blocks: 0,
            block_len: 0,
            max_trip: 0,
            leaves: 0,
        });
        assert!(emu.ran_to_completion());
        // prologue li's retire, then ecall; no blocks in between.
        assert!(gen.source.contains("exit:"));
        assert!(emu.retired() >= 1);
    }

    #[test]
    fn sp_is_balanced_at_exit() {
        for seed in 0..50 {
            let (_, emu) = run(&GenConfig::new(seed));
            assert_eq!(emu.reg(Reg::SP), MEM_SIZE, "seed {seed}: sp unbalanced");
        }
    }

    #[test]
    fn memory_traffic_stays_inside_the_scratch_and_stack_regions() {
        for seed in 0..50 {
            let gen = GenConfig::new(seed).generate();
            let mut emu = gen.emulator();
            while let Some(retired) = emu.step() {
                let Some(addr) = retired.mem_addr else {
                    continue;
                };
                let in_scratch = (DATA_BASE..DATA_BASE + 2 * SCRATCH_WINDOW).contains(&addr);
                let in_stack = addr >= MEM_SIZE - 64;
                assert!(
                    in_scratch || in_stack,
                    "seed {seed}: access at {addr:#x} escapes scratch+stack"
                );
            }
        }
    }

    #[test]
    fn loop_counters_and_bases_are_never_pool_destinations() {
        // Structural check: past the prologue (which initialises bases and
        // counters), no Op/Lui/Auipc/Load writes a reserved register. The
        // only post-prologue writes outside the pool are the terminator
        // `addi ck, ck, -1` decrements and `sp`/`ra` linkage, all OpImm/Jal.
        for seed in 0..20 {
            let gen = GenConfig::new(seed).generate();
            let program = gen.program();
            let body_start = ((program.labels["b0"] - program.base) / 4) as usize;
            for inst in &program.insts[body_start..] {
                let written = match *inst {
                    Inst::Op { rd, .. } | Inst::Lui { rd, .. } | Inst::Auipc { rd, .. } => Some(rd),
                    Inst::Load { rd, .. } => Some(rd),
                    _ => None,
                };
                if let Some(rd) = written {
                    assert!(
                        POOL.contains(&rd) || rd.is_zero(),
                        "seed {seed}: {inst} writes reserved register {rd}"
                    );
                }
            }
        }
    }

    #[test]
    fn shapes_scale_with_the_config() {
        let small = GenConfig {
            seed: 5,
            blocks: 2,
            block_len: 2,
            max_trip: 2,
            leaves: 0,
        }
        .generate();
        let large = GenConfig {
            seed: 5,
            blocks: 12,
            block_len: 24,
            max_trip: 32,
            leaves: 3,
        }
        .generate();
        assert!(large.static_len > small.static_len);
    }
}
