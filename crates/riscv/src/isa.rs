//! The supported RV64IM instruction set: decoded form, binary encoding and
//! disassembly.
//!
//! The subset covers everything the shipped kernels (and compiler output of
//! similar shape) need: the full RV64I integer register-register and
//! register-immediate groups, loads/stores of all four widths, conditional
//! branches, `jal`/`jalr`, `lui`/`auipc`, `ecall` (used as the halt
//! convention) and the M-extension multiply/divide/remainder family
//! (`mulhsu`, `divuw` and `remuw` are deliberately left out).
//!
//! [`Inst::encode`] and [`decode`] round-trip through the standard RISC-V
//! 32-bit instruction formats, and [`Inst`]'s `Display` output parses back
//! through the assembler — both properties are pinned by proptests in
//! `tests/riscv_frontend.rs`.

use std::fmt;

/// An integer architectural register, `x0`–`x31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// The return-address register `x1` (`ra`).
    pub const RA: Reg = Reg(1);
    /// The stack pointer `x2` (`sp`).
    pub const SP: Reg = Reg(2);
    /// The first argument/return register `x10` (`a0`).
    pub const A0: Reg = Reg(10);
    /// The second argument register `x11` (`a1`).
    pub const A1: Reg = Reg(11);
    /// The third argument register `x12` (`a2`).
    pub const A2: Reg = Reg(12);
    /// The fourth argument register `x13` (`a3`).
    pub const A3: Reg = Reg(13);
    /// The fifth argument register `x14` (`a4`).
    pub const A4: Reg = Reg(14);
    /// The sixth argument register `x15` (`a5`).
    pub const A5: Reg = Reg(15);
    /// The seventh argument register `x16` (`a6`).
    pub const A6: Reg = Reg(16);
    /// The eighth argument register `x17` (`a7`).
    pub const A7: Reg = Reg(17);
    /// The first temporary `x5` (`t0`).
    pub const T0: Reg = Reg(5);
    /// The second temporary `x6` (`t1`).
    pub const T1: Reg = Reg(6);
    /// The third temporary `x7` (`t2`).
    pub const T2: Reg = Reg(7);
    /// The fourth temporary `x28` (`t3`).
    pub const T3: Reg = Reg(28);
    /// The fifth temporary `x29` (`t4`).
    pub const T4: Reg = Reg(29);
    /// The sixth temporary `x30` (`t5`).
    pub const T5: Reg = Reg(30);
    /// The seventh temporary `x31` (`t6`).
    pub const T6: Reg = Reg(31);
    /// The callee-saved register `x8` (`s0`/`fp`).
    pub const S0: Reg = Reg(8);
    /// The callee-saved register `x9` (`s1`).
    pub const S1: Reg = Reg(9);
    /// The callee-saved register `x18` (`s2`).
    pub const S2: Reg = Reg(18);
    /// The callee-saved register `x19` (`s3`).
    pub const S3: Reg = Reg(19);
    /// The callee-saved register `x20` (`s4`).
    pub const S4: Reg = Reg(20);
    /// The callee-saved register `x21` (`s5`).
    pub const S5: Reg = Reg(21);
    /// The callee-saved register `x22` (`s6`).
    pub const S6: Reg = Reg(22);
    /// The callee-saved register `x23` (`s7`).
    pub const S7: Reg = Reg(23);
    /// The callee-saved register `x24` (`s8`).
    pub const S8: Reg = Reg(24);
    /// The callee-saved register `x25` (`s9`).
    pub const S9: Reg = Reg(25);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "register index {index} out of range");
        Reg(index)
    }

    /// The register index (0–31).
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The ABI name (`zero`, `ra`, `sp`, …, `t6`).
    #[must_use]
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.0 as usize]
    }

    /// Parses a register name: `x<N>`, an ABI name, or `fp` (alias of `s0`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Reg> {
        if let Some(num) = name.strip_prefix('x') {
            return num.parse::<u8>().ok().filter(|&n| n < 32).map(Reg);
        }
        if name == "fp" {
            return Some(Reg(8));
        }
        (0..32u8).map(Reg).find(|r| r.abi_name() == name)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// Register-register ALU operations (`OP` and `OP-32` major opcodes,
/// including the supported M-extension subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    Mulw,
    Divw,
    Remw,
}

impl AluOp {
    /// All register-register operations, for table-driven tests.
    pub const ALL: [AluOp; 25] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
        AluOp::Mul,
        AluOp::Mulh,
        AluOp::Mulhu,
        AluOp::Div,
        AluOp::Divu,
        AluOp::Rem,
        AluOp::Remu,
        AluOp::Addw,
        AluOp::Subw,
        AluOp::Sllw,
        AluOp::Srlw,
        AluOp::Sraw,
        AluOp::Mulw,
        AluOp::Divw,
        AluOp::Remw,
    ];

    /// Whether the operation belongs to the M extension (multiply/divide).
    #[must_use]
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            AluOp::Mul
                | AluOp::Mulh
                | AluOp::Mulhu
                | AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
                | AluOp::Mulw
                | AluOp::Divw
                | AluOp::Remw
        )
    }

    /// The assembly mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Mulhu => "mulhu",
            AluOp::Div => "div",
            AluOp::Divu => "divu",
            AluOp::Rem => "rem",
            AluOp::Remu => "remu",
            AluOp::Addw => "addw",
            AluOp::Subw => "subw",
            AluOp::Sllw => "sllw",
            AluOp::Srlw => "srlw",
            AluOp::Sraw => "sraw",
            AluOp::Mulw => "mulw",
            AluOp::Divw => "divw",
            AluOp::Remw => "remw",
        }
    }

    /// `(opcode, funct3, funct7)` of the R-type encoding.
    fn encoding(self) -> (u32, u32, u32) {
        let (f3, f7, word32) = match self {
            AluOp::Add => (0b000, 0b000_0000, false),
            AluOp::Sub => (0b000, 0b010_0000, false),
            AluOp::Sll => (0b001, 0b000_0000, false),
            AluOp::Slt => (0b010, 0b000_0000, false),
            AluOp::Sltu => (0b011, 0b000_0000, false),
            AluOp::Xor => (0b100, 0b000_0000, false),
            AluOp::Srl => (0b101, 0b000_0000, false),
            AluOp::Sra => (0b101, 0b010_0000, false),
            AluOp::Or => (0b110, 0b000_0000, false),
            AluOp::And => (0b111, 0b000_0000, false),
            AluOp::Mul => (0b000, 0b000_0001, false),
            AluOp::Mulh => (0b001, 0b000_0001, false),
            AluOp::Mulhu => (0b011, 0b000_0001, false),
            AluOp::Div => (0b100, 0b000_0001, false),
            AluOp::Divu => (0b101, 0b000_0001, false),
            AluOp::Rem => (0b110, 0b000_0001, false),
            AluOp::Remu => (0b111, 0b000_0001, false),
            AluOp::Addw => (0b000, 0b000_0000, true),
            AluOp::Subw => (0b000, 0b010_0000, true),
            AluOp::Sllw => (0b001, 0b000_0000, true),
            AluOp::Srlw => (0b101, 0b000_0000, true),
            AluOp::Sraw => (0b101, 0b010_0000, true),
            AluOp::Mulw => (0b000, 0b000_0001, true),
            AluOp::Divw => (0b100, 0b000_0001, true),
            AluOp::Remw => (0b110, 0b000_0001, true),
        };
        (if word32 { OPC_OP_32 } else { OPC_OP }, f3, f7)
    }
}

/// Register-immediate ALU operations (`OP-IMM` and `OP-IMM-32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluImmOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
}

impl AluImmOp {
    /// All register-immediate operations, for table-driven tests.
    pub const ALL: [AluImmOp; 13] = [
        AluImmOp::Addi,
        AluImmOp::Slti,
        AluImmOp::Sltiu,
        AluImmOp::Xori,
        AluImmOp::Ori,
        AluImmOp::Andi,
        AluImmOp::Slli,
        AluImmOp::Srli,
        AluImmOp::Srai,
        AluImmOp::Addiw,
        AluImmOp::Slliw,
        AluImmOp::Srliw,
        AluImmOp::Sraiw,
    ];

    /// Whether the immediate is a shift amount rather than a 12-bit value.
    #[must_use]
    pub fn is_shift(self) -> bool {
        matches!(
            self,
            AluImmOp::Slli
                | AluImmOp::Srli
                | AluImmOp::Srai
                | AluImmOp::Slliw
                | AluImmOp::Srliw
                | AluImmOp::Sraiw
        )
    }

    /// The maximum shift amount (63 for 64-bit shifts, 31 for `*w` shifts).
    #[must_use]
    pub fn max_shamt(self) -> i32 {
        match self {
            AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai => 63,
            _ => 31,
        }
    }

    /// The assembly mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Xori => "xori",
            AluImmOp::Ori => "ori",
            AluImmOp::Andi => "andi",
            AluImmOp::Slli => "slli",
            AluImmOp::Srli => "srli",
            AluImmOp::Srai => "srai",
            AluImmOp::Addiw => "addiw",
            AluImmOp::Slliw => "slliw",
            AluImmOp::Srliw => "srliw",
            AluImmOp::Sraiw => "sraiw",
        }
    }
}

/// Width of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// One byte.
    B,
    /// Two bytes.
    H,
    /// Four bytes.
    W,
    /// Eight bytes.
    D,
}

impl MemWidth {
    /// Access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u8 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }

    fn funct3(self) -> u32 {
        match self {
            MemWidth::B => 0b000,
            MemWidth::H => 0b001,
            MemWidth::W => 0b010,
            MemWidth::D => 0b011,
        }
    }
}

/// Condition of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BranchCond {
    /// All branch conditions, for table-driven tests.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];

    /// The assembly mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }

    fn funct3(self) -> u32 {
        match self {
            BranchCond::Eq => 0b000,
            BranchCond::Ne => 0b001,
            BranchCond::Lt => 0b100,
            BranchCond::Ge => 0b101,
            BranchCond::Ltu => 0b110,
            BranchCond::Geu => 0b111,
        }
    }
}

const OPC_OP: u32 = 0b011_0011;
const OPC_OP_32: u32 = 0b011_1011;
const OPC_OP_IMM: u32 = 0b001_0011;
const OPC_OP_IMM_32: u32 = 0b001_1011;
const OPC_LOAD: u32 = 0b000_0011;
const OPC_STORE: u32 = 0b010_0011;
const OPC_BRANCH: u32 = 0b110_0011;
const OPC_JAL: u32 = 0b110_1111;
const OPC_JALR: u32 = 0b110_0111;
const OPC_LUI: u32 = 0b011_0111;
const OPC_AUIPC: u32 = 0b001_0111;
const OPC_SYSTEM: u32 = 0b111_0011;

/// One decoded RV64IM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Register-register ALU operation.
    Op {
        /// The operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register-immediate ALU operation. For shifts `imm` is the shift
    /// amount; otherwise a sign-extended 12-bit immediate.
    OpImm {
        /// The operation.
        op: AluImmOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate (−2048..=2047, or 0..=63 for shifts).
        imm: i32,
    },
    /// Load upper immediate: `rd = sext((imm20 << 12))`.
    Lui {
        /// Destination.
        rd: Reg,
        /// Signed 20-bit upper immediate (−524288..=524287).
        imm20: i32,
    },
    /// Add upper immediate to PC.
    Auipc {
        /// Destination.
        rd: Reg,
        /// Signed 20-bit upper immediate.
        imm20: i32,
    },
    /// Memory load. `signed` selects sign versus zero extension (`ld` is
    /// always "signed": the full doubleword needs no extension).
    Load {
        /// Access width.
        width: MemWidth,
        /// Sign-extend the loaded value.
        signed: bool,
        /// Destination.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Address offset (−2048..=2047).
        imm: i32,
    },
    /// Memory store.
    Store {
        /// Access width.
        width: MemWidth,
        /// Data register.
        rs2: Reg,
        /// Base address register.
        rs1: Reg,
        /// Address offset (−2048..=2047).
        imm: i32,
    },
    /// Conditional branch with a PC-relative byte offset.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First compared register.
        rs1: Reg,
        /// Second compared register.
        rs2: Reg,
        /// PC-relative offset in bytes (even, ±4 KiB).
        imm: i32,
    },
    /// Jump and link with a PC-relative byte offset.
    Jal {
        /// Link register (x0 for a plain jump).
        rd: Reg,
        /// PC-relative offset in bytes (even, ±1 MiB).
        imm: i32,
    },
    /// Indirect jump and link.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Address offset (−2048..=2047).
        imm: i32,
    },
    /// Environment call — the kernels' halt convention.
    Ecall,
}

/// An undecodable instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn imm12(imm: i32) -> u32 {
    assert!(
        (-2048..=2047).contains(&imm),
        "12-bit immediate {imm} out of range"
    );
    (imm as u32) & 0xfff
}

impl Inst {
    /// Encodes the instruction into its 32-bit binary form.
    ///
    /// # Panics
    ///
    /// Panics if an immediate is out of range for the instruction format
    /// (the assembler validates ranges before calling this).
    #[must_use]
    #[allow(clippy::cast_sign_loss)]
    pub fn encode(&self) -> u32 {
        match *self {
            Inst::Op { op, rd, rs1, rs2 } => {
                let (opc, f3, f7) = op.encoding();
                (f7 << 25)
                    | (u32::from(rs2.index()) << 20)
                    | (u32::from(rs1.index()) << 15)
                    | (f3 << 12)
                    | (u32::from(rd.index()) << 7)
                    | opc
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let (opc, f3, raw) = match op {
                    AluImmOp::Addi => (OPC_OP_IMM, 0b000, imm12(imm)),
                    AluImmOp::Slti => (OPC_OP_IMM, 0b010, imm12(imm)),
                    AluImmOp::Sltiu => (OPC_OP_IMM, 0b011, imm12(imm)),
                    AluImmOp::Xori => (OPC_OP_IMM, 0b100, imm12(imm)),
                    AluImmOp::Ori => (OPC_OP_IMM, 0b110, imm12(imm)),
                    AluImmOp::Andi => (OPC_OP_IMM, 0b111, imm12(imm)),
                    AluImmOp::Slli
                    | AluImmOp::Srli
                    | AluImmOp::Srai
                    | AluImmOp::Slliw
                    | AluImmOp::Srliw
                    | AluImmOp::Sraiw => {
                        assert!(
                            (0..=op.max_shamt()).contains(&imm),
                            "shift amount {imm} out of range for {}",
                            op.mnemonic()
                        );
                        let opc = if op.max_shamt() == 63 {
                            OPC_OP_IMM
                        } else {
                            OPC_OP_IMM_32
                        };
                        let f3 = if op == AluImmOp::Slli || op == AluImmOp::Slliw {
                            0b001
                        } else {
                            0b101
                        };
                        let arith = matches!(op, AluImmOp::Srai | AluImmOp::Sraiw);
                        let top = if arith { 0b0100_0000u32 << 4 } else { 0 };
                        (opc, f3, top | imm as u32)
                    }
                    AluImmOp::Addiw => (OPC_OP_IMM_32, 0b000, imm12(imm)),
                };
                (raw << 20)
                    | (u32::from(rs1.index()) << 15)
                    | (f3 << 12)
                    | (u32::from(rd.index()) << 7)
                    | opc
            }
            Inst::Lui { rd, imm20 } => {
                assert!(
                    (-(1 << 19)..(1 << 19)).contains(&imm20),
                    "20-bit immediate {imm20} out of range"
                );
                (((imm20 as u32) & 0xf_ffff) << 12) | (u32::from(rd.index()) << 7) | OPC_LUI
            }
            Inst::Auipc { rd, imm20 } => {
                assert!(
                    (-(1 << 19)..(1 << 19)).contains(&imm20),
                    "20-bit immediate {imm20} out of range"
                );
                (((imm20 as u32) & 0xf_ffff) << 12) | (u32::from(rd.index()) << 7) | OPC_AUIPC
            }
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                imm,
            } => {
                assert!(
                    signed || width != MemWidth::D,
                    "ldu does not exist: 64-bit loads need no extension"
                );
                let f3 = width.funct3() | if signed { 0 } else { 0b100 };
                (imm12(imm) << 20)
                    | (u32::from(rs1.index()) << 15)
                    | (f3 << 12)
                    | (u32::from(rd.index()) << 7)
                    | OPC_LOAD
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                imm,
            } => {
                let raw = imm12(imm);
                ((raw >> 5) << 25)
                    | (u32::from(rs2.index()) << 20)
                    | (u32::from(rs1.index()) << 15)
                    | (width.funct3() << 12)
                    | ((raw & 0x1f) << 7)
                    | OPC_STORE
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                imm,
            } => {
                assert!(
                    (-4096..=4094).contains(&imm) && imm % 2 == 0,
                    "branch offset {imm} out of range or odd"
                );
                let raw = (imm as u32) & 0x1fff;
                (((raw >> 12) & 1) << 31)
                    | (((raw >> 5) & 0x3f) << 25)
                    | (u32::from(rs2.index()) << 20)
                    | (u32::from(rs1.index()) << 15)
                    | (cond.funct3() << 12)
                    | (((raw >> 1) & 0xf) << 8)
                    | (((raw >> 11) & 1) << 7)
                    | OPC_BRANCH
            }
            Inst::Jal { rd, imm } => {
                assert!(
                    (-(1 << 20)..(1 << 20)).contains(&imm) && imm % 2 == 0,
                    "jal offset {imm} out of range or odd"
                );
                let raw = (imm as u32) & 0x1f_ffff;
                (((raw >> 20) & 1) << 31)
                    | (((raw >> 1) & 0x3ff) << 21)
                    | (((raw >> 11) & 1) << 20)
                    | (((raw >> 12) & 0xff) << 12)
                    | (u32::from(rd.index()) << 7)
                    | OPC_JAL
            }
            Inst::Jalr { rd, rs1, imm } => {
                (imm12(imm) << 20)
                    | (u32::from(rs1.index()) << 15)
                    | (u32::from(rd.index()) << 7)
                    | OPC_JALR
            }
            Inst::Ecall => OPC_SYSTEM,
        }
    }
}

fn field(word: u32, lo: u32, bits: u32) -> u32 {
    (word >> lo) & ((1 << bits) - 1)
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

/// Decodes a 32-bit instruction word into the supported RV64IM subset.
///
/// # Errors
///
/// Returns a [`DecodeError`] for opcodes, funct fields or immediates outside
/// the supported subset.
#[allow(clippy::too_many_lines)]
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let err = Err(DecodeError { word });
    let opc = field(word, 0, 7);
    let rd = Reg::new(field(word, 7, 5) as u8);
    let f3 = field(word, 12, 3);
    let rs1 = Reg::new(field(word, 15, 5) as u8);
    let rs2 = Reg::new(field(word, 20, 5) as u8);
    let f7 = field(word, 25, 7);
    let i_imm = sext(field(word, 20, 12), 12);
    match opc {
        OPC_OP | OPC_OP_32 => {
            let op = AluOp::ALL
                .into_iter()
                .find(|op| op.encoding() == (opc, f3, f7));
            match op {
                Some(op) => Ok(Inst::Op { op, rd, rs1, rs2 }),
                None => err,
            }
        }
        OPC_OP_IMM => match f3 {
            0b000 => Ok(Inst::OpImm {
                op: AluImmOp::Addi,
                rd,
                rs1,
                imm: i_imm,
            }),
            0b010 => Ok(Inst::OpImm {
                op: AluImmOp::Slti,
                rd,
                rs1,
                imm: i_imm,
            }),
            0b011 => Ok(Inst::OpImm {
                op: AluImmOp::Sltiu,
                rd,
                rs1,
                imm: i_imm,
            }),
            0b100 => Ok(Inst::OpImm {
                op: AluImmOp::Xori,
                rd,
                rs1,
                imm: i_imm,
            }),
            0b110 => Ok(Inst::OpImm {
                op: AluImmOp::Ori,
                rd,
                rs1,
                imm: i_imm,
            }),
            0b111 => Ok(Inst::OpImm {
                op: AluImmOp::Andi,
                rd,
                rs1,
                imm: i_imm,
            }),
            0b001 if f7 >> 1 == 0 => Ok(Inst::OpImm {
                op: AluImmOp::Slli,
                rd,
                rs1,
                imm: field(word, 20, 6) as i32,
            }),
            0b101 if f7 >> 1 == 0 => Ok(Inst::OpImm {
                op: AluImmOp::Srli,
                rd,
                rs1,
                imm: field(word, 20, 6) as i32,
            }),
            0b101 if f7 >> 1 == 0b01_0000 => Ok(Inst::OpImm {
                op: AluImmOp::Srai,
                rd,
                rs1,
                imm: field(word, 20, 6) as i32,
            }),
            _ => err,
        },
        OPC_OP_IMM_32 => match (f3, f7) {
            (0b000, _) => Ok(Inst::OpImm {
                op: AluImmOp::Addiw,
                rd,
                rs1,
                imm: i_imm,
            }),
            (0b001, 0) => Ok(Inst::OpImm {
                op: AluImmOp::Slliw,
                rd,
                rs1,
                imm: field(word, 20, 5) as i32,
            }),
            (0b101, 0) => Ok(Inst::OpImm {
                op: AluImmOp::Srliw,
                rd,
                rs1,
                imm: field(word, 20, 5) as i32,
            }),
            (0b101, 0b010_0000) => Ok(Inst::OpImm {
                op: AluImmOp::Sraiw,
                rd,
                rs1,
                imm: field(word, 20, 5) as i32,
            }),
            _ => err,
        },
        OPC_LOAD => {
            let (width, signed) = match f3 {
                0b000 => (MemWidth::B, true),
                0b001 => (MemWidth::H, true),
                0b010 => (MemWidth::W, true),
                0b011 => (MemWidth::D, true),
                0b100 => (MemWidth::B, false),
                0b101 => (MemWidth::H, false),
                0b110 => (MemWidth::W, false),
                _ => return err,
            };
            Ok(Inst::Load {
                width,
                signed,
                rd,
                rs1,
                imm: i_imm,
            })
        }
        OPC_STORE => {
            let width = match f3 {
                0b000 => MemWidth::B,
                0b001 => MemWidth::H,
                0b010 => MemWidth::W,
                0b011 => MemWidth::D,
                _ => return err,
            };
            let imm = sext((field(word, 25, 7) << 5) | field(word, 7, 5), 12);
            Ok(Inst::Store {
                width,
                rs2,
                rs1,
                imm,
            })
        }
        OPC_BRANCH => {
            let cond = match f3 {
                0b000 => BranchCond::Eq,
                0b001 => BranchCond::Ne,
                0b100 => BranchCond::Lt,
                0b101 => BranchCond::Ge,
                0b110 => BranchCond::Ltu,
                0b111 => BranchCond::Geu,
                _ => return err,
            };
            let raw = (field(word, 31, 1) << 12)
                | (field(word, 7, 1) << 11)
                | (field(word, 25, 6) << 5)
                | (field(word, 8, 4) << 1);
            Ok(Inst::Branch {
                cond,
                rs1,
                rs2,
                imm: sext(raw, 13),
            })
        }
        OPC_JAL => {
            let raw = (field(word, 31, 1) << 20)
                | (field(word, 12, 8) << 12)
                | (field(word, 20, 1) << 11)
                | (field(word, 21, 10) << 1);
            Ok(Inst::Jal {
                rd,
                imm: sext(raw, 21),
            })
        }
        OPC_JALR if f3 == 0 => Ok(Inst::Jalr {
            rd,
            rs1,
            imm: i_imm,
        }),
        OPC_LUI => Ok(Inst::Lui {
            rd,
            imm20: sext(field(word, 12, 20), 20),
        }),
        OPC_AUIPC => Ok(Inst::Auipc {
            rd,
            imm20: sext(field(word, 12, 20), 20),
        }),
        OPC_SYSTEM if word == OPC_SYSTEM => Ok(Inst::Ecall),
        _ => err,
    }
}

impl fmt::Display for Inst {
    /// Disassembles the instruction in a form the assembler parses back
    /// (branch and jump targets print as relative byte offsets).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Op { op, rd, rs1, rs2 } => write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic()),
            Inst::OpImm { op, rd, rs1, imm } => write!(f, "{} {rd}, {rs1}, {imm}", op.mnemonic()),
            Inst::Lui { rd, imm20 } => write!(f, "lui {rd}, {imm20}"),
            Inst::Auipc { rd, imm20 } => write!(f, "auipc {rd}, {imm20}"),
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                imm,
            } => {
                let m = match (width, signed) {
                    (MemWidth::B, true) => "lb",
                    (MemWidth::H, true) => "lh",
                    (MemWidth::W, true) => "lw",
                    (MemWidth::D, _) => "ld",
                    (MemWidth::B, false) => "lbu",
                    (MemWidth::H, false) => "lhu",
                    (MemWidth::W, false) => "lwu",
                };
                write!(f, "{m} {rd}, {imm}({rs1})")
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                imm,
            } => {
                let m = match width {
                    MemWidth::B => "sb",
                    MemWidth::H => "sh",
                    MemWidth::W => "sw",
                    MemWidth::D => "sd",
                };
                write!(f, "{m} {rs2}, {imm}({rs1})")
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                imm,
            } => {
                write!(f, "{} {rs1}, {rs2}, {imm}", cond.mnemonic())
            }
            Inst::Jal { rd, imm } => write!(f, "jal {rd}, {imm}"),
            Inst::Jalr { rd, rs1, imm } => write!(f, "jalr {rd}, {imm}({rs1})"),
            Inst::Ecall => f.write_str("ecall"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names_round_trip() {
        for idx in 0..32u8 {
            let reg = Reg::new(idx);
            assert_eq!(Reg::from_name(reg.abi_name()), Some(reg));
            assert_eq!(Reg::from_name(&format!("x{idx}")), Some(reg));
        }
        assert_eq!(Reg::from_name("fp"), Some(Reg::new(8)));
        assert_eq!(Reg::from_name("x32"), None);
        assert_eq!(Reg::from_name("q0"), None);
    }

    #[test]
    fn known_encodings_match_the_spec() {
        // Cross-checked against riscv-tests / an external assembler.
        let add = Inst::Op {
            op: AluOp::Add,
            rd: Reg::new(3),
            rs1: Reg::new(1),
            rs2: Reg::new(2),
        };
        assert_eq!(add.encode(), 0x0020_81b3);
        let addi = Inst::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            imm: -1,
        };
        assert_eq!(addi.encode(), 0xfff0_0513);
        let ld = Inst::Load {
            width: MemWidth::D,
            signed: true,
            rd: Reg::A1,
            rs1: Reg::SP,
            imm: 8,
        };
        assert_eq!(ld.encode(), 0x0081_3583);
        let sd = Inst::Store {
            width: MemWidth::D,
            rs2: Reg::A1,
            rs1: Reg::SP,
            imm: 8,
        };
        assert_eq!(sd.encode(), 0x00b1_3423);
        let beq = Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::ZERO,
            imm: -4,
        };
        assert_eq!(beq.encode(), 0xfe05_0ee3);
        assert_eq!(Inst::Ecall.encode(), 0x0000_0073);
    }

    #[test]
    fn every_alu_op_round_trips() {
        for op in AluOp::ALL {
            let inst = Inst::Op {
                op,
                rd: Reg::new(5),
                rs1: Reg::new(6),
                rs2: Reg::new(7),
            };
            assert_eq!(decode(inst.encode()), Ok(inst), "{}", op.mnemonic());
        }
    }

    #[test]
    fn every_imm_op_round_trips() {
        for op in AluImmOp::ALL {
            let imm = if op.is_shift() { op.max_shamt() } else { -2048 };
            let inst = Inst::OpImm {
                op,
                rd: Reg::new(8),
                rs1: Reg::new(9),
                imm,
            };
            assert_eq!(decode(inst.encode()), Ok(inst), "{}", op.mnemonic());
        }
    }

    #[test]
    fn branch_offsets_round_trip_at_the_extremes() {
        for imm in [-4096, -2, 0, 2, 4094] {
            let inst = Inst::Branch {
                cond: BranchCond::Geu,
                rs1: Reg::A0,
                rs2: Reg::A1,
                imm,
            };
            assert_eq!(decode(inst.encode()), Ok(inst), "imm={imm}");
        }
        for imm in [-(1 << 20), -2, 0, 2, (1 << 20) - 2] {
            let inst = Inst::Jal { rd: Reg::RA, imm };
            assert_eq!(decode(inst.encode()), Ok(inst), "imm={imm}");
        }
    }

    #[test]
    fn unsupported_words_decode_to_errors() {
        assert!(decode(0).is_err(), "all-zero word is not an instruction");
        assert!(decode(0xffff_ffff).is_err());
        // mulhsu: in RV64M but outside the supported subset.
        let mulhsu = (0b000_0001 << 25) | (0b010 << 12) | OPC_OP;
        assert!(decode(mulhsu).is_err());
    }

    #[test]
    fn display_is_parseable_assembly_shape() {
        let inst = Inst::Load {
            width: MemWidth::W,
            signed: false,
            rd: Reg::A0,
            rs1: Reg::SP,
            imm: -16,
        };
        assert_eq!(inst.to_string(), "lwu a0, -16(sp)");
        let b = Inst::Branch {
            cond: BranchCond::Ne,
            rs1: Reg::new(5),
            rs2: Reg::ZERO,
            imm: -8,
        };
        assert_eq!(b.to_string(), "bne t0, zero, -8");
    }
}
