//! Execution-driven RV64IM frontend for the D-KIP reproduction.
//!
//! Where `dkip-trace` synthesises statistical SPEC-like workloads, this
//! crate runs *real programs*: a small two-pass [`asm`] assembler turns the
//! embedded [`kernels`] (matmul, pointer-chasing list walk, prime sieve,
//! recursive Fibonacci, streaming memcpy, box blur) — or a seeded random
//! program from the [`gen`] differential-fuzzing generator — into RV64IM
//! machine code, the functional [`emu`] emulator executes them
//! architecturally, and
//! [`stream::RiscvStream`] cracks every retired instruction into the
//! [`dkip_model::MicroOp`] stream the core models consume — with genuine
//! dependence chains, architecturally-correct branch outcomes and real
//! load/store effective addresses.
//!
//! Because `RiscvStream` satisfies the same `Iterator<Item = MicroOp>`
//! contract as the trace generators, the out-of-order baseline, the KILO
//! model and the D-KIP run these kernels unmodified (see `Workload` in
//! `dkip-sim`).
//!
//! # Example
//!
//! ```
//! use dkip_riscv::{Kernel, RiscvStream};
//!
//! let run = Kernel::Sieve.default_run();
//! let ops: Vec<_> = RiscvStream::new(&run).collect();
//! assert!(ops.iter().all(|op| op.is_well_formed()));
//! assert!(ops.iter().any(|op| op.is_load()));
//! // The stream is finite: it ends when the kernel executes `ecall`.
//! assert!(ops.len() > 1_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod emu;
pub mod gen;
pub mod isa;
pub mod kernels;
pub mod stream;

pub use asm::{assemble, AsmError, Program};
pub use emu::{Emulator, Retired, CODE_BASE, DATA_BASE, MEM_SIZE};
pub use gen::{GenConfig, GeneratedProgram};
pub use isa::{decode, AluImmOp, AluOp, BranchCond, DecodeError, Inst, MemWidth, Reg};
pub use kernels::{Kernel, KernelRun};
pub use stream::RiscvStream;
