//! A functional RV64IM emulator over a flat little-endian memory.
//!
//! The emulator executes an assembled [`Program`] architecturally — no
//! timing, no speculation — and reports one [`Retired`] record per executed
//! instruction. The record carries exactly what the trace frontend
//! ([`crate::stream::RiscvStream`]) needs to crack the instruction into a
//! [`dkip_model::MicroOp`]: the PC, the decoded instruction, the next PC
//! (from which branch outcomes follow) and the effective address of a
//! memory access.
//!
//! Execution halts on `ecall`, on a jump outside the code region (so a
//! stray `ret` from the outermost frame falls off cleanly) or when
//! [`Emulator::MAX_STEPS`] instructions have retired (a backstop against
//! kernels that fail to terminate).

use crate::asm::Program;
use crate::isa::{AluImmOp, AluOp, BranchCond, Inst, MemWidth, Reg};

/// Base address of the code region (all kernels are assembled here).
pub const CODE_BASE: u64 = 0x1000;

/// Base address kernels use for their data (passed in `a0`).
pub const DATA_BASE: u64 = 0x1_0000;

/// Size of the flat memory in bytes. The stack pointer starts at the top
/// and grows down; kernel data lives at [`DATA_BASE`].
pub const MEM_SIZE: u64 = 1 << 20;

/// One architecturally executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// Address of the instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// The PC of the next instruction.
    pub next_pc: u64,
    /// Effective address of a load or store.
    pub mem_addr: Option<u64>,
    /// The evaluated condition of a conditional branch (`false` for
    /// anything else). Recorded directly rather than derived from
    /// `next_pc`, so a taken branch whose offset happens to be +4 is still
    /// reported as taken.
    pub taken: bool,
}

impl Retired {
    /// Whether a conditional branch was taken (`false` for anything else).
    #[must_use]
    pub fn branch_taken(&self) -> bool {
        self.taken
    }
}

/// The functional emulator.
#[derive(Debug, Clone)]
pub struct Emulator {
    regs: [u64; 32],
    pc: u64,
    mem: Vec<u8>,
    insts: Vec<Inst>,
    base: u64,
    halted: bool,
    step_limited: bool,
    step_limit: u64,
    retired: u64,
}

impl Emulator {
    /// Backstop on retired instructions; [`Emulator::step`] reports the
    /// machine halted once it is reached.
    pub const MAX_STEPS: u64 = 50_000_000;

    /// Creates an emulator for `program` with zeroed registers and memory,
    /// `sp` at the top of memory and `pc` at the program base.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mut emu = Emulator {
            regs: [0; 32],
            pc: program.base,
            mem: vec![0; MEM_SIZE as usize],
            insts: program.insts.clone(),
            base: program.base,
            halted: false,
            step_limited: false,
            step_limit: Self::MAX_STEPS,
            retired: 0,
        };
        emu.regs[Reg::SP.index() as usize] = MEM_SIZE;
        emu
    }

    /// Reads a register (`x0` always reads zero).
    #[must_use]
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.index() as usize]
    }

    /// Writes a register (writes to `x0` are discarded).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        if !reg.is_zero() {
            self.regs[reg.index() as usize] = value;
        }
    }

    /// The current program counter.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether execution has ended (cleanly or via the step backstop).
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether execution ended *cleanly* — `ecall` or falling off the
    /// program — rather than by hitting the [`Emulator::MAX_STEPS`]
    /// backstop. A runaway kernel halts but does not complete; tests assert
    /// this so a truncated stream cannot masquerade as a finished run.
    #[must_use]
    pub fn ran_to_completion(&self) -> bool {
        self.halted && !self.step_limited
    }

    /// Lowers the retired-instruction backstop (clamped to
    /// [`Emulator::MAX_STEPS`]); mainly for tests exercising the runaway
    /// path without spinning 50M steps.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit.min(Self::MAX_STEPS);
    }

    /// Number of instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The full architectural register file, `x0`–`x31` in index order.
    #[must_use]
    pub fn regs(&self) -> &[u64; 32] {
        &self.regs
    }

    /// The whole flat memory ([`MEM_SIZE`] bytes). Differential tests
    /// compare two emulators' memories directly: both start zeroed, so
    /// byte-equality of the full array is exactly "same touched memory".
    #[must_use]
    pub fn memory(&self) -> &[u8] {
        &self.mem
    }

    /// Reads a naturally-sized little-endian doubleword for tests.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside memory.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.load(addr, MemWidth::D, false)
    }

    fn check_addr(&self, addr: u64, bytes: u8) {
        assert!(
            addr.checked_add(u64::from(bytes))
                .is_some_and(|end| end <= MEM_SIZE),
            "memory access at {addr:#x}+{bytes} outside the {MEM_SIZE:#x}-byte memory"
        );
    }

    fn load(&self, addr: u64, width: MemWidth, sign: bool) -> u64 {
        let bytes = width.bytes();
        self.check_addr(addr, bytes);
        let mut raw = [0u8; 8];
        raw[..bytes as usize]
            .copy_from_slice(&self.mem[addr as usize..addr as usize + bytes as usize]);
        let value = u64::from_le_bytes(raw);
        if !sign {
            return value;
        }
        match width {
            MemWidth::B => value as u8 as i8 as i64 as u64,
            MemWidth::H => value as u16 as i16 as i64 as u64,
            MemWidth::W => value as u32 as i32 as i64 as u64,
            MemWidth::D => value,
        }
    }

    fn store(&mut self, addr: u64, width: MemWidth, value: u64) {
        let bytes = width.bytes();
        self.check_addr(addr, bytes);
        self.mem[addr as usize..addr as usize + bytes as usize]
            .copy_from_slice(&value.to_le_bytes()[..bytes as usize]);
    }

    fn alu(op: AluOp, a: u64, b: u64) -> u64 {
        let sext32 = |v: u32| v as i32 as i64 as u64;
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a << (b & 63),
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
            AluOp::Sltu => u64::from(a < b),
            AluOp::Xor => a ^ b,
            AluOp::Srl => a >> (b & 63),
            AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
            AluOp::Mulhu => ((u128::from(a) * u128::from(b)) >> 64) as u64,
            AluOp::Div => match (a as i64, b as i64) {
                (_, 0) => u64::MAX,
                (i64::MIN, -1) => i64::MIN as u64,
                (x, y) => (x / y) as u64,
            },
            AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => match (a as i64, b as i64) {
                (x, 0) => x as u64,
                (i64::MIN, -1) => 0,
                (x, y) => (x % y) as u64,
            },
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            AluOp::Addw => sext32((a as u32).wrapping_add(b as u32)),
            AluOp::Subw => sext32((a as u32).wrapping_sub(b as u32)),
            AluOp::Sllw => sext32((a as u32) << (b & 31)),
            AluOp::Srlw => sext32((a as u32) >> (b & 31)),
            AluOp::Sraw => sext32(((a as i32) >> (b & 31)) as u32),
            AluOp::Mulw => sext32((a as u32).wrapping_mul(b as u32)),
            AluOp::Divw => match (a as i32, b as i32) {
                (_, 0) => u64::MAX,
                (i32::MIN, -1) => i32::MIN as i64 as u64,
                (x, y) => (x / y) as i64 as u64,
            },
            AluOp::Remw => match (a as i32, b as i32) {
                (x, 0) => x as i64 as u64,
                (i32::MIN, -1) => 0,
                (x, y) => (x % y) as i64 as u64,
            },
        }
    }

    fn alu_imm(op: AluImmOp, a: u64, imm: i32) -> u64 {
        let b = imm as i64 as u64;
        match op {
            AluImmOp::Addi => Self::alu(AluOp::Add, a, b),
            AluImmOp::Slti => Self::alu(AluOp::Slt, a, b),
            AluImmOp::Sltiu => Self::alu(AluOp::Sltu, a, b),
            AluImmOp::Xori => Self::alu(AluOp::Xor, a, b),
            AluImmOp::Ori => Self::alu(AluOp::Or, a, b),
            AluImmOp::Andi => Self::alu(AluOp::And, a, b),
            AluImmOp::Slli => Self::alu(AluOp::Sll, a, b),
            AluImmOp::Srli => Self::alu(AluOp::Srl, a, b),
            AluImmOp::Srai => Self::alu(AluOp::Sra, a, b),
            AluImmOp::Addiw => Self::alu(AluOp::Addw, a, b),
            AluImmOp::Slliw => Self::alu(AluOp::Sllw, a, b),
            AluImmOp::Srliw => Self::alu(AluOp::Srlw, a, b),
            AluImmOp::Sraiw => Self::alu(AluOp::Sraw, a, b),
        }
    }

    fn cond(cond: BranchCond, a: u64, b: u64) -> bool {
        match cond {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }

    /// Executes one instruction and returns its retirement record, or
    /// `None` once the machine has halted.
    #[allow(clippy::cast_possible_wrap)]
    pub fn step(&mut self) -> Option<Retired> {
        if self.halted {
            return None;
        }
        if self.retired >= self.step_limit {
            self.halted = true;
            self.step_limited = true;
            return None;
        }
        let offset = self.pc.wrapping_sub(self.base);
        let index = (offset / 4) as usize;
        if !offset.is_multiple_of(4) || index >= self.insts.len() {
            // Fell off the program (e.g. a top-level `ret` to ra == 0).
            self.halted = true;
            return None;
        }
        let inst = self.insts[index];
        let pc = self.pc;
        let mut next_pc = pc + 4;
        let mut mem_addr = None;
        let mut taken = false;
        match inst {
            Inst::Op { op, rd, rs1, rs2 } => {
                let value = Self::alu(op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, value);
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let value = Self::alu_imm(op, self.reg(rs1), imm);
                self.set_reg(rd, value);
            }
            Inst::Lui { rd, imm20 } => {
                self.set_reg(rd, ((imm20 as i64) << 12) as u64);
            }
            Inst::Auipc { rd, imm20 } => {
                self.set_reg(rd, pc.wrapping_add(((imm20 as i64) << 12) as u64));
            }
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                imm,
            } => {
                let addr = self.reg(rs1).wrapping_add(imm as i64 as u64);
                let value = self.load(addr, width, signed);
                self.set_reg(rd, value);
                mem_addr = Some(addr);
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                imm,
            } => {
                let addr = self.reg(rs1).wrapping_add(imm as i64 as u64);
                self.store(addr, width, self.reg(rs2));
                mem_addr = Some(addr);
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                imm,
            } => {
                taken = Self::cond(cond, self.reg(rs1), self.reg(rs2));
                if taken {
                    next_pc = pc.wrapping_add(imm as i64 as u64);
                }
            }
            Inst::Jal { rd, imm } => {
                self.set_reg(rd, pc + 4);
                next_pc = pc.wrapping_add(imm as i64 as u64);
            }
            Inst::Jalr { rd, rs1, imm } => {
                let target = self.reg(rs1).wrapping_add(imm as i64 as u64) & !1;
                self.set_reg(rd, pc + 4);
                next_pc = target;
            }
            Inst::Ecall => {
                self.halted = true;
            }
        }
        self.pc = next_pc;
        self.retired += 1;
        Some(Retired {
            pc,
            inst,
            next_pc,
            mem_addr,
            taken,
        })
    }

    /// Runs until the machine halts and returns the number of retired
    /// instructions.
    pub fn run_to_halt(&mut self) -> u64 {
        while self.step().is_some() {}
        self.retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str) -> Emulator {
        let prog = assemble(src, CODE_BASE).expect("assembles");
        let mut emu = Emulator::new(&prog);
        emu.run_to_halt();
        emu
    }

    #[test]
    fn arithmetic_and_halt() {
        let emu = run("li a0, 6\nli a1, 7\nmul a0, a0, a1\necall");
        assert!(emu.halted());
        assert_eq!(emu.reg(Reg::A0), 42);
        assert_eq!(emu.retired(), 4);
    }

    #[test]
    fn x0_is_hardwired_to_zero() {
        let emu = run("addi zero, zero, 5\nmv a0, zero\necall");
        assert_eq!(emu.reg(Reg::A0), 0);
        assert_eq!(emu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn loads_sign_and_zero_extend() {
        let emu = run(
            "li t0, 0x10000\nli t1, -1\nsb t1, 0(t0)\nlb a0, 0(t0)\nlbu a1, 0(t0)\nsw t1, 8(t0)\nlw a2, 8(t0)\nlwu a3, 8(t0)\necall",
        );
        assert_eq!(emu.reg(Reg::A0), u64::MAX);
        assert_eq!(emu.reg(Reg::A1), 0xff);
        assert_eq!(emu.reg(Reg::A2), u64::MAX);
        assert_eq!(emu.reg(Reg::A3), 0xffff_ffff);
    }

    #[test]
    fn division_follows_riscv_edge_rules() {
        let emu = run("li a0, 7\nli a1, 0\ndiv a2, a0, a1\nrem a3, a0, a1\necall");
        assert_eq!(emu.reg(Reg::A2), u64::MAX, "division by zero yields -1");
        assert_eq!(emu.reg(Reg::A3), 7, "remainder by zero yields the dividend");
    }

    #[test]
    fn word_ops_sign_extend_their_results() {
        let emu = run("li a0, 0x7fffffff\naddiw a1, a0, 1\necall");
        assert_eq!(emu.reg(Reg::A1), 0x8000_0000u64 as i32 as i64 as u64);
    }

    #[test]
    fn call_and_ret_use_the_stack_convention() {
        let emu =
            run("main:\n  li a0, 5\n  call double\n  ecall\ndouble:\n  add a0, a0, a0\n  ret");
        assert_eq!(emu.reg(Reg::A0), 10);
    }

    #[test]
    fn conditional_branches_report_taken() {
        let prog = assemble(
            "li t0, 1\nbeq t0, zero, 8\nbne t0, zero, 8\nnop\necall",
            CODE_BASE,
        )
        .unwrap();
        let mut emu = Emulator::new(&prog);
        let _li = emu.step().unwrap();
        let beq = emu.step().unwrap();
        assert!(!beq.branch_taken());
        let bne = emu.step().unwrap();
        assert!(bne.branch_taken());
        assert_eq!(bne.next_pc, bne.pc + 8);
    }

    #[test]
    fn taken_branch_with_offset_four_is_still_reported_taken() {
        let prog = assemble("beq zero, zero, 4\necall", CODE_BASE).unwrap();
        let mut emu = Emulator::new(&prog);
        let beq = emu.step().unwrap();
        assert!(
            beq.branch_taken(),
            "offset +4 equals the fallthrough PC but the branch is taken"
        );
        assert_eq!(beq.next_pc, beq.pc + 4);
        // Non-branches never report taken.
        let ecall = emu.step().unwrap();
        assert!(!ecall.branch_taken());
    }

    #[test]
    fn falling_off_the_program_halts() {
        // ra starts at 0, so a top-level ret jumps to 0 and halts.
        let emu = run("nop\nret\nnop");
        assert!(emu.halted());
        assert!(emu.ran_to_completion());
        assert_eq!(emu.retired(), 2);
    }

    #[test]
    fn a_runaway_kernel_halts_but_does_not_complete() {
        let prog = assemble("spin:\n  j spin", CODE_BASE).unwrap();
        let mut emu = Emulator::new(&prog);
        emu.set_step_limit(100);
        emu.run_to_halt();
        assert!(emu.halted(), "the backstop still ends the stream");
        assert!(
            !emu.ran_to_completion(),
            "but it must not look like a clean halt"
        );
        assert_eq!(emu.retired(), 100);
        // A clean ecall halt reports completion.
        let clean = run("ecall");
        assert!(clean.ran_to_completion());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_accesses_panic() {
        let _ = run("li t0, -8\nld a0, 0(t0)\necall");
    }
}
