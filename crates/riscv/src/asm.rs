//! A small two-pass assembler for the supported RV64IM subset.
//!
//! Syntax follows GNU `as` conventions closely enough that the embedded
//! kernel sources read like compiler output:
//!
//! * one instruction per line; `label:` definitions may share a line with an
//!   instruction; comments start with `#`, `;` or `//`;
//! * registers by ABI name (`a0`, `t3`, `s1`, `fp`, …) or `x<N>`;
//! * memory operands as `imm(reg)`; immediates in decimal or `0x…` hex;
//! * branch/jump targets as labels **or** numeric PC-relative byte offsets
//!   (the form [`crate::isa::Inst`]'s `Display` emits, so disassembly
//!   re-assembles);
//! * the usual pseudo-instructions: `nop`, `li`, `mv`, `neg`, `not`,
//!   `seqz`, `snez`, `j`, `call`, `ret`, `beqz`/`bnez`/`bltz`/`bgez`/
//!   `bgtz`/`blez`, and the swapped-operand forms `ble`/`bgt`/`bleu`/`bgtu`.
//!
//! Pass 1 parses and expands pseudo-instructions (so every entry has a fixed
//! 4-byte size) and records label addresses; pass 2 resolves label operands
//! to PC-relative offsets and encodes.

use crate::isa::{AluImmOp, AluOp, BranchCond, Inst, MemWidth, Reg};
use std::collections::HashMap;
use std::fmt;

/// An assembly error, with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// An assembled program: decoded instructions plus their machine words,
/// laid out contiguously from [`Program::base`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The address of the first instruction.
    pub base: u64,
    /// Decoded instructions in layout order.
    pub insts: Vec<Inst>,
    /// The 32-bit machine words (`words[i] == insts[i].encode()`).
    pub words: Vec<u32>,
    /// Label name → absolute address.
    pub labels: HashMap<String, u64>,
}

impl Program {
    /// The instruction at absolute address `addr`, if it falls inside the
    /// program (4-byte aligned).
    #[must_use]
    pub fn inst_at(&self, addr: u64) -> Option<Inst> {
        if addr < self.base || !(addr - self.base).is_multiple_of(4) {
            return None;
        }
        self.insts.get(((addr - self.base) / 4) as usize).copied()
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// A branch/jump target: a label reference or a numeric relative offset.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Target {
    Label(String),
    Rel(i64),
}

/// A parsed instruction whose control-flow target may still be symbolic.
#[derive(Debug, Clone)]
enum Proto {
    Ready(Inst),
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: Target,
    },
    Jal {
        rd: Reg,
        target: Target,
    },
}

struct Parser<'a> {
    line: usize,
    text: &'a str,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> AsmError {
        AsmError {
            line: self.line,
            message: message.into(),
        }
    }

    fn reg(&self, token: &str) -> Result<Reg, AsmError> {
        Reg::from_name(token).ok_or_else(|| self.err(format!("unknown register '{token}'")))
    }

    fn imm(&self, token: &str) -> Result<i64, AsmError> {
        let (neg, digits) = match token.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, token),
        };
        // Only one leading sign: the underlying parsers accept an embedded
        // sign (`--5`, `0x-5`), which would silently flip the value.
        if digits.contains(['-', '+']) {
            return Err(self.err(format!("invalid immediate '{token}'")));
        }
        let value = if let Some(hex) = digits.strip_prefix("0x") {
            i64::from_str_radix(hex, 16)
        } else {
            digits.parse::<i64>()
        };
        match value {
            Ok(v) => Ok(if neg { -v } else { v }),
            Err(_) => Err(self.err(format!("invalid immediate '{token}'"))),
        }
    }

    fn imm12(&self, token: &str) -> Result<i32, AsmError> {
        let v = self.imm(token)?;
        if (-2048..=2047).contains(&v) {
            Ok(v as i32)
        } else {
            Err(self.err(format!("immediate {v} does not fit in 12 bits")))
        }
    }

    /// Parses `imm(reg)` into `(offset, base)`.
    fn mem(&self, token: &str) -> Result<(i32, Reg), AsmError> {
        let open = token
            .find('(')
            .ok_or_else(|| self.err(format!("expected imm(reg), got '{token}'")))?;
        let close = token
            .rfind(')')
            .filter(|&c| c > open && token[c + 1..].trim().is_empty())
            .ok_or_else(|| self.err(format!("unbalanced memory operand '{token}'")))?;
        let offset = token[..open].trim();
        let offset = if offset.is_empty() {
            Ok(0)
        } else {
            self.imm12(offset)
        }?;
        let base = self.reg(token[open + 1..close].trim())?;
        Ok((offset, base))
    }

    fn target(&self, token: &str) -> Result<Target, AsmError> {
        let first = token
            .chars()
            .next()
            .ok_or_else(|| self.err("empty branch target"))?;
        if first == '-' || first.is_ascii_digit() {
            Ok(Target::Rel(self.imm(token)?))
        } else if token
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        {
            Ok(Target::Label(token.to_owned()))
        } else {
            Err(self.err(format!("invalid label '{token}'")))
        }
    }
}

fn split_operands(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect()
}

/// Expands a small-enough `li` into one `addi`, anything else that fits in
/// 32 bits into `lui` + `addiw`.
fn expand_li(rd: Reg, value: i64, p: &Parser<'_>) -> Result<Vec<Proto>, AsmError> {
    if (-2048..=2047).contains(&value) {
        return Ok(vec![Proto::Ready(Inst::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1: Reg::ZERO,
            imm: value as i32,
        })]);
    }
    if i32::try_from(value).is_err() {
        return Err(p.err(format!("li immediate {value} does not fit in 32 bits")));
    }
    let lo = ((value << 52) >> 52) as i32; // sign-extended low 12 bits
                                           // Upper 20 bits, wrapped to the signed lui range; `addiw`'s 32-bit
                                           // wrap-and-sign-extend makes the pair exact for any i32 value.
    let hi = ((((value + 0x800) >> 12) & 0xf_ffff) << 44 >> 44) as i32;
    let mut out = vec![Proto::Ready(Inst::Lui { rd, imm20: hi })];
    if lo != 0 {
        out.push(Proto::Ready(Inst::OpImm {
            op: AluImmOp::Addiw,
            rd,
            rs1: rd,
            imm: lo,
        }));
    }
    Ok(out)
}

/// Parses one instruction (mnemonic + operand string) into its expansion.
#[allow(clippy::too_many_lines)]
fn parse_inst(mnemonic: &str, rest: &str, p: &Parser<'_>) -> Result<Vec<Proto>, AsmError> {
    let ops = split_operands(rest);
    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(p.err(format!(
                "{mnemonic} expects {n} operands, got {}",
                ops.len()
            )))
        }
    };

    if let Some(op) = AluOp::ALL.into_iter().find(|op| op.mnemonic() == mnemonic) {
        need(3)?;
        return Ok(vec![Proto::Ready(Inst::Op {
            op,
            rd: p.reg(ops[0])?,
            rs1: p.reg(ops[1])?,
            rs2: p.reg(ops[2])?,
        })]);
    }
    if let Some(op) = AluImmOp::ALL
        .into_iter()
        .find(|op| op.mnemonic() == mnemonic)
    {
        need(3)?;
        let imm = if op.is_shift() {
            let v = p.imm(ops[2])?;
            if !(0..=i64::from(op.max_shamt())).contains(&v) {
                return Err(p.err(format!("shift amount {v} out of range for {mnemonic}")));
            }
            v as i32
        } else {
            p.imm12(ops[2])?
        };
        return Ok(vec![Proto::Ready(Inst::OpImm {
            op,
            rd: p.reg(ops[0])?,
            rs1: p.reg(ops[1])?,
            imm,
        })]);
    }
    let load = |width, signed| -> Result<Vec<Proto>, AsmError> {
        need(2)?;
        let (imm, rs1) = p.mem(ops[1])?;
        Ok(vec![Proto::Ready(Inst::Load {
            width,
            signed,
            rd: p.reg(ops[0])?,
            rs1,
            imm,
        })])
    };
    let store = |width| -> Result<Vec<Proto>, AsmError> {
        need(2)?;
        let (imm, rs1) = p.mem(ops[1])?;
        Ok(vec![Proto::Ready(Inst::Store {
            width,
            rs2: p.reg(ops[0])?,
            rs1,
            imm,
        })])
    };
    let branch = |cond, swap: bool| -> Result<Vec<Proto>, AsmError> {
        need(3)?;
        let (a, b) = (p.reg(ops[0])?, p.reg(ops[1])?);
        let (rs1, rs2) = if swap { (b, a) } else { (a, b) };
        Ok(vec![Proto::Branch {
            cond,
            rs1,
            rs2,
            target: p.target(ops[2])?,
        }])
    };
    let branch_zero = |cond, reg_is_rs2: bool| -> Result<Vec<Proto>, AsmError> {
        need(2)?;
        let r = p.reg(ops[0])?;
        let (rs1, rs2) = if reg_is_rs2 {
            (Reg::ZERO, r)
        } else {
            (r, Reg::ZERO)
        };
        Ok(vec![Proto::Branch {
            cond,
            rs1,
            rs2,
            target: p.target(ops[1])?,
        }])
    };

    match mnemonic {
        "lb" => load(MemWidth::B, true),
        "lh" => load(MemWidth::H, true),
        "lw" => load(MemWidth::W, true),
        "ld" => load(MemWidth::D, true),
        "lbu" => load(MemWidth::B, false),
        "lhu" => load(MemWidth::H, false),
        "lwu" => load(MemWidth::W, false),
        "sb" => store(MemWidth::B),
        "sh" => store(MemWidth::H),
        "sw" => store(MemWidth::W),
        "sd" => store(MemWidth::D),
        "beq" => branch(BranchCond::Eq, false),
        "bne" => branch(BranchCond::Ne, false),
        "blt" => branch(BranchCond::Lt, false),
        "bge" => branch(BranchCond::Ge, false),
        "bltu" => branch(BranchCond::Ltu, false),
        "bgeu" => branch(BranchCond::Geu, false),
        "ble" => branch(BranchCond::Ge, true),
        "bgt" => branch(BranchCond::Lt, true),
        "bleu" => branch(BranchCond::Geu, true),
        "bgtu" => branch(BranchCond::Ltu, true),
        "beqz" => branch_zero(BranchCond::Eq, false),
        "bnez" => branch_zero(BranchCond::Ne, false),
        "bltz" => branch_zero(BranchCond::Lt, false),
        "bgez" => branch_zero(BranchCond::Ge, false),
        "bgtz" => branch_zero(BranchCond::Lt, true),
        "blez" => branch_zero(BranchCond::Ge, true),
        "jal" => match ops.len() {
            1 => Ok(vec![Proto::Jal {
                rd: Reg::RA,
                target: p.target(ops[0])?,
            }]),
            2 => Ok(vec![Proto::Jal {
                rd: p.reg(ops[0])?,
                target: p.target(ops[1])?,
            }]),
            n => Err(p.err(format!("jal expects 1 or 2 operands, got {n}"))),
        },
        "j" => {
            need(1)?;
            Ok(vec![Proto::Jal {
                rd: Reg::ZERO,
                target: p.target(ops[0])?,
            }])
        }
        "call" => {
            need(1)?;
            Ok(vec![Proto::Jal {
                rd: Reg::RA,
                target: p.target(ops[0])?,
            }])
        }
        "jalr" => {
            need(2)?;
            let (imm, rs1) = p.mem(ops[1])?;
            Ok(vec![Proto::Ready(Inst::Jalr {
                rd: p.reg(ops[0])?,
                rs1,
                imm,
            })])
        }
        "ret" => {
            need(0)?;
            Ok(vec![Proto::Ready(Inst::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                imm: 0,
            })])
        }
        "lui" => {
            need(2)?;
            let v = p.imm(ops[1])?;
            if !(-(1 << 19)..(1 << 19)).contains(&v) {
                return Err(p.err(format!("lui immediate {v} does not fit in 20 bits")));
            }
            Ok(vec![Proto::Ready(Inst::Lui {
                rd: p.reg(ops[0])?,
                imm20: v as i32,
            })])
        }
        "auipc" => {
            need(2)?;
            let v = p.imm(ops[1])?;
            if !(-(1 << 19)..(1 << 19)).contains(&v) {
                return Err(p.err(format!("auipc immediate {v} does not fit in 20 bits")));
            }
            Ok(vec![Proto::Ready(Inst::Auipc {
                rd: p.reg(ops[0])?,
                imm20: v as i32,
            })])
        }
        "li" => {
            need(2)?;
            expand_li(p.reg(ops[0])?, p.imm(ops[1])?, p)
        }
        "mv" => {
            need(2)?;
            Ok(vec![Proto::Ready(Inst::OpImm {
                op: AluImmOp::Addi,
                rd: p.reg(ops[0])?,
                rs1: p.reg(ops[1])?,
                imm: 0,
            })])
        }
        "neg" => {
            need(2)?;
            Ok(vec![Proto::Ready(Inst::Op {
                op: AluOp::Sub,
                rd: p.reg(ops[0])?,
                rs1: Reg::ZERO,
                rs2: p.reg(ops[1])?,
            })])
        }
        "not" => {
            need(2)?;
            Ok(vec![Proto::Ready(Inst::OpImm {
                op: AluImmOp::Xori,
                rd: p.reg(ops[0])?,
                rs1: p.reg(ops[1])?,
                imm: -1,
            })])
        }
        "seqz" => {
            need(2)?;
            Ok(vec![Proto::Ready(Inst::OpImm {
                op: AluImmOp::Sltiu,
                rd: p.reg(ops[0])?,
                rs1: p.reg(ops[1])?,
                imm: 1,
            })])
        }
        "snez" => {
            need(2)?;
            Ok(vec![Proto::Ready(Inst::Op {
                op: AluOp::Sltu,
                rd: p.reg(ops[0])?,
                rs1: Reg::ZERO,
                rs2: p.reg(ops[1])?,
            })])
        }
        "nop" => {
            need(0)?;
            Ok(vec![Proto::Ready(Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                imm: 0,
            })])
        }
        "ecall" => {
            need(0)?;
            Ok(vec![Proto::Ready(Inst::Ecall)])
        }
        other => Err(p.err(format!("unknown mnemonic '{other}'"))),
    }
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for marker in ["#", ";", "//"] {
        if let Some(pos) = line.find(marker) {
            end = end.min(pos);
        }
    }
    &line[..end]
}

/// Assembles `source` into a [`Program`] based at `base`.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics/registers, duplicate or undefined labels, and
/// out-of-range immediates or branch offsets.
pub fn assemble(source: &str, base: u64) -> Result<Program, AsmError> {
    // Pass 1: parse, expand pseudos, place labels.
    let mut protos: Vec<(usize, Proto)> = Vec::new();
    let mut labels: HashMap<String, u64> = HashMap::new();
    for (idx, raw_line) in source.lines().enumerate() {
        let p = Parser {
            line: idx + 1,
            text: raw_line,
        };
        let mut text = strip_comment(p.text).trim();
        while let Some(colon) = text.find(':') {
            let name = text[..colon].trim();
            // A leading digit is rejected so the definition grammar matches
            // the reference grammar: digit-leading branch targets parse as
            // numeric relative offsets, never as label references.
            if name.is_empty()
                || name.chars().next().is_some_and(|c| c.is_ascii_digit())
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                return Err(p.err(format!("invalid label definition '{name}'")));
            }
            let addr = base + 4 * protos.len() as u64;
            if labels.insert(name.to_owned(), addr).is_some() {
                return Err(p.err(format!("duplicate label '{name}'")));
            }
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
        for proto in parse_inst(&mnemonic.to_lowercase(), rest, &p)? {
            protos.push((p.line, proto));
        }
    }

    // Pass 2: resolve targets and encode.
    let mut insts = Vec::with_capacity(protos.len());
    for (pos, (line, proto)) in protos.iter().enumerate() {
        let pc = base + 4 * pos as u64;
        let p = Parser {
            line: *line,
            text: "",
        };
        let resolve = |target: &Target| -> Result<i64, AsmError> {
            match target {
                Target::Rel(offset) => Ok(*offset),
                Target::Label(name) => labels
                    .get(name)
                    .map(|&addr| addr as i64 - pc as i64)
                    .ok_or_else(|| p.err(format!("undefined label '{name}'"))),
            }
        };
        let inst = match proto {
            Proto::Ready(inst) => *inst,
            Proto::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let offset = resolve(target)?;
                if !(-4096..=4094).contains(&offset) || offset % 2 != 0 {
                    return Err(p.err(format!("branch offset {offset} out of range")));
                }
                Inst::Branch {
                    cond: *cond,
                    rs1: *rs1,
                    rs2: *rs2,
                    imm: offset as i32,
                }
            }
            Proto::Jal { rd, target } => {
                let offset = resolve(target)?;
                if !(-(1 << 20)..(1 << 20)).contains(&offset) || offset % 2 != 0 {
                    return Err(p.err(format!("jump offset {offset} out of range")));
                }
                Inst::Jal {
                    rd: *rd,
                    imm: offset as i32,
                }
            }
        };
        insts.push(inst);
    }
    let words = insts.iter().map(Inst::encode).collect();
    Ok(Program {
        base,
        insts,
        words,
        labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asm(src: &str) -> Program {
        assemble(src, 0x1000).expect("assembles")
    }

    #[test]
    fn labels_resolve_forwards_and_backwards() {
        let prog = asm("top:\n  addi a0, a0, 1\n  bne a0, a1, top\n  beq a0, a1, done\n  nop\ndone:\n  ecall\n");
        assert_eq!(prog.len(), 5);
        assert_eq!(
            prog.insts[1],
            Inst::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::A0,
                rs2: Reg::A1,
                imm: -4
            }
        );
        assert_eq!(
            prog.insts[2],
            Inst::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                imm: 8
            }
        );
        assert_eq!(prog.labels["done"], 0x1000 + 16);
    }

    #[test]
    fn li_expands_by_immediate_size() {
        assert_eq!(asm("li t0, -5").len(), 1);
        let big = asm("li t0, 0x12345");
        assert_eq!(big.len(), 2);
        assert!(matches!(big.insts[0], Inst::Lui { .. }));
        assert!(matches!(
            big.insts[1],
            Inst::OpImm {
                op: AluImmOp::Addiw,
                ..
            }
        ));
        // A label after the expansion still lands on the right address.
        let prog = asm("li t0, 0x12345\nhere:\n  j here");
        assert_eq!(prog.labels["here"], 0x1000 + 8);
    }

    #[test]
    fn pseudo_instructions_lower_to_base_forms() {
        let prog =
            asm("mv a0, a1\nneg a1, a2\nseqz a2, a3\nsnez a3, a4\nj 0\nret\nnop\nnot t0, t1");
        assert_eq!(
            prog.insts[0],
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::A1,
                imm: 0
            }
        );
        assert_eq!(
            prog.insts[4],
            Inst::Jal {
                rd: Reg::ZERO,
                imm: 0
            }
        );
        assert_eq!(
            prog.insts[5],
            Inst::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                imm: 0
            }
        );
    }

    #[test]
    fn swapped_branches_swap_operands() {
        let prog = asm("ble a0, a1, 8\nbgt a0, a1, 8");
        assert_eq!(
            prog.insts[0],
            Inst::Branch {
                cond: BranchCond::Ge,
                rs1: Reg::A1,
                rs2: Reg::A0,
                imm: 8
            }
        );
        assert_eq!(
            prog.insts[1],
            Inst::Branch {
                cond: BranchCond::Lt,
                rs1: Reg::A1,
                rs2: Reg::A0,
                imm: 8
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let prog = asm("# header\n  ; alt comment\n\n  add a0, a1, a2 // trailing\n");
        assert_eq!(prog.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus a0, a1\n", 0).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));
        let err = assemble("beq a0, a1, nowhere", 0).unwrap_err();
        assert!(err.message.contains("undefined label"));
        let err = assemble("lw a0, 5000(sp)", 0).unwrap_err();
        assert!(err.message.contains("12 bits"));
        // Double signs must error, not silently flip the value.
        assert!(assemble("li t0, --5", 0).is_err());
        assert!(assemble("li t0, 0x-5", 0).is_err());
        assert!(assemble("li t0, -0x-5", 0).is_err());
        let err = assemble("dup:\ndup:\n", 0).unwrap_err();
        assert!(err.message.contains("duplicate"));
        // A digit-leading label would be unreferencable (targets starting
        // with a digit parse as numeric offsets), so defining one is an
        // error rather than a silent mis-assembly.
        let err = assemble("124:\n  j 124\n", 0).unwrap_err();
        assert!(err.message.contains("invalid label definition"));
    }

    #[test]
    fn disassembly_reassembles_to_the_same_encoding() {
        let src = "lw a0, -16(sp)\nsd a1, 8(t0)\nbne t0, zero, -8\njal ra, 16\nmulw s0, s1, s2\nlui t3, 0x12\necall";
        let prog = asm(src);
        for inst in &prog.insts {
            let re = assemble(&inst.to_string(), 0x1000).expect("disassembly parses");
            assert_eq!(re.insts[0], *inst, "{inst}");
        }
    }

    #[test]
    fn memory_operand_with_empty_offset_defaults_to_zero() {
        let prog = asm("ld a0, (sp)");
        assert_eq!(
            prog.insts[0],
            Inst::Load {
                width: MemWidth::D,
                signed: true,
                rd: Reg::A0,
                rs1: Reg::SP,
                imm: 0
            }
        );
    }
}
