//! The shipped RV64IM kernels and their launch configurations.
//!
//! Each [`Kernel`] embeds one assembly source from `kernels/` and knows how
//! to wire its input registers for a given problem size. A
//! [`KernelRun`] (kernel × size) is the unit the simulator treats as a
//! workload; [`KernelRun::emulator`] yields a ready-to-run [`Emulator`].
//!
//! Every kernel follows the same conventions: inputs arrive in `a0` (data
//! base address), `a1` (problem size) and optionally `a2`; the kernel
//! initialises its own data in-program (memory starts zeroed), leaves a
//! checksum/result in `a0` and halts with `ecall`. [`Kernel::reference`]
//! computes the expected `a0` in Rust, so tests can pin the emulator's
//! final architectural state against an independent model.

use crate::asm::{assemble, Program};
use crate::emu::{Emulator, CODE_BASE, DATA_BASE};
use crate::isa::Reg;

/// Stride used by the list-walk kernel when linking nodes.
const LISTWALK_STRIDE: u64 = 7;

/// The shipped kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Dense int64 matrix multiply (size = matrix dimension).
    Matmul,
    /// Pointer-chasing linked-list walk (size = node count; 4×size steps).
    ListWalk,
    /// Sieve of Eratosthenes (size = limit N).
    Sieve,
    /// Recursive Fibonacci (size = n).
    FibRec,
    /// Streaming init + copy + checksum (size = doubleword count).
    Memcpy,
    /// 3×3 box blur over an n×n grid (size = n).
    BoxBlur,
}

impl Kernel {
    /// All shipped kernels, in display order.
    pub const ALL: [Kernel; 6] = [
        Kernel::Matmul,
        Kernel::ListWalk,
        Kernel::Sieve,
        Kernel::FibRec,
        Kernel::Memcpy,
        Kernel::BoxBlur,
    ];

    /// The kernel's short name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Matmul => "matmul",
            Kernel::ListWalk => "listwalk",
            Kernel::Sieve => "sieve",
            Kernel::FibRec => "fibrec",
            Kernel::Memcpy => "memcpy",
            Kernel::BoxBlur => "boxblur",
        }
    }

    /// The embedded assembly source.
    #[must_use]
    pub fn source(self) -> &'static str {
        match self {
            Kernel::Matmul => include_str!("../kernels/matmul.asm"),
            Kernel::ListWalk => include_str!("../kernels/listwalk.asm"),
            Kernel::Sieve => include_str!("../kernels/sieve.asm"),
            Kernel::FibRec => include_str!("../kernels/fibrec.asm"),
            Kernel::Memcpy => include_str!("../kernels/memcpy.asm"),
            Kernel::BoxBlur => include_str!("../kernels/boxblur.asm"),
        }
    }

    /// The default problem size used by the figure binaries and goldens:
    /// large enough for a few thousand to a few tens of thousands of dynamic
    /// instructions, small enough that a full three-family sweep stays fast.
    #[must_use]
    pub fn default_size(self) -> u64 {
        match self {
            Kernel::Matmul => 8,
            Kernel::ListWalk => 512,
            Kernel::Sieve => 1000,
            Kernel::FibRec => 14,
            Kernel::Memcpy => 1024,
            Kernel::BoxBlur => 12,
        }
    }

    /// A [`KernelRun`] at the default size.
    #[must_use]
    pub fn default_run(self) -> KernelRun {
        KernelRun::new(self, self.default_size())
    }

    /// Bytes of data memory (from [`DATA_BASE`]) a run of `size` touches;
    /// `None` if the footprint overflows `u64`.
    #[must_use]
    pub fn data_bytes(self, size: u64) -> Option<u64> {
        match self {
            // a, b and c matrices of size² doublewords each.
            Kernel::Matmul => size.checked_mul(size)?.checked_mul(24),
            // 16-byte nodes.
            Kernel::ListWalk => size.checked_mul(16),
            // One flag byte per candidate.
            Kernel::Sieve => Some(size),
            // Stack only (grows down from the top of memory).
            Kernel::FibRec => Some(0),
            // Source and destination arrays of size doublewords.
            Kernel::Memcpy => size.checked_mul(16),
            // Input and output grids of size² doublewords.
            Kernel::BoxBlur => size.checked_mul(size)?.checked_mul(16),
        }
    }

    /// Assembles the kernel source at [`CODE_BASE`].
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to assemble (a build-time bug,
    /// caught by the `all_kernels_assemble` test).
    #[must_use]
    pub fn program(self) -> Program {
        match assemble(self.source(), CODE_BASE) {
            Ok(program) => program,
            Err(err) => panic!("kernel {} does not assemble: {err}", self.name()),
        }
    }

    /// The expected final `a0` for a run of `size`, computed by an
    /// independent Rust model of each kernel.
    #[must_use]
    pub fn reference(self, size: u64) -> u64 {
        match self {
            Kernel::Matmul => {
                let dim = size;
                let a = |i: u64, k: u64| i * dim + k;
                let b = |k: u64, j: u64| ((k * dim + j) & 7) + 1;
                let mut sum = 0u64;
                for i in 0..dim {
                    for j in 0..dim {
                        let mut acc = 0u64;
                        for k in 0..dim {
                            acc = acc.wrapping_add(a(i, k).wrapping_mul(b(k, j)));
                        }
                        sum = sum.wrapping_add(acc);
                    }
                }
                sum
            }
            Kernel::ListWalk => {
                let (n, steps) = (size, 4 * size);
                let mut node = 0u64;
                let mut sum = 0u64;
                for _ in 0..steps {
                    sum = sum.wrapping_add(node);
                    node = (node + LISTWALK_STRIDE) % n;
                }
                sum
            }
            Kernel::Sieve => {
                let n = size as usize;
                let mut composite = vec![false; n.max(2)];
                let mut p = 2;
                while p * p < n {
                    if !composite[p] {
                        let mut m = p * p;
                        while m < n {
                            composite[m] = true;
                            m += p;
                        }
                    }
                    p += 1;
                }
                (2..n).filter(|&i| !composite[i]).count() as u64
            }
            Kernel::FibRec => {
                let (mut a, mut b) = (0u64, 1u64);
                for _ in 0..size {
                    (a, b) = (b, a.wrapping_add(b));
                }
                a
            }
            Kernel::Memcpy => (0..size).map(|i| 3 * i + 1).sum(),
            Kernel::BoxBlur => {
                let n = size as i64;
                let input = |x: i64, y: i64| (7 * x + 13 * y) & 63;
                let mut sum = 0u64;
                for y in 1..n - 1 {
                    for x in 1..n - 1 {
                        let mut acc = 0i64;
                        for dy in -1..=1 {
                            for dx in -1..=1 {
                                acc += input(x + dx, y + dy);
                            }
                        }
                        sum = sum.wrapping_add((acc / 9) as u64);
                    }
                }
                sum
            }
        }
    }
}

/// A kernel together with its problem size: one execution-driven workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelRun {
    /// The kernel.
    pub kernel: Kernel,
    /// The problem size (see [`Kernel`] for each kernel's interpretation).
    pub size: u64,
}

impl KernelRun {
    /// Creates a run of `kernel` at `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or the kernel's data footprint does not
    /// fit the emulator memory (leaving 64 KiB of stack headroom) — an
    /// upfront check so an oversized sweep job fails at construction
    /// rather than deep inside a worker thread.
    #[must_use]
    pub fn new(kernel: Kernel, size: u64) -> Self {
        assert!(size > 0, "kernel size must be positive");
        const STACK_HEADROOM: u64 = 64 * 1024;
        let budget = crate::emu::MEM_SIZE - DATA_BASE - STACK_HEADROOM;
        let bytes = kernel.data_bytes(size);
        assert!(
            bytes.is_some_and(|b| b <= budget),
            "{}/{size} needs {bytes:?} data bytes but only {budget} fit the emulator memory",
            kernel.name()
        );
        KernelRun { kernel, size }
    }

    /// The display name, `<kernel>/<size>`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}/{}", self.kernel.name(), self.size)
    }

    /// Builds a ready-to-run emulator: program assembled at
    /// [`CODE_BASE`], `a0` = [`DATA_BASE`], `a1` = size, and for the list
    /// walk `a2` = 4×size steps.
    #[must_use]
    pub fn emulator(&self) -> Emulator {
        let program = self.kernel.program();
        let mut emu = Emulator::new(&program);
        emu.set_reg(Reg::A0, DATA_BASE);
        emu.set_reg(Reg::A1, self.size);
        if self.kernel == Kernel::ListWalk {
            emu.set_reg(Reg::A2, 4 * self.size);
        }
        emu
    }

    /// The expected final `a0` (the kernel's checksum/result).
    #[must_use]
    pub fn expected_result(&self) -> u64 {
        self.kernel.reference(self.size)
    }
}

impl From<Kernel> for KernelRun {
    fn from(kernel: Kernel) -> Self {
        kernel.default_run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_assemble() {
        for kernel in Kernel::ALL {
            let program = kernel.program();
            assert!(!program.is_empty(), "{} is empty", kernel.name());
        }
    }

    #[test]
    fn every_kernel_matches_its_reference_model() {
        for kernel in Kernel::ALL {
            let run = kernel.default_run();
            let mut emu = run.emulator();
            emu.run_to_halt();
            assert!(
                emu.ran_to_completion(),
                "{} did not halt cleanly",
                run.name()
            );
            assert_eq!(
                emu.reg(Reg::A0),
                run.expected_result(),
                "{} produced the wrong checksum",
                run.name()
            );
        }
    }

    #[test]
    fn kernels_match_the_reference_at_non_default_sizes() {
        for (kernel, size) in [
            (Kernel::Matmul, 5),
            (Kernel::ListWalk, 33),
            (Kernel::Sieve, 100),
            (Kernel::FibRec, 9),
            (Kernel::Memcpy, 17),
            (Kernel::BoxBlur, 5),
        ] {
            let run = KernelRun::new(kernel, size);
            let mut emu = run.emulator();
            emu.run_to_halt();
            assert_eq!(emu.reg(Reg::A0), run.expected_result(), "{}", run.name());
        }
    }

    #[test]
    fn known_small_results() {
        assert_eq!(Kernel::FibRec.reference(10), 55);
        assert_eq!(Kernel::Sieve.reference(30), 10, "primes below 30");
        assert_eq!(Kernel::Memcpy.reference(4), 1 + 4 + 7 + 10);
    }

    #[test]
    fn dynamic_lengths_are_modest() {
        for kernel in Kernel::ALL {
            let mut emu = kernel.default_run().emulator();
            let retired = emu.run_to_halt();
            assert!(
                (1_000..200_000).contains(&retired),
                "{}: {retired} dynamic instructions",
                kernel.name()
            );
        }
    }

    #[test]
    fn run_names_include_the_size() {
        assert_eq!(Kernel::Matmul.default_run().name(), "matmul/8");
        assert_eq!(KernelRun::new(Kernel::Sieve, 50).name(), "sieve/50");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sized_runs_are_rejected() {
        let _ = KernelRun::new(Kernel::Matmul, 0);
    }

    #[test]
    #[should_panic(expected = "emulator memory")]
    fn oversized_runs_are_rejected_at_construction() {
        // 3 matrices × 300² × 8 bytes ≈ 2.2 MB > the 1 MiB flat memory.
        let _ = KernelRun::new(Kernel::Matmul, 300);
    }

    #[test]
    fn footprints_of_default_runs_fit_comfortably() {
        for kernel in Kernel::ALL {
            let bytes = kernel
                .data_bytes(kernel.default_size())
                .expect("no overflow");
            assert!(
                bytes < crate::emu::MEM_SIZE / 2,
                "{}: {bytes} bytes",
                kernel.name()
            );
        }
    }
}
