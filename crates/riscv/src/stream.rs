//! Cracking executed RV64IM instructions into the simulator's
//! [`MicroOp`] stream.
//!
//! [`RiscvStream`] drives an [`Emulator`] and emits one [`MicroOp`] per
//! retired instruction — the dynamic *correct-path* stream the trace-driven
//! core models consume. The cracking rules:
//!
//! * ALU and upper-immediate operations map to [`OpClass::IntAlu`];
//!   multiply/divide/remainder map to [`OpClass::IntMul`] (the engine has
//!   no separate divider; the multiplier pool's latency stands in);
//! * loads and stores carry their real effective address and access width;
//! * conditional branches carry the architecturally resolved direction and
//!   taken-target; `jal`/`jalr` become [`BranchKind::Jump`],
//!   [`BranchKind::Call`] or [`BranchKind::Return`] following the standard
//!   `ra` link-register hints;
//! * `ecall` (the halt convention) retires as a [`OpClass::Nop`];
//! * reads of `x0` create no source dependency (the register is hardwired)
//!   and writes to `x0` produce no destination — except loads, whose
//!   destination is kept so the micro-op stays well-formed.
//!
//! The stream is finite (it ends when the kernel halts) and fully
//! deterministic: two streams for the same [`KernelRun`] are bit-identical.

use crate::emu::{Emulator, Retired};
use crate::isa::{Inst, Reg};
use crate::kernels::KernelRun;
use dkip_model::instr::{BranchInfo, BranchKind};
use dkip_model::{ArchReg, MicroOp, OpClass};

/// An execution-driven [`MicroOp`] stream over a RISC-V kernel.
#[derive(Debug, Clone)]
pub struct RiscvStream {
    emu: Emulator,
    seq: u64,
}

impl RiscvStream {
    /// Creates the stream for a kernel run.
    #[must_use]
    pub fn new(run: &KernelRun) -> Self {
        RiscvStream {
            emu: run.emulator(),
            seq: 0,
        }
    }

    /// Wraps an already-configured emulator.
    #[must_use]
    pub fn from_emulator(emu: Emulator) -> Self {
        RiscvStream { emu, seq: 0 }
    }

    /// The underlying emulator (e.g. to inspect architectural state after
    /// the stream is exhausted).
    #[must_use]
    pub fn emulator(&self) -> &Emulator {
        &self.emu
    }

    /// Functionally fast-forwards up to `n` instructions without cracking
    /// them into micro-ops, returning how many were actually skipped (fewer
    /// only if the kernel halts first).
    ///
    /// The emulator executes every skipped instruction architecturally, so
    /// registers and memory are exactly as if the instructions had been
    /// consumed through [`Iterator::next`]; only the micro-op construction
    /// is elided. Sequence numbers stay dense across the gap: the first
    /// micro-op after a fast-forward carries `seq` as if the skipped
    /// instructions had been emitted. This is the sampled-simulation mode's
    /// cheap path between detailed windows.
    pub fn fast_forward(&mut self, n: u64) -> u64 {
        let mut skipped = 0;
        while skipped < n {
            if self.emu.step().is_none() {
                break;
            }
            skipped += 1;
        }
        self.seq += skipped;
        skipped
    }
}

fn arch(reg: Reg) -> ArchReg {
    ArchReg::int(reg.index())
}

/// The source-register slots of an instruction, with `x0` filtered out.
fn sources(inst: &Inst) -> [Option<Reg>; 2] {
    let (a, b) = match *inst {
        Inst::Op { rs1, rs2, .. } | Inst::Branch { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
        Inst::Store { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
        Inst::OpImm { rs1, .. } | Inst::Load { rs1, .. } | Inst::Jalr { rs1, .. } => {
            (Some(rs1), None)
        }
        Inst::Lui { .. } | Inst::Auipc { .. } | Inst::Jal { .. } | Inst::Ecall => (None, None),
    };
    let keep = |r: Option<Reg>| r.filter(|r| !r.is_zero());
    [keep(a), keep(b)]
}

/// The destination register, with `x0` filtered out (kept for loads so the
/// micro-op stays well-formed; the LLBV treats `x0` like any register, which
/// is harmless because no kernel reads a value it wrote to `x0`).
fn destination(inst: &Inst) -> Option<Reg> {
    match *inst {
        Inst::Load { rd, .. } => Some(rd),
        Inst::Op { rd, .. }
        | Inst::OpImm { rd, .. }
        | Inst::Lui { rd, .. }
        | Inst::Auipc { rd, .. }
        | Inst::Jal { rd, .. }
        | Inst::Jalr { rd, .. } => Some(rd).filter(|r| !r.is_zero()),
        Inst::Store { .. } | Inst::Branch { .. } | Inst::Ecall => None,
    }
}

/// Cracks one retired instruction into a [`MicroOp`] with sequence number
/// `seq`.
#[must_use]
pub fn crack(retired: &Retired, seq: u64) -> MicroOp {
    let inst = &retired.inst;
    let class = match inst {
        Inst::Op { op, .. } if op.is_muldiv() => OpClass::IntMul,
        Inst::Op { .. } | Inst::OpImm { .. } | Inst::Lui { .. } | Inst::Auipc { .. } => {
            OpClass::IntAlu
        }
        Inst::Load { .. } => OpClass::Load,
        Inst::Store { .. } => OpClass::Store,
        Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. } => OpClass::Branch,
        Inst::Ecall => OpClass::Nop,
    };
    let mut op = MicroOp::new(seq, retired.pc, class);
    for src in sources(inst).into_iter().flatten() {
        op = op.with_src(arch(src));
    }
    if let Some(dst) = destination(inst) {
        op = op.with_dst(arch(dst));
    }
    if let Some(addr) = retired.mem_addr {
        op = op.with_mem_addr(addr);
        op.mem_size = match inst {
            Inst::Load { width, .. } | Inst::Store { width, .. } => width.bytes(),
            _ => unreachable!("only memory instructions carry an address"),
        };
    }
    match *inst {
        Inst::Branch { imm, .. } => {
            op = op.with_branch(BranchInfo {
                kind: BranchKind::Conditional,
                taken: retired.branch_taken(),
                target: retired.pc.wrapping_add(imm as i64 as u64),
            });
        }
        Inst::Jal { rd, .. } => {
            let kind = if rd == Reg::RA {
                BranchKind::Call
            } else {
                BranchKind::Jump
            };
            op = op.with_branch(BranchInfo {
                kind,
                taken: true,
                target: retired.next_pc,
            });
        }
        Inst::Jalr { rd, rs1, .. } => {
            let kind = if rd == Reg::RA {
                BranchKind::Call
            } else if rd.is_zero() && rs1 == Reg::RA {
                BranchKind::Return
            } else {
                BranchKind::Jump
            };
            op = op.with_branch(BranchInfo {
                kind,
                taken: true,
                target: retired.next_pc,
            });
        }
        _ => {}
    }
    op
}

impl Iterator for RiscvStream {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        let retired = self.emu.step()?;
        let op = crack(&retired, self.seq);
        self.seq += 1;
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Kernel;
    use dkip_model::RegClass;

    fn stream(kernel: Kernel) -> Vec<MicroOp> {
        RiscvStream::new(&kernel.default_run()).collect()
    }

    #[test]
    fn all_kernels_emit_well_formed_dense_streams() {
        for kernel in Kernel::ALL {
            let ops = stream(kernel);
            assert!(ops.len() > 1_000, "{} too short", kernel.name());
            for (idx, op) in ops.iter().enumerate() {
                assert!(op.is_well_formed(), "{}: bad op {op}", kernel.name());
                assert_eq!(op.seq, idx as u64, "{}: seq not dense", kernel.name());
                assert!(op.srcs.iter().flatten().all(|r| r.class() == RegClass::Int));
            }
        }
    }

    #[test]
    fn memory_ops_carry_real_addresses_and_widths() {
        let ops = stream(Kernel::Sieve);
        let stores: Vec<_> = ops.iter().filter(|op| op.is_store()).collect();
        assert!(!stores.is_empty());
        // The sieve stores flag bytes.
        assert!(stores.iter().all(|op| op.mem_size == 1));
        assert!(stores.iter().all(|op| op.mem_addr.is_some()));
        let dword_loads = stream(Kernel::Matmul)
            .into_iter()
            .filter(|op| op.is_load())
            .all(|op| op.mem_size == 8);
        assert!(dword_loads, "matmul loads are 8-byte");
    }

    #[test]
    fn branch_outcomes_are_architecturally_correct() {
        let ops = stream(Kernel::FibRec);
        let conds: Vec<_> = ops.iter().filter(|op| op.is_conditional_branch()).collect();
        assert!(!conds.is_empty());
        let taken = conds.iter().filter(|op| op.branch.unwrap().taken).count();
        assert!(taken > 0 && taken < conds.len(), "both directions occur");
        // fibrec's calls/returns show up as Call/Return branch kinds.
        let kinds: Vec<BranchKind> = ops
            .iter()
            .filter_map(|op| op.branch.map(|b| b.kind))
            .collect();
        assert!(kinds.contains(&BranchKind::Call));
        assert!(kinds.contains(&BranchKind::Return));
    }

    #[test]
    fn pointer_chase_loads_depend_on_prior_load_results() {
        let run = Kernel::ListWalk.default_run();
        let ops: Vec<_> = RiscvStream::new(&run).collect();
        // In the walk phase the chase load's base register was written by the
        // previous chase load: find a load whose source equals its own dst.
        let self_chasing = ops
            .iter()
            .filter(|op| op.is_load() && op.dst.is_some())
            .filter(|op| op.srcs[0] == op.dst)
            .count();
        assert!(self_chasing as u64 >= 4 * run.size, "chase loads present");
    }

    #[test]
    fn x0_never_appears_as_a_dependency_source() {
        for kernel in Kernel::ALL {
            let zero = ArchReg::int(0);
            for op in stream(kernel) {
                assert!(
                    op.sources().all(|src| src != zero),
                    "{}: {op}",
                    kernel.name()
                );
                if !op.is_load() {
                    assert_ne!(op.dst, Some(zero), "{}: {op}", kernel.name());
                }
            }
        }
    }

    #[test]
    fn streams_are_bit_identical_across_instantiations() {
        for kernel in [Kernel::Matmul, Kernel::ListWalk] {
            let a = stream(kernel);
            let b = stream(kernel);
            assert_eq!(a, b, "{}", kernel.name());
        }
    }

    #[test]
    fn the_last_op_is_the_halting_ecall() {
        let ops = stream(Kernel::Memcpy);
        assert_eq!(ops.last().unwrap().class, OpClass::Nop);
    }

    #[test]
    fn fast_forward_is_equivalent_to_consuming_the_stream() {
        // Skipping N instructions leaves the emulator (registers, memory,
        // pc) and the remaining micro-op stream — including sequence
        // numbers — exactly as if the N ops had been consumed normally.
        let run = Kernel::Sieve.default_run();
        let mut skipped = RiscvStream::new(&run);
        let mut consumed = RiscvStream::new(&run);
        let n = 5_000;
        assert_eq!(skipped.fast_forward(n), n);
        for _ in 0..n {
            assert!(consumed.next().is_some());
        }
        assert_eq!(skipped.emulator().regs(), consumed.emulator().regs());
        assert_eq!(skipped.emulator().pc(), consumed.emulator().pc());
        let rest_a: Vec<_> = skipped.collect();
        let rest_b: Vec<_> = consumed.collect();
        assert_eq!(rest_a, rest_b, "post-skip streams must be bit-identical");
    }

    #[test]
    fn fast_forward_stops_at_the_halt_and_reports_the_shortfall() {
        let prog = crate::asm::assemble("addi x1, x0, 7\necall", crate::emu::CODE_BASE).unwrap();
        let mut s = RiscvStream::from_emulator(crate::emu::Emulator::new(&prog));
        assert_eq!(s.fast_forward(1_000), 2, "program retires only two instrs");
        assert!(s.emulator().ran_to_completion());
        assert!(s.next().is_none());
        assert_eq!(s.fast_forward(10), 0, "exhaustion is sticky");
    }

    #[test]
    fn an_exhausted_stream_keeps_returning_none() {
        // PR 5 gotcha: the event-driven clock may poll a drained frontend
        // across skipped cycles, so exhaustion must be sticky — `next()`
        // stays `None` forever, it never panics or restarts.
        let prog = crate::asm::assemble("ecall", crate::emu::CODE_BASE).unwrap();
        let mut s = RiscvStream::from_emulator(crate::emu::Emulator::new(&prog));
        assert_eq!(s.next().map(|op| op.class), Some(OpClass::Nop));
        for _ in 0..1_000 {
            assert!(s.next().is_none());
        }
        assert!(s.emulator().ran_to_completion());
    }
}
