//! Criterion benches: one timed entry per paper artefact plus component
//! microbenchmarks.
//!
//! These benches measure *simulator* throughput while exercising exactly the
//! code paths each figure uses; the printed figures themselves are produced
//! by the `fig*` binaries in `src/bin`. Budgets are kept small so that
//! `cargo bench --workspace` completes in a few minutes.

use criterion::{criterion_group, criterion_main, Criterion};
use dkip_core::{run_dkip, DkipProcessor};
use dkip_kilo::run_kilo;
use dkip_mem::MemoryHierarchy;
use dkip_model::config::{BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig};
use dkip_ooo::{run_baseline, OooCore};
use dkip_sim::experiments;
use dkip_trace::{Benchmark, Suite, TraceGenerator};
use std::hint::black_box;

const BUDGET: u64 = 3_000;

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    group.sample_size(20);
    group.bench_function("trace_generation_swim_10k", |b| {
        b.iter(|| {
            let gen = TraceGenerator::new(Benchmark::Swim, 1);
            black_box(gen.take(10_000).count())
        });
    });
    group.bench_function("cache_hierarchy_100k_accesses", |b| {
        b.iter(|| {
            let mut mem = MemoryHierarchy::new(MemoryHierarchyConfig::mem_400()).unwrap();
            let mut sum = 0u64;
            for i in 0..100_000u64 {
                sum += mem.access(i.wrapping_mul(97) % (1 << 22), false, i).latency;
            }
            black_box(sum)
        });
    });
    group.finish();
}

fn bench_cores(c: &mut Criterion) {
    let mem = MemoryHierarchyConfig::mem_400();
    let mut group = c.benchmark_group("cores");
    group.sample_size(10);
    group.bench_function("r10_64_swim", |b| {
        b.iter(|| {
            black_box(run_baseline(
                &BaselineConfig::r10_64(),
                &mem,
                Benchmark::Swim,
                BUDGET,
                1,
            ))
        });
    });
    group.bench_function("kilo_1024_swim", |b| {
        b.iter(|| {
            black_box(run_kilo(
                &KiloConfig::kilo_1024(),
                &mem,
                Benchmark::Swim,
                BUDGET,
                1,
            ))
        });
    });
    group.bench_function("dkip_2048_swim", |b| {
        b.iter(|| {
            black_box(run_dkip(
                &DkipConfig::paper_default(),
                &mem,
                Benchmark::Swim,
                BUDGET,
                1,
            ))
        });
    });
    group.finish();
}

/// The event-driven clock on a memory-bound sweep: the same simulations with
/// quiesced-cycle skipping on vs forced single-stepping. The simulated
/// statistics are bit-identical (pinned by `tests/skip_equivalence.rs`);
/// only the host time differs, and this bench quantifies by how much.
fn bench_clock_skip(c: &mut Criterion) {
    let mem = MemoryHierarchyConfig::mem_1000();
    let mut group = c.benchmark_group("clock_skip");
    group.sample_size(10);
    for (mode, single_step) in [("skip_on", false), ("skip_off", true)] {
        let mem_cfg = mem.clone();
        group.bench_function(&format!("r10_64_swim_mem1000_{mode}"), move |b| {
            b.iter(|| {
                let hierarchy = MemoryHierarchy::new(mem_cfg.clone()).unwrap();
                let mut core = OooCore::from_baseline(&BaselineConfig::r10_64(), hierarchy);
                core.set_single_step(single_step);
                let mut trace = TraceGenerator::new(Benchmark::Swim, 1);
                black_box(core.run(&mut trace, BUDGET))
            });
        });
        let mem_cfg = mem.clone();
        group.bench_function(&format!("dkip_2048_gcc_mem1000_{mode}"), move |b| {
            b.iter(|| {
                let hierarchy = MemoryHierarchy::new(mem_cfg.clone()).unwrap();
                let mut proc = DkipProcessor::new(DkipConfig::paper_default(), hierarchy);
                proc.set_single_step(single_step);
                let mut trace = TraceGenerator::new(Benchmark::Gcc, 1);
                black_box(proc.run(&mut trace, BUDGET))
            });
        });
    }
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let reps_int: Vec<Benchmark> = Benchmark::representative()
        .into_iter()
        .filter(|b| b.suite() == Suite::Int)
        .collect();
    let reps_fp: Vec<Benchmark> = Benchmark::representative()
        .into_iter()
        .filter(|b| b.suite() == Suite::Fp)
        .collect();
    let runner = dkip_sim::SweepRunner::from_env();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("table1", |b| b.iter(|| black_box(experiments::table1())));
    group.bench_function("fig01_window_specint", |b| {
        b.iter(|| {
            black_box(experiments::figure_window_scaling(
                Suite::Int,
                &reps_int,
                &[32, 256],
                BUDGET,
                &runner,
            ))
        });
    });
    group.bench_function("fig02_window_specfp", |b| {
        b.iter(|| {
            black_box(experiments::figure_window_scaling(
                Suite::Fp,
                &reps_fp,
                &[32, 256],
                BUDGET,
                &runner,
            ))
        });
    });
    group.bench_function("fig03_issue_histogram", |b| {
        b.iter(|| {
            black_box(experiments::figure3_issue_histogram(
                &reps_fp, BUDGET, &runner,
            ))
        });
    });
    group.bench_function("fig09_comparison", |b| {
        b.iter(|| {
            black_box(experiments::figure9_comparison(
                &reps_int, &reps_fp, BUDGET, &runner,
            ))
        });
    });
    group.bench_function("fig10_scheduler_sweep", |b| {
        b.iter(|| {
            black_box(experiments::figure10_scheduler_sweep(
                &reps_fp, 1_500, &runner,
            ))
        });
    });
    group.bench_function("fig11_cache_sweep_specint", |b| {
        b.iter(|| {
            black_box(experiments::figure_cache_sweep(
                Suite::Int,
                &reps_int,
                &[64, 512, 4096],
                1_500,
                &runner,
            ))
        });
    });
    group.bench_function("fig12_cache_sweep_specfp", |b| {
        b.iter(|| {
            black_box(experiments::figure_cache_sweep(
                Suite::Fp,
                &reps_fp,
                &[64, 512, 4096],
                1_500,
                &runner,
            ))
        });
    });
    group.bench_function("fig13_llib_occupancy_specint", |b| {
        b.iter(|| {
            black_box(experiments::figure_llib_occupancy(
                Suite::Int,
                &reps_int,
                BUDGET,
                &runner,
            ))
        });
    });
    group.bench_function("fig14_llib_occupancy_specfp", |b| {
        b.iter(|| {
            black_box(experiments::figure_llib_occupancy(
                Suite::Fp,
                &reps_fp,
                BUDGET,
                &runner,
            ))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_components,
    bench_cores,
    bench_clock_skip,
    bench_figures
);
criterion_main!(benches);
