//! Regenerates Figure 3: the decode→issue distance distribution on an
//! unbounded processor with 400-cycle memory (SpecFP).
use dkip_bench::FigureArgs;
use dkip_sim::experiments::figure3_issue_histogram;
use dkip_trace::Suite;
fn main() {
    let args = FigureArgs::from_env();
    let runner = args.runner();
    let hist = figure3_issue_histogram(
        &args.benchmarks(Suite::Fp),
        args.instr_budget(dkip_bench::DEFAULT_BUDGET),
        &runner,
    );
    println!("# Figure 3: decode->issue distance distribution (SpecFP, MEM-400, unbounded core)");
    println!("{:>12} {:>10} {:>8}", "distance", "count", "percent");
    for (lower, count) in hist.iter() {
        if count > 0 {
            println!(
                "{lower:>12} {count:>10} {:>7.2}%",
                100.0 * count as f64 / hist.total_samples() as f64
            );
        }
    }
    println!("overflow(>2000): {}", hist.overflow_count());
    println!(
        "fraction issuing within 300 cycles: {:.1}%",
        100.0 * hist.fraction_at_most(300)
    );
    args.finish_cache(&runner);
}
