//! Regenerates Figure 9: IPC of R10-64, R10-256, KILO-1024 and D-KIP-2048.
use dkip_bench::FigureArgs;
use dkip_sim::experiments::figure9_comparison;
use dkip_trace::Suite;
fn main() {
    let args = FigureArgs::from_env();
    let runner = args.runner();
    let fig = figure9_comparison(
        &args.benchmarks(Suite::Int),
        &args.benchmarks(Suite::Fp),
        args.instr_budget(dkip_bench::DEFAULT_BUDGET),
        &runner,
    );
    println!("{}", fig.render());
    args.finish_cache(&runner);
}
