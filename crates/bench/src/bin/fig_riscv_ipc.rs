//! RISC-V kernel IPC: runs every shipped RV64IM kernel to completion on
//! R10-64, KILO-1024 and D-KIP-2048 and prints the per-kernel IPC table.
//!
//! The positional budget argument (default: `RISCV_BUDGET`) is a cap, not a
//! length — the kernels are finite programs and each run ends when its
//! `ecall` retires.
use dkip_bench::FigureArgs;
use dkip_sim::experiments::{figure_riscv_ipc, riscv_kernel_runs, RISCV_BUDGET};
fn main() {
    let args = FigureArgs::from_env();
    let runner = args.runner();
    if args.full_suite {
        eprintln!("'full' selects the full SPEC suite and does not apply to the RISC-V kernels");
        std::process::exit(2);
    }
    let fig = figure_riscv_ipc(
        &riscv_kernel_runs(),
        args.instr_budget(RISCV_BUDGET),
        &runner,
    );
    println!("{}", fig.render());
    args.finish_cache(&runner);
}
