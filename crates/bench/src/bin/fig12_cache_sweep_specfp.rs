//! Regenerates Figure 12: impact of the L2 cache size on SpecFP.
use dkip_bench::FigureArgs;
use dkip_sim::experiments::figure_cache_sweep;
use dkip_sim::figure11_l2_sizes_kb;
use dkip_trace::Suite;
fn main() {
    let args = FigureArgs::from_env();
    let runner = args.runner();
    let fig = figure_cache_sweep(
        Suite::Fp,
        &args.benchmarks(Suite::Fp),
        &figure11_l2_sizes_kb(),
        args.instr_budget(dkip_bench::DEFAULT_BUDGET),
        &runner,
    );
    println!("{}", fig.render());
    args.finish_cache(&runner);
}
