//! Regenerates Figure 10: impact of CP/MP scheduling policy and queue sizes
//! on SpecFP.
use dkip_bench::FigureArgs;
use dkip_sim::experiments::figure10_scheduler_sweep;
use dkip_trace::Suite;
fn main() {
    let args = FigureArgs::from_env();
    let runner = args.runner();
    let fig = figure10_scheduler_sweep(
        &args.benchmarks(Suite::Fp),
        args.instr_budget(dkip_bench::DEFAULT_BUDGET),
        &runner,
    );
    println!("{}", fig.render());
    args.finish_cache(&runner);
}
