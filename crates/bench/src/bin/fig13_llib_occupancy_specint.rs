//! Regenerates Figure 13: maximum LLIB instructions and registers, SpecINT.
use dkip_bench::FigureArgs;
use dkip_sim::experiments::figure_llib_occupancy;
use dkip_trace::Suite;
fn main() {
    let args = FigureArgs::from_env();
    let runner = args.runner();
    let fig = figure_llib_occupancy(
        Suite::Int,
        &args.benchmarks(Suite::Int),
        args.instr_budget(dkip_bench::DEFAULT_BUDGET),
        &runner,
    );
    println!("{}", fig.render());
    args.finish_cache(&runner);
}
