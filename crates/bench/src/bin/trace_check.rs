//! Validates telemetry output files: the O3PipeView pipeline trace written
//! by `fig_timeseries` (line schema plus per-µop monotone stage timestamps)
//! and, optionally, an interval-metrics file (column schema plus monotone
//! cycle/committed columns). CI's trace-smoke job runs this over one kernel
//! per core family.
//!
//!     trace_check <trace-file> [metrics=<metrics-file>] [retires=N]
//!
//! Exits 0 when every check passes, 1 with a message naming the offending
//! line otherwise, and 2 on a malformed command line.
use dkip_model::telemetry::METRICS_COLUMNS;

fn fail(message: String) -> ! {
    eprintln!("trace_check: {message}");
    std::process::exit(1);
}

/// Parses `O3PipeView:<stage>:<tick>` and returns the tick.
fn stage_tick(line: &str, stage: &str, lineno: usize) -> u64 {
    let prefix = format!("O3PipeView:{stage}:");
    let Some(rest) = line.strip_prefix(&prefix) else {
        fail(format!(
            "line {lineno}: expected {prefix}<tick>, got {line:?}"
        ));
    };
    let tick = rest.split(':').next().unwrap_or_default();
    tick.parse::<u64>()
        .unwrap_or_else(|_| fail(format!("line {lineno}: non-numeric {stage} tick {tick:?}")))
}

/// Validates one seven-line O3PipeView block; returns the fetch-line seq.
fn check_block(lines: &[(usize, &str)]) -> u64 {
    let (lineno, fetch_line) = lines[0];
    // O3PipeView:fetch:<tick>:0x<pc>:0:<seq>:<label...>
    let fields: Vec<&str> = fetch_line.splitn(7, ':').collect();
    if fields.len() < 7 || fields[0] != "O3PipeView" || fields[1] != "fetch" {
        fail(format!(
            "line {lineno}: malformed fetch line {fetch_line:?}"
        ));
    }
    let fetch = fields[2]
        .parse::<u64>()
        .unwrap_or_else(|_| fail(format!("line {lineno}: non-numeric fetch tick")));
    if !fields[3].starts_with("0x") {
        fail(format!(
            "line {lineno}: PC must be hex, got {:?}",
            fields[3]
        ));
    }
    let seq = fields[5]
        .parse::<u64>()
        .unwrap_or_else(|_| fail(format!("line {lineno}: non-numeric seq {:?}", fields[5])));
    let mut prev = fetch;
    for (offset, stage) in ["decode", "rename", "dispatch", "issue", "complete"]
        .iter()
        .enumerate()
    {
        let (lineno, line) = lines[offset + 1];
        let tick = stage_tick(line, stage, lineno);
        if tick < prev {
            fail(format!(
                "line {lineno}: {stage} tick {tick} precedes the previous stage at {prev} \
                 (seq {seq})"
            ));
        }
        prev = tick;
    }
    let (lineno, retire_line) = lines[6];
    let retire = stage_tick(retire_line, "retire", lineno);
    if retire < prev {
        fail(format!(
            "line {lineno}: retire tick {retire} precedes complete at {prev} (seq {seq})"
        ));
    }
    if !retire_line.ends_with(":store:0") {
        fail(format!("line {lineno}: retire line must end in :store:0"));
    }
    seq
}

fn check_trace(path: &str, expected_retires: Option<u64>) -> u64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|err| fail(format!("cannot read {path}: {err}")));
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(idx, line)| (idx + 1, line))
        .collect();
    if !lines.len().is_multiple_of(7) {
        fail(format!(
            "{path}: {} lines is not a whole number of 7-line µop blocks",
            lines.len()
        ));
    }
    let mut retires = 0u64;
    for block in lines.chunks(7) {
        check_block(block);
        retires += 1;
    }
    if retires == 0 {
        fail(format!("{path}: empty trace"));
    }
    if let Some(expected) = expected_retires {
        if retires != expected {
            fail(format!(
                "{path}: {retires} retired µops, expected {expected}"
            ));
        }
    }
    retires
}

fn check_metrics(path: &str) -> u64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|err| fail(format!("cannot read {path}: {err}")));
    let jsonl = path.ends_with(".jsonl") || path.ends_with(".json");
    let mut rows = 0u64;
    let mut prev = (0u64, 0u64); // (cycle, committed)
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if jsonl {
            if !(line.starts_with("{\"interval\": ") && line.ends_with('}')) {
                fail(format!("{path} line {lineno}: malformed JSON-lines row"));
            }
            rows += 1;
            continue;
        }
        if lineno == 1 {
            let expected = METRICS_COLUMNS.join(",");
            if line != expected {
                fail(format!("{path}: header {line:?} != {expected:?}"));
            }
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != METRICS_COLUMNS.len() {
            fail(format!(
                "{path} line {lineno}: {} fields, expected {}",
                fields.len(),
                METRICS_COLUMNS.len()
            ));
        }
        rows += 1;
        if fields[0] != rows.to_string() {
            fail(format!(
                "{path} line {lineno}: interval column {:?} is not {rows}",
                fields[0]
            ));
        }
        let cycle = fields[1]
            .parse::<u64>()
            .unwrap_or_else(|_| fail(format!("{path} line {lineno}: non-numeric cycle")));
        let committed = fields[2]
            .parse::<u64>()
            .unwrap_or_else(|_| fail(format!("{path} line {lineno}: non-numeric committed")));
        if cycle <= prev.0 || committed <= prev.1 {
            fail(format!(
                "{path} line {lineno}: cycle/committed must be strictly increasing"
            ));
        }
        prev = (cycle, committed);
    }
    if rows == 0 {
        fail(format!("{path}: no metrics rows"));
    }
    rows
}

fn main() {
    let mut trace_path = None;
    let mut metrics_path = None;
    let mut retires = None;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("metrics=") {
            metrics_path = Some(v.to_owned());
        } else if let Some(v) = arg.strip_prefix("retires=") {
            match v.parse::<u64>() {
                Ok(n) => retires = Some(n),
                Err(_) => {
                    eprintln!("invalid retires={v:?}: expected an unsigned integer");
                    std::process::exit(2);
                }
            }
        } else if trace_path.is_none() {
            trace_path = Some(arg);
        } else {
            eprintln!("unexpected argument {arg:?}");
            eprintln!("usage: trace_check <trace-file> [metrics=<metrics-file>] [retires=N]");
            std::process::exit(2);
        }
    }
    let Some(trace_path) = trace_path else {
        eprintln!("usage: trace_check <trace-file> [metrics=<metrics-file>] [retires=N]");
        std::process::exit(2);
    };
    let retired = check_trace(&trace_path, retires);
    println!("{trace_path}: OK ({retired} µop blocks, monotone stage timestamps)");
    if let Some(metrics_path) = metrics_path {
        let rows = check_metrics(&metrics_path);
        println!("{metrics_path}: OK ({rows} metrics rows)");
    }
}
