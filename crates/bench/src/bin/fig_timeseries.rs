//! Intra-run telemetry dump: runs one (family, workload) pair with the
//! telemetry sink attached and writes an interval-metrics time series
//! (`metrics=PATH:INTERVAL`, CSV or JSON-lines by extension) and/or a
//! per-µop pipeline trace (`trace=PATH[:OPS]`, O3PipeView text loadable by
//! Konata). At least one backend must be requested — a probeless run would
//! silently produce nothing.
//!
//! Unlike the sweep binaries (whose `metrics=` fans out to per-job files),
//! the paths given here are used exactly as written: one run, one file.
//!
//! ```sh
//! cargo run -p dkip-bench --release --bin fig_timeseries -- \
//!     dkip riscv:matmul/8 metrics=runs/ts.csv:500 trace=runs/pipe.trace:20000
//! ```

use dkip_bench::TimeseriesArgs;
use dkip_model::config::{
    BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig, SampleConfig,
};
use dkip_model::Telemetry;
use dkip_sim::experiments::{RISCV_BUDGET, SEED};
use dkip_sim::Machine;

fn main() {
    let args = TimeseriesArgs::from_env();
    if args.metrics.is_none() && args.trace.is_none() {
        eprintln!("nothing to record: pass metrics=PATH:INTERVAL and/or trace=PATH[:OPS]");
        std::process::exit(2);
    }
    if SampleConfig::from_env().is_some() {
        eprintln!("telemetry requires exact simulation: unset DKIP_SAMPLE");
        std::process::exit(2);
    }
    let machine = match args.family.as_str() {
        "baseline" => Machine::Baseline(BaselineConfig::r10_64()),
        "kilo" => Machine::Kilo(KiloConfig::kilo_1024()),
        _ => Machine::Dkip(DkipConfig::paper_default()),
    };
    let mem = MemoryHierarchyConfig::mem_400();
    let default_budget = if args.workload.is_finite() {
        RISCV_BUDGET
    } else {
        dkip_bench::DEFAULT_BUDGET
    };
    let budget = args.budget.unwrap_or(default_budget);

    let mut telemetry = Telemetry::from_configs(args.metrics.as_ref(), args.trace.as_ref());
    let mut stream = args.workload.stream(SEED);
    let stats = machine.simulate_stream_probed(&mem, &mut stream, budget, Some(&mut telemetry));
    if let Err(err) = telemetry.write_files() {
        eprintln!("cannot write telemetry output: {err}");
        std::process::exit(1);
    }

    // A finite workload that ran to completion inside the trace window must
    // have a trace block for every committed instruction — the per-µop
    // probe contract the telemetry-invariance suite relies on.
    if args.trace.is_some() && args.workload.is_finite() && !telemetry.trace_budget_exhausted() {
        assert_eq!(
            telemetry.trace_retired(),
            stats.committed,
            "trace blocks must match committed instructions"
        );
    }

    println!(
        "# fig_timeseries {} {} budget={budget}",
        machine.name(),
        args.workload.name()
    );
    println!(
        "committed={} cycles={} ipc={:.4}",
        stats.committed,
        stats.cycles,
        stats.ipc()
    );
    if let Some(metrics) = &args.metrics {
        println!(
            "metrics: {} rows every {} instructions -> {}",
            telemetry.metrics_rows(),
            metrics.interval,
            metrics.path
        );
    }
    if let Some(trace) = &args.trace {
        println!(
            "trace: {} of {} budgeted µops retired -> {}",
            telemetry.trace_retired(),
            trace.ops,
            trace.path
        );
    }
}
