//! Prints the Table 2 / Table 3 default architecture parameters.
use dkip_model::config::{DkipConfig, MemoryHierarchyConfig};
fn main() {
    let cfg = DkipConfig::paper_default();
    let mem = MemoryHierarchyConfig::paper_default();
    println!("# Table 2/3: default D-KIP parameters");
    println!(
        "cache_processor: rob={} timer={} iq_int={} iq_fp={} sched={:?} fetch={}",
        cfg.cache_processor.rob_capacity,
        cfg.cache_processor.rob_timer,
        cfg.cache_processor.int_iq_capacity,
        cfg.cache_processor.fp_iq_capacity,
        cfg.cache_processor.sched,
        cfg.cache_processor.widths.fetch
    );
    println!(
        "llib: entries={} insertion={} llrf_banks={} regs_per_bank={}",
        cfg.llib.capacity,
        cfg.llib.insertion_rate,
        cfg.llib.llrf_banks,
        cfg.llib.llrf_regs_per_bank
    );
    println!(
        "memory_processor: queue={} sched={:?} decode={}",
        cfg.memory_processor.queue_capacity,
        cfg.memory_processor.sched,
        cfg.memory_processor.decode_width
    );
    println!(
        "address_processor: lsq={} ports={}",
        cfg.address_processor.lsq_capacity, cfg.address_processor.memory_ports
    );
    println!(
        "memory: l1={:?}B l1_lat={} l2={:?}B l2_lat={} mem_lat={}",
        mem.l1_size, mem.l1_latency, mem.l2_size, mem.l2_latency, mem.memory_latency
    );
}
