//! Regenerates Figure 2: IPC vs instruction-window size for SpecFP under
//! the six Table 1 memory subsystems.
use dkip_bench::FigureArgs;
use dkip_model::config::BaselineConfig;
use dkip_sim::experiments::figure_window_scaling;
use dkip_trace::Suite;
fn main() {
    let args = FigureArgs::from_env();
    let runner = args.runner();
    let windows = BaselineConfig::figure1_window_sizes();
    let fig = figure_window_scaling(
        Suite::Fp,
        &args.benchmarks(Suite::Fp),
        &windows,
        args.instr_budget(dkip_bench::DEFAULT_BUDGET),
        &runner,
    );
    println!("{}", fig.render());
    args.finish_cache(&runner);
}
