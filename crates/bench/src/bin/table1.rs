//! Regenerates Table 1 (memory-subsystem configurations).
fn main() {
    println!("{}", dkip_sim::experiments::table1().render());
}
