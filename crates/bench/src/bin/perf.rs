//! Simulator-throughput harness: times every core family on Spec and RISC-V
//! workloads and writes `BENCH_sim_throughput.json` (see
//! `dkip_bench::throughput`).
//!
//! Usage (all arguments optional, any order):
//!
//! ```text
//! perf [budget=N] [samples=N] [out=PATH] [check=PATH] [tolerance=F] [floor=F]
//! ```
//!
//! * `check=PATH` compares the fresh per-family geomean MIPS against a
//!   committed baseline report and exits 1 on a regression larger than
//!   `tolerance` (default 0.30).
//! * `floor=F` additionally requires the `dkip` family to reach `F` MIPS.

use dkip_bench::throughput::{run, PerfArgs};

fn main() {
    std::process::exit(run(&PerfArgs::from_env()));
}
