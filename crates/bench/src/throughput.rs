//! The simulator-throughput harness behind `make perf` and the `perf-smoke`
//! CI job.
//!
//! Each [`perf_jobs`] point runs one core family on one workload (a
//! synthetic SPEC benchmark or an execution-driven RISC-V kernel), timed by
//! the vendored criterion shim's measurement machinery ([`criterion::run_one`]
//! with [`criterion::Throughput::Elements`] = committed instructions), so
//! `cargo bench -p dkip-bench` and `make perf` share one timing + JSON code
//! path. The report is written as `BENCH_sim_throughput.json`:
//!
//! ```json
//! {
//!   "schema": "dkip-sim-throughput/v2",
//!   "entries": [ { "family": "dkip", "workload": "swim", "mips": ...,
//!                  "ticks_executed": ..., "cycles_skipped": ...,
//!                  "skipped_frac": ..., ... } ],
//!   "families": [ { "family": "dkip", "mips_geomean": ... } ]
//! }
//! ```
//!
//! `mips` is millions of *simulated covered instructions* per host second;
//! `cycles_per_sec` is simulated cycles per host second. Both are host
//! metadata — the simulated statistics themselves stay bit-identical and are
//! pinned by the golden snapshots, not by this harness. Schema v2 adds the
//! event-driven-clock telemetry: `ticks_executed` (real `tick()` calls),
//! `cycles_skipped` (quiesced cycles fast-forwarded over) and
//! `skipped_frac` (`cycles_skipped / cycles`); the harness additionally
//! fails if no D-KIP workload skipped a single cycle, so the skip path
//! cannot silently rot.
//!
//! Schema v3 adds the sampled-simulation rows: every entry carries a
//! `mode` ("exact" or "sampled") and `covered` (the instructions the run
//! spanned — committed for exact runs, detailed + functionally
//! fast-forwarded for sampled runs, the numerator of `mips`). The matrix
//! gains D-KIP points re-run under sampling ([`PERF_SAMPLE_RATE`]); the
//! harness fails unless each is at least [`SAMPLED_SPEEDUP_FLOOR`]× the
//! MIPS of its exact twin, so the sampled fast path cannot silently rot
//! either. Family geomeans (and therefore the committed
//! `ci/perf_baseline.json` comparison) are computed from exact entries
//! only.
//!
//! Schema v4 adds the best-sample figures `min_ns` / `mips_best` per entry
//! and `mips_best_geomean` per family (host scheduling noise is one-sided —
//! preemption only slows a sample — so best-of-N is far more stable than
//! the mean), plus host calibration: the probe-free RV64IM emulator is
//! timed as a host-speed control *immediately after each job's samples*
//! (`calib_mips_best` per entry) and the report records the overall
//! `calibrated_best_geomean` — the geomean over exact entries of
//! `mips_best / calib_mips_best`. The `telemetry_overhead=PATH` gate builds
//! on both: every perf job runs with the telemetry probe sink disabled
//! ([`Job::unprobed`]), and the gate fails if the calibrated geomean
//! regresses more than [`TELEMETRY_OVERHEAD_TOLERANCE`] against the
//! committed baseline — pinning that the per-stage `Option<&mut Telemetry>`
//! hooks stay near-free when `None`. Pairing each point with an adjacent
//! control (rather than calibrating once per run) cancels host throttling
//! and machine-class drift even when the host speed shifts *during* the
//! matrix, which absolute MIPS comparisons cannot survive.

use criterion::{run_one, Measurement, Throughput};
use dkip_model::config::{BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig};
use dkip_model::SampleConfig;
use dkip_riscv::{Kernel, KernelRun};
use dkip_sim::{Job, Machine, Workload};
use dkip_trace::Benchmark;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Default per-point instruction budget for `make perf`.
pub const DEFAULT_PERF_BUDGET: u64 = 150_000;

/// Default number of timed samples per point.
pub const DEFAULT_SAMPLES: usize = 3;

/// Default output file, relative to the invocation directory.
pub const DEFAULT_OUT: &str = "BENCH_sim_throughput.json";

/// Default tolerated per-family regression when checking against a committed
/// baseline (0.30 = a family may be up to 30% slower before the check
/// fails).
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// Sampling rate of the sampled-mode throughput rows: a sparse 10% detailed
/// fraction, chosen for speed. The accuracy of sampling is pinned elsewhere
/// (`tests/sampled_accuracy.rs`, at denser per-suite rates); these rows pin
/// its *host throughput*.
pub const PERF_SAMPLE_RATE: &str = "20000:1000:1000";

/// Minimum MIPS ratio each sampled D-KIP row must achieve over its exact
/// twin. Empirically sampling at [`PERF_SAMPLE_RATE`] reaches 4–5×; the
/// floor leaves headroom for host noise while still catching the sampled
/// path degrading into detailed-simulation cost.
pub const SAMPLED_SPEEDUP_FLOOR: f64 = 3.0;

/// Tolerated slowdown of the *calibrated* overall best-sample geomean for
/// the `telemetry_overhead=` gate: the disabled-probe hot path (every perf
/// job runs [`Job::unprobed`]) may cost at most 2% against the committed
/// pre-telemetry baseline. Deliberately much tighter than
/// [`DEFAULT_TOLERANCE`]: the probe sink is an `Option` branch per stage
/// and must stay near-free when `None`. A 2% wall-clock tolerance is only
/// statistically tenable because the comparison is host-calibrated — both
/// reports express each simulator point as a ratio of the probe-free
/// emulator control timed right next to it ([`measure_calibration`]),
/// cancelling host-speed drift that absolute MIPS comparisons cannot.
pub const TELEMETRY_OVERHEAD_TOLERANCE: f64 = 0.02;

/// Matrix size of the emulator calibration kernel (`matmul`): big enough
/// (~600k retired instructions, a few host-ms) that best-of-N timing is
/// stable, small enough to add negligible harness cost.
pub const CALIBRATION_SIZE: u64 = 32;

/// Timed samples per calibration pass. Fixed rather than inherited from
/// `samples=`: each iteration is only a few host-ms, so a deep best-of-N is
/// nearly free and the control needs a tighter minimum than the matrix
/// points to hold a 2% gate.
pub const CALIBRATION_SAMPLES: usize = 25;

/// Times the host-speed control of the `telemetry_overhead=` gate: a
/// probe-free workload — the functional RV64IM emulator running
/// `matmul/`[`CALIBRATION_SIZE`] to completion, fresh machine state per
/// iteration, best of [`CALIBRATION_SAMPLES`] samples — and returns its
/// best-sample MIPS. The emulator has no telemetry hooks at all, so
/// expressing each simulator point as a ratio of a control measured
/// *adjacent to it in time* cancels host throttling, steal time and
/// machine-class differences out of the baseline comparison, while a real
/// slowdown of the cores' disabled-probe path does not cancel (it moves
/// the simulators but not the emulator).
#[must_use]
pub fn measure_calibration() -> f64 {
    let run = KernelRun::new(Kernel::Matmul, CALIBRATION_SIZE);
    let pristine = run.emulator();
    let retired = pristine.clone().run_to_halt();
    let measurement = run_one(
        "calibration",
        &format!("emu:{}", run.name()),
        CALIBRATION_SAMPLES,
        Some(Throughput::Elements(retired)),
        |b| b.iter(|| pristine.clone().run_to_halt()),
    );
    if measurement.min_ns > 0.0 {
        retired as f64 * 1e9 / measurement.min_ns / 1e6
    } else {
        0.0
    }
}

/// One timed simulation point of the throughput report.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputEntry {
    /// Core family tag ("baseline" / "kilo" / "dkip").
    pub family: &'static str,
    /// Machine configuration name ("R10-64", "KILO-1024", "D-KIP-2048").
    pub machine: String,
    /// Workload name ("swim", "riscv:matmul/8", …).
    pub workload: String,
    /// Simulation mode: "exact" or "sampled" (schema v3).
    pub mode: &'static str,
    /// Instruction budget the point ran with.
    pub budget: u64,
    /// Simulated instructions committed per iteration. For sampled rows
    /// only the measured windows commit in detail, so this is much smaller
    /// than `covered`.
    pub committed: u64,
    /// Instructions the run covered per iteration (schema v3): equals
    /// `committed` for exact rows; detailed + functionally fast-forwarded
    /// for sampled rows. The numerator of `mips`.
    pub covered: u64,
    /// Simulated cycles per iteration.
    pub cycles: u64,
    /// `tick()` invocations actually executed per iteration (schema v2).
    pub ticks_executed: u64,
    /// Quiesced cycles the event-driven clock skipped per iteration
    /// (schema v2).
    pub cycles_skipped: u64,
    /// Millions of simulated committed instructions per host second,
    /// computed from the *mean* sample time.
    pub mips: f64,
    /// Millions of simulated committed instructions per host second,
    /// computed from the *best* (minimum) sample time (schema v4). Host
    /// scheduling noise is one-sided — preemption only ever slows a sample
    /// down — so the best-of-N figure is far more stable run-to-run and is
    /// what the tight `telemetry_overhead=` gate compares.
    pub mips_best: f64,
    /// Best-sample MIPS of the probe-free emulator control timed
    /// immediately after this job's samples ([`measure_calibration`],
    /// schema v4). `mips_best / calib_mips_best` is this point's
    /// host-speed-independent figure.
    pub calib_mips_best: f64,
    /// Simulated cycles per host second.
    pub cycles_per_sec: f64,
    /// The underlying timing measurement.
    pub measurement: Measurement,
}

impl ThroughputEntry {
    /// Fraction of simulated cycles skipped by the event-driven clock.
    #[must_use]
    pub fn skipped_frac(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.cycles_skipped as f64 / self.cycles as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"family\": {}, \"machine\": {}, \"workload\": {}, \"mode\": {}, \
             \"budget\": {}, \"committed\": {}, \"covered\": {}, \"cycles\": {}, \
             \"ticks_executed\": {}, \
             \"cycles_skipped\": {}, \"skipped_frac\": {}, \"samples\": {}, \"mean_ns\": {}, \
             \"min_ns\": {}, \"mips\": {}, \"mips_best\": {}, \"calib_mips_best\": {}, \
             \"cycles_per_sec\": {}}}",
            criterion::json_string(self.family),
            criterion::json_string(&self.machine),
            criterion::json_string(&self.workload),
            criterion::json_string(self.mode),
            self.budget,
            self.committed,
            self.covered,
            self.cycles,
            self.ticks_executed,
            self.cycles_skipped,
            criterion::json_number(self.skipped_frac()),
            self.measurement.samples,
            criterion::json_number(self.measurement.mean_ns),
            criterion::json_number(self.measurement.min_ns),
            criterion::json_number(self.mips),
            criterion::json_number(self.mips_best),
            criterion::json_number(self.calib_mips_best),
            criterion::json_number(self.cycles_per_sec),
        )
    }
}

/// The standard throughput matrix: every core family on two synthetic SPEC
/// workloads (one integer, one memory-bound FP) and two RISC-V kernels (one
/// dense, one pointer-chasing), all in exact mode, plus the D-KIP's two
/// synthetic points re-run under sampling at [`PERF_SAMPLE_RATE`] (the
/// RISC-V kernels' default dynamic lengths are shorter than one sampling
/// period, so a sampled row would degenerate to an exact one).
///
/// Exact rows are forced exact regardless of the `DKIP_SAMPLE` environment
/// variable: the committed `ci/perf_baseline.json` geomeans pin the exact
/// simulator. Every row is likewise forced unprobed regardless of
/// `DKIP_METRICS`: the harness times the disabled-telemetry hot path by
/// contract (that is what the `telemetry_overhead=` gate certifies), and an
/// ambient metrics knob must not silently contaminate the timing.
#[must_use]
pub fn perf_jobs(budget: u64) -> Vec<Job> {
    let mem = MemoryHierarchyConfig::mem_400();
    let machines = [
        Machine::Baseline(BaselineConfig::r10_64()),
        Machine::Kilo(KiloConfig::kilo_1024()),
        Machine::Dkip(DkipConfig::paper_default()),
    ];
    let workloads = [
        Workload::Spec(Benchmark::Gcc),
        Workload::Spec(Benchmark::Swim),
        Workload::from(Kernel::Matmul),
        Workload::from(Kernel::ListWalk),
    ];
    let mut jobs = Vec::new();
    for machine in &machines {
        for workload in &workloads {
            jobs.push(
                Job::new(
                    format!("{}/{}", machine.family(), workload.name()),
                    machine.clone(),
                    mem.clone(),
                    *workload,
                    budget,
                )
                .exact()
                .unprobed(),
            );
        }
    }
    let rate = SampleConfig::parse(PERF_SAMPLE_RATE).expect("valid perf sampling rate");
    let dkip = Machine::Dkip(DkipConfig::paper_default());
    for workload in [
        Workload::Spec(Benchmark::Gcc),
        Workload::Spec(Benchmark::Swim),
    ] {
        jobs.push(
            Job::new(
                format!("{}/{}+sampled", dkip.family(), workload.name()),
                dkip.clone(),
                mem.clone(),
                workload,
                budget,
            )
            .with_sample(rate)
            .unprobed(),
        );
    }
    jobs
}

/// Times every job (`samples` runs each, after one untimed warm-up that also
/// yields the simulated statistics) and returns the per-point report
/// entries. Each job's samples are followed by an emulator calibration pass
/// ([`measure_calibration`]) so every point carries a host-speed control
/// measured adjacent to it in time.
#[must_use]
pub fn measure(jobs: &[Job], samples: usize) -> Vec<ThroughputEntry> {
    jobs.iter()
        .map(|job| {
            // The warm-up run provides the (deterministic) simulated stats,
            // so the timed iterations can declare instructions/iteration as
            // criterion throughput. For sampled rows the element count is
            // the covered span, not the window-committed count: the row
            // measures how fast the mode covers workload instructions.
            let warm = job.run();
            let stats = warm.stats;
            let (mode, bench_name) = match job.sample {
                None => ("exact", job.workload.name()),
                Some(_) => ("sampled", format!("{}+sampled", job.workload.name())),
            };
            let measurement = run_one(
                job.machine.family(),
                &bench_name,
                samples,
                Some(Throughput::Elements(warm.covered)),
                |b| b.iter(|| job.run().stats.cycles),
            );
            let mips = measurement.elements_per_sec().unwrap_or(0.0) / 1e6;
            let mips_best = if measurement.min_ns > 0.0 {
                warm.covered as f64 * 1e9 / measurement.min_ns / 1e6
            } else {
                0.0
            };
            let cycles_per_sec = if measurement.mean_ns > 0.0 {
                stats.cycles as f64 * 1e9 / measurement.mean_ns
            } else {
                0.0
            };
            let calib_mips_best = measure_calibration();
            ThroughputEntry {
                family: job.machine.family(),
                machine: job.machine.name().to_owned(),
                workload: job.workload.name(),
                mode,
                budget: job.budget,
                committed: stats.committed,
                covered: warm.covered,
                cycles: stats.cycles,
                ticks_executed: stats.ticks_executed,
                cycles_skipped: stats.cycles_skipped,
                mips,
                mips_best,
                calib_mips_best,
                cycles_per_sec,
                measurement,
            }
        })
        .collect()
}

/// Per-family geometric-mean MIPS over the **exact** entries, preserving
/// first-occurrence order. Sampled rows are excluded: the committed
/// `ci/perf_baseline.json` geomeans pin the exact simulator's throughput,
/// and mixing in the (faster) sampled rows would let an exact-path
/// regression hide behind the sampling speedup.
#[must_use]
pub fn family_geomeans(entries: &[ThroughputEntry]) -> Vec<(String, f64)> {
    family_metric_geomeans(entries, |e| e.mips)
}

/// Per-family geometric-mean best-sample MIPS over the exact entries
/// (schema v4). This is the figure the `telemetry_overhead=` gate compares:
/// best-of-N discards one-sided host-scheduling noise, so it can hold a far
/// tighter tolerance than the mean-based [`family_geomeans`].
#[must_use]
pub fn family_best_geomeans(entries: &[ThroughputEntry]) -> Vec<(String, f64)> {
    family_metric_geomeans(entries, |e| e.mips_best)
}

fn family_metric_geomeans(
    entries: &[ThroughputEntry],
    metric: impl Fn(&ThroughputEntry) -> f64,
) -> Vec<(String, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut logs: Vec<(f64, u32)> = Vec::new();
    for entry in entries.iter().filter(|e| e.mode == "exact") {
        let idx = match order.iter().position(|f| f == entry.family) {
            Some(idx) => idx,
            None => {
                order.push(entry.family.to_owned());
                logs.push((0.0, 0));
                order.len() - 1
            }
        };
        logs[idx].0 += metric(entry).max(f64::MIN_POSITIVE).ln();
        logs[idx].1 += 1;
    }
    order
        .into_iter()
        .zip(logs)
        .map(|(family, (sum, n))| (family, (sum / f64::from(n.max(1))).exp()))
        .collect()
}

/// Pairs every sampled entry with its exact twin (same family, machine and
/// workload) and returns `(family/workload, sampled_mips / exact_mips)`.
/// A sampled row with no exact twin, or whose twin measured zero MIPS,
/// reports a speedup of 0 so the caller's floor check fails loudly rather
/// than skipping the pair.
#[must_use]
pub fn sampled_speedups(entries: &[ThroughputEntry]) -> Vec<(String, f64)> {
    entries
        .iter()
        .filter(|e| e.mode == "sampled")
        .map(|sampled| {
            let twin = entries.iter().find(|e| {
                e.mode == "exact"
                    && e.family == sampled.family
                    && e.machine == sampled.machine
                    && e.workload == sampled.workload
            });
            let speedup = match twin {
                Some(exact) if exact.mips > 0.0 => sampled.mips / exact.mips,
                _ => 0.0,
            };
            (format!("{}/{}", sampled.family, sampled.workload), speedup)
        })
        .collect()
}

/// Overall host-speed-independent figure of a run (schema v4): the geomean
/// over the **exact** entries of `mips_best / calib_mips_best`. This is the
/// single number the `telemetry_overhead=` gate compares. Because every
/// point is divided by a control timed adjacent to it, host throttling —
/// even a frequency shift partway through the matrix — cancels out;
/// averaging all 12 exact points then squeezes the residual jitter further,
/// which a 2% tolerance needs. Entries with no usable control
/// (`calib_mips_best <= 0`) are skipped; `None` if nothing remains.
#[must_use]
pub fn calibrated_best_geomean(entries: &[ThroughputEntry]) -> Option<f64> {
    let ratios: Vec<f64> = entries
        .iter()
        .filter(|e| e.mode == "exact" && e.calib_mips_best > 0.0)
        .map(|e| e.mips_best / e.calib_mips_best)
        .collect();
    if ratios.is_empty() {
        return None;
    }
    let sum: f64 = ratios.iter().map(|r| r.max(f64::MIN_POSITIVE).ln()).sum();
    Some((sum / ratios.len() as f64).exp())
}

/// Serialises the full throughput report.
#[must_use]
pub fn report_to_json(entries: &[ThroughputEntry]) -> String {
    let mut out = String::from("{\n  \"schema\": \"dkip-sim-throughput/v4\",\n  \"entries\": [\n");
    let body: Vec<String> = entries
        .iter()
        .map(|e| format!("    {}", e.to_json()))
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ],\n");
    if let Some(calibrated) = calibrated_best_geomean(entries) {
        out.push_str(&format!(
            "  \"calibrated_best_geomean\": {},\n",
            criterion::json_number(calibrated)
        ));
    }
    out.push_str("  \"families\": [\n");
    let best = family_best_geomeans(entries);
    let families: Vec<String> = family_geomeans(entries)
        .into_iter()
        .zip(best)
        .map(|((family, geomean), (_, best_geomean))| {
            format!(
                "    {{\"family\": {}, \"mips_geomean\": {}, \"mips_best_geomean\": {}}}",
                criterion::json_string(&family),
                criterion::json_number(geomean),
                criterion::json_number(best_geomean)
            )
        })
        .collect();
    out.push_str(&families.join(",\n"));
    out.push_str("\n  ],\n  \"sampled_speedups\": [\n");
    let speedups: Vec<String> = sampled_speedups(entries)
        .into_iter()
        .map(|(point, speedup)| {
            format!(
                "    {{\"point\": {}, \"speedup\": {}}}",
                criterion::json_string(&point),
                criterion::json_number(speedup)
            )
        })
        .collect();
    out.push_str(&speedups.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Extracts the `(family, mips_geomean)` pairs from a throughput report
/// produced by [`report_to_json`]. The scanner only relies on the fixed
/// `{"family": "...", "mips_geomean": N}` shape inside the `"families"`
/// array, so it tolerates added fields elsewhere.
#[must_use]
pub fn parse_family_geomeans(json: &str) -> Vec<(String, f64)> {
    parse_family_metric(json, "\"mips_geomean\": ")
}

/// Extracts the `(family, mips_best_geomean)` pairs (schema v4) the same
/// way. Pre-v4 reports carry no best-sample figures, so this returns an
/// empty vector for them — callers treat that as "baseline unusable", not
/// as "no regression".
#[must_use]
pub fn parse_family_best_geomeans(json: &str) -> Vec<(String, f64)> {
    parse_family_metric(json, "\"mips_best_geomean\": ")
}

/// Extracts the `calibrated_best_geomean` figure from a report (schema v4).
/// `None` for reports written without calibration passes — such a report
/// cannot anchor the `telemetry_overhead=` gate.
#[must_use]
pub fn parse_calibrated_best_geomean(json: &str) -> Option<f64> {
    let key = "\"calibrated_best_geomean\": ";
    let number = &json[json.find(key)? + key.len()..];
    let end = number
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(number.len());
    number[..end].parse::<f64>().ok().filter(|v| *v > 0.0)
}

fn parse_family_metric(json: &str, key: &str) -> Vec<(String, f64)> {
    let mut result = Vec::new();
    let Some(families_at) = json.find("\"families\"") else {
        return result;
    };
    let section = &json[families_at..];
    let mut rest = section;
    while let Some(fam_at) = rest.find("\"family\": \"") {
        let after = &rest[fam_at + "\"family\": \"".len()..];
        let Some(fam_end) = after.find('"') else {
            break;
        };
        let family = &after[..fam_end];
        let tail = &after[fam_end..];
        let Some(geo_at) = tail.find(key) else {
            break;
        };
        let number = &tail[geo_at + key.len()..];
        let end = number
            .find(|c: char| {
                !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
            })
            .unwrap_or(number.len());
        if let Ok(value) = number[..end].parse::<f64>() {
            result.push((family.to_owned(), value));
        }
        rest = &tail[geo_at..];
    }
    result
}

/// The outcome of comparing a fresh report against a committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionReport {
    /// Human-readable per-family lines.
    pub lines: Vec<String>,
    /// Families slower than `(1 - tolerance) ×` their baseline geomean.
    pub regressed: Vec<String>,
}

/// Compares fresh per-family geomeans against a baseline report. A family
/// present in the baseline but absent from the fresh run counts as
/// regressed (the harness silently dropping a family must fail the check).
#[must_use]
pub fn compare_to_baseline(
    fresh: &[(String, f64)],
    baseline_json: &str,
    tolerance: f64,
) -> RegressionReport {
    compare_families(fresh, &parse_family_geomeans(baseline_json), tolerance)
}

/// Geometric mean over per-family geomean figures. Every family fields the
/// same number of exact points, so this equals the overall geomean across
/// all points — one summary number for a whole report.
#[must_use]
pub fn overall_geomean(pairs: &[(String, f64)]) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    let sum: f64 = pairs
        .iter()
        .map(|(_, v)| v.max(f64::MIN_POSITIVE).ln())
        .sum();
    Some((sum / pairs.len() as f64).exp())
}

fn compare_families(
    fresh: &[(String, f64)],
    baseline: &[(String, f64)],
    tolerance: f64,
) -> RegressionReport {
    let mut lines = Vec::new();
    let mut regressed = Vec::new();
    for (family, base_mips) in baseline {
        match fresh.iter().find(|(f, _)| f == family) {
            None => {
                lines.push(format!(
                    "{family}: missing from fresh run (baseline {base_mips:.3} MIPS)"
                ));
                regressed.push(family.clone());
            }
            Some((_, new_mips)) => {
                let floor = base_mips * (1.0 - tolerance);
                let ratio = new_mips / base_mips.max(f64::MIN_POSITIVE);
                let verdict = if *new_mips < floor { "REGRESSED" } else { "ok" };
                lines.push(format!(
                    "{family}: {new_mips:.3} MIPS vs baseline {base_mips:.3} ({:+.1}%) [{verdict}]",
                    (ratio - 1.0) * 100.0
                ));
                if *new_mips < floor {
                    regressed.push(family.clone());
                }
            }
        }
    }
    RegressionReport { lines, regressed }
}

/// Parsed command line of the `perf` binary.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfArgs {
    /// Per-point instruction budget.
    pub budget: u64,
    /// Timed samples per point.
    pub samples: usize,
    /// Report output path.
    pub out: PathBuf,
    /// Baseline report to compare against, if any.
    pub check: Option<PathBuf>,
    /// Tolerated per-family fractional slowdown for `check`.
    pub tolerance: f64,
    /// Absolute MIPS floor for the `dkip` family (0 disables the check).
    pub floor: f64,
    /// Pre-telemetry baseline report: the disabled-probe geomeans must stay
    /// within [`TELEMETRY_OVERHEAD_TOLERANCE`] of it.
    pub telemetry_overhead: Option<PathBuf>,
}

impl Default for PerfArgs {
    fn default() -> Self {
        PerfArgs {
            budget: DEFAULT_PERF_BUDGET,
            samples: DEFAULT_SAMPLES,
            out: PathBuf::from(DEFAULT_OUT),
            check: None,
            tolerance: DEFAULT_TOLERANCE,
            floor: 0.0,
            telemetry_overhead: None,
        }
    }
}

impl PerfArgs {
    /// Parses `budget=N samples=N out=PATH check=PATH tolerance=F floor=F
    /// telemetry_overhead=PATH` (any order). Like the figure binaries,
    /// malformed arguments are errors, never silent fallbacks.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending argument.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut parsed = PerfArgs::default();
        for arg in args {
            if let Some(v) = arg.strip_prefix("budget=") {
                parsed.budget =
                    v.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("invalid budget {v:?}: expected a positive integer")
                    })?;
            } else if let Some(v) = arg.strip_prefix("samples=") {
                parsed.samples =
                    v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("invalid samples {v:?}: expected a positive integer")
                    })?;
            } else if let Some(v) = arg.strip_prefix("out=") {
                if v.is_empty() {
                    return Err("invalid out=: expected a path".to_owned());
                }
                parsed.out = PathBuf::from(v);
            } else if let Some(v) = arg.strip_prefix("check=") {
                if v.is_empty() {
                    return Err("invalid check=: expected a path".to_owned());
                }
                parsed.check = Some(PathBuf::from(v));
            } else if let Some(v) = arg.strip_prefix("tolerance=") {
                parsed.tolerance = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| (0.0..1.0).contains(t))
                    .ok_or_else(|| {
                        format!("invalid tolerance {v:?}: expected a fraction in [0, 1)")
                    })?;
            } else if let Some(v) = arg.strip_prefix("floor=") {
                parsed.floor = v.parse::<f64>().ok().filter(|f| *f >= 0.0).ok_or_else(|| {
                    format!("invalid floor {v:?}: expected a non-negative MIPS value")
                })?;
            } else if let Some(v) = arg.strip_prefix("telemetry_overhead=") {
                if v.is_empty() {
                    return Err("invalid telemetry_overhead=: expected a path".to_owned());
                }
                parsed.telemetry_overhead = Some(PathBuf::from(v));
            } else {
                return Err(format!(
                    "invalid argument {arg:?}: expected budget=N, samples=N, out=PATH, \
                     check=PATH, tolerance=F, floor=F or telemetry_overhead=PATH"
                ));
            }
        }
        Ok(parsed)
    }

    /// Parses `std::env::args`, exiting with status 2 on a malformed
    /// argument.
    #[must_use]
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }
}

/// Runs the full harness: measure, write the report, and apply the optional
/// baseline / floor checks. Returns the process exit code.
#[must_use]
pub fn run(args: &PerfArgs) -> i32 {
    // The overhead gate certifies the *disabled-probe* hot path. The jobs
    // are forced unprobed either way, but a set DKIP_METRICS signals the
    // caller expected telemetry from this run — refuse rather than measure
    // something other than what they asked for.
    if args.telemetry_overhead.is_some() && std::env::var_os(dkip_model::METRICS_ENV).is_some() {
        eprintln!(
            "telemetry_overhead= times the disabled-probe hot path: unset {}",
            dkip_model::METRICS_ENV
        );
        return 2;
    }
    let jobs = perf_jobs(args.budget);
    println!(
        "measuring {} points (budget={}, samples={}) ...",
        jobs.len(),
        args.budget,
        args.samples
    );
    let entries = measure(&jobs, args.samples);
    let mut table = String::new();
    for entry in &entries {
        let _ = writeln!(
            table,
            "  {:8} {:24} {:7} {:>10.3} MIPS  {:>12.0} cycles/s  {:>5.1}% skipped",
            entry.family,
            entry.workload,
            entry.mode,
            entry.mips,
            entry.cycles_per_sec,
            entry.skipped_frac() * 100.0
        );
    }
    print!("{table}");
    let fresh = family_geomeans(&entries);
    for (family, geomean) in &fresh {
        println!("family {family}: {geomean:.3} MIPS (geomean)");
    }
    if let Some(calibrated) = calibrated_best_geomean(&entries) {
        println!("calibrated best geomean: {calibrated:.4}x the emulator control");
    }
    let json = report_to_json(&entries);
    if let Err(err) = std::fs::write(&args.out, &json) {
        eprintln!("failed to write {}: {err}", args.out.display());
        return 1;
    }
    println!("wrote {}", args.out.display());

    let mut failed = false;
    // The event-driven clock must actually engage: if no D-KIP workload
    // skipped a single cycle while skipping is enabled, the fast path has
    // silently rotted (every memory-bound sweep quiesces somewhere).
    if dkip_model::event_clock_enabled() {
        let dkip_skipped: u64 = entries
            .iter()
            .filter(|e| e.family == "dkip")
            .map(|e| e.cycles_skipped)
            .sum();
        if dkip_skipped == 0 {
            eprintln!("event-driven clock: no dkip workload skipped any cycle [FAILED]");
            failed = true;
        } else {
            println!("event-driven clock: dkip skipped {dkip_skipped} quiesced cycles [ok]");
        }
    }
    // The sampled fast path must actually be fast: each sampled D-KIP row
    // must reach SAMPLED_SPEEDUP_FLOOR × the MIPS of its exact twin.
    let speedups = sampled_speedups(&entries);
    if speedups.is_empty() {
        eprintln!("sampled throughput: no sampled rows in the matrix [FAILED]");
        failed = true;
    }
    for (point, speedup) in &speedups {
        if *speedup >= SAMPLED_SPEEDUP_FLOOR {
            println!("sampled throughput: {point} {speedup:.2}x exact (>= {SAMPLED_SPEEDUP_FLOOR}x) [ok]");
        } else {
            eprintln!("sampled throughput: {point} {speedup:.2}x exact (< {SAMPLED_SPEEDUP_FLOOR}x) [FAILED]");
            failed = true;
        }
    }
    if args.floor > 0.0 {
        match fresh.iter().find(|(f, _)| f == "dkip") {
            Some((_, mips)) if *mips >= args.floor => {
                println!(
                    "dkip throughput floor: {mips:.3} >= {} MIPS [ok]",
                    args.floor
                );
            }
            Some((_, mips)) => {
                eprintln!(
                    "dkip throughput floor: {mips:.3} < {} MIPS [FAILED]",
                    args.floor
                );
                failed = true;
            }
            None => {
                eprintln!("dkip throughput floor: family missing from run [FAILED]");
                failed = true;
            }
        }
    }
    if let Some(check) = &args.check {
        match std::fs::read_to_string(check) {
            Err(err) => {
                eprintln!("failed to read baseline {}: {err}", check.display());
                failed = true;
            }
            Ok(baseline_json) => {
                let report = compare_to_baseline(&fresh, &baseline_json, args.tolerance);
                for line in &report.lines {
                    println!("{line}");
                }
                if report.lines.is_empty() {
                    eprintln!("baseline {} contains no families [FAILED]", check.display());
                    failed = true;
                }
                if !report.regressed.is_empty() {
                    eprintln!(
                        "throughput regression (> {:.0}%) in: {}",
                        args.tolerance * 100.0,
                        report.regressed.join(", ")
                    );
                    failed = true;
                }
            }
        }
    }
    if let Some(baseline) = &args.telemetry_overhead {
        match std::fs::read_to_string(baseline) {
            Err(err) => {
                eprintln!(
                    "failed to read telemetry-overhead baseline {}: {err}",
                    baseline.display()
                );
                failed = true;
            }
            Ok(baseline_json) => {
                let fresh_best = family_best_geomeans(&entries);
                let base_best = parse_family_best_geomeans(&baseline_json);
                for (family, mips) in &fresh_best {
                    let base = base_best
                        .iter()
                        .find(|(f, _)| f == family)
                        .map_or(f64::NAN, |(_, v)| *v);
                    println!(
                        "telemetry overhead: {family}: best {mips:.3} MIPS vs baseline {base:.3}"
                    );
                }
                // The overall geomean only means the same thing in both
                // reports if they cover the same families: a silently
                // dropped (slow) family would inflate the fresh figure.
                let fresh_names: Vec<&String> = fresh_best.iter().map(|(f, _)| f).collect();
                let base_names: Vec<&String> = base_best.iter().map(|(f, _)| f).collect();
                if fresh_names != base_names {
                    eprintln!(
                        "telemetry overhead: family mismatch, fresh {fresh_names:?} vs \
                         baseline {base_names:?} [FAILED]"
                    );
                    failed = true;
                }
                let fresh_ratio = calibrated_best_geomean(&entries);
                let base_ratio = parse_calibrated_best_geomean(&baseline_json);
                match (fresh_ratio, base_ratio) {
                    (Some(fresh_ratio), Some(base_ratio)) => {
                        let floor = base_ratio * (1.0 - TELEMETRY_OVERHEAD_TOLERANCE);
                        let delta = (fresh_ratio / base_ratio - 1.0) * 100.0;
                        let verdict = if fresh_ratio >= floor {
                            "ok"
                        } else {
                            failed = true;
                            "FAILED"
                        };
                        let line = format!(
                            "telemetry overhead: calibrated best geomean {fresh_ratio:.4}x \
                             emulator vs baseline {base_ratio:.4}x ({delta:+.1}%, \
                             tolerance {:.0}%) [{verdict}]",
                            TELEMETRY_OVERHEAD_TOLERANCE * 100.0
                        );
                        if fresh_ratio >= floor {
                            println!("{line}");
                        } else {
                            eprintln!("{line}");
                        }
                    }
                    _ => {
                        eprintln!(
                            "telemetry-overhead baseline {} has no calibrated_best_geomean \
                             figure (pre-v4 report?) [FAILED]",
                            baseline.display()
                        );
                        failed = true;
                    }
                }
            }
        }
    }
    i32::from(failed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(family: &'static str, workload: &str, mips: f64) -> ThroughputEntry {
        ThroughputEntry {
            family,
            machine: family.to_uppercase(),
            workload: workload.to_owned(),
            mode: "exact",
            budget: 1000,
            committed: 1000,
            covered: 1000,
            cycles: 2000,
            ticks_executed: 1500,
            cycles_skipped: 500,
            mips,
            // Best-sample throughput is deliberately distinct from the mean
            // figure so tests catch code comparing the wrong one; the
            // calibration control is a fixed 50 MIPS so calibrated ratios
            // are mips_best / 50.
            mips_best: mips * 2.0,
            calib_mips_best: 50.0,
            cycles_per_sec: mips * 2e6,
            measurement: Measurement {
                group: family.to_owned(),
                name: workload.to_owned(),
                samples: 2,
                mean_ns: 1e6,
                min_ns: 1e6,
                max_ns: 1e6,
                total_ns: 2e6,
                elements_per_iter: Some(1000),
            },
        }
    }

    #[test]
    fn geomeans_group_by_family_in_order() {
        let entries = vec![
            entry("baseline", "gcc", 4.0),
            entry("baseline", "swim", 1.0),
            entry("dkip", "gcc", 3.0),
        ];
        let means = family_geomeans(&entries);
        assert_eq!(means.len(), 2);
        assert_eq!(means[0].0, "baseline");
        assert!((means[0].1 - 2.0).abs() < 1e-12, "geomean(4, 1) = 2");
        assert_eq!(means[1].0, "dkip");
    }

    #[test]
    fn report_json_round_trips_family_geomeans() {
        let entries = vec![
            entry("baseline", "gcc", 4.0),
            entry("baseline", "swim", 1.0),
            entry("kilo", "gcc", 2.5),
            entry("dkip", "swim", 1.5),
        ];
        let json = report_to_json(&entries);
        let parsed = parse_family_geomeans(&json);
        let direct = family_geomeans(&entries);
        assert_eq!(parsed.len(), direct.len());
        for ((pf, pv), (df, dv)) in parsed.iter().zip(&direct) {
            assert_eq!(pf, df);
            assert!((pv - dv).abs() < 1e-9, "{pf}: {pv} vs {dv}");
        }
        // The best-sample geomeans (2× the mean figures in the test helper)
        // round-trip independently and must not be confused with the mean.
        let parsed_best = parse_family_best_geomeans(&json);
        let direct_best = family_best_geomeans(&entries);
        assert_eq!(parsed_best.len(), direct_best.len());
        for ((pf, pv), (df, dv)) in parsed_best.iter().zip(&direct_best) {
            assert_eq!(pf, df);
            assert!((pv - dv).abs() < 1e-9, "{pf} best: {pv} vs {dv}");
            let (_, mean) = direct.iter().find(|(f, _)| f == pf).unwrap();
            assert!((pv - mean * 2.0).abs() < 1e-9, "{pf}: best is 2x mean");
        }
    }

    #[test]
    fn parser_ignores_entry_section_families() {
        // "family" keys also appear inside "entries"; only the "families"
        // summary must be parsed.
        let entries = vec![entry("baseline", "gcc", 4.0)];
        let json = report_to_json(&entries);
        let parsed = parse_family_geomeans(&json);
        assert_eq!(parsed, vec![("baseline".to_owned(), 4.0)]);
    }

    #[test]
    fn regressions_are_detected_with_tolerance() {
        let baseline_entries = vec![entry("baseline", "gcc", 4.0), entry("dkip", "swim", 2.0)];
        let baseline_json = report_to_json(&baseline_entries);
        // baseline family fine, dkip 40% slower than baseline.
        let fresh = vec![("baseline".to_owned(), 3.9), ("dkip".to_owned(), 1.2)];
        let report = compare_to_baseline(&fresh, &baseline_json, 0.30);
        assert_eq!(report.regressed, vec!["dkip".to_owned()]);
        assert!(report.lines.iter().any(|l| l.contains("REGRESSED")));
    }

    #[test]
    fn faster_runs_never_regress() {
        let baseline_json = report_to_json(&[entry("dkip", "swim", 1.0)]);
        let fresh = vec![("dkip".to_owned(), 10.0)];
        let report = compare_to_baseline(&fresh, &baseline_json, 0.30);
        assert!(report.regressed.is_empty());
    }

    #[test]
    fn missing_families_count_as_regressions() {
        let baseline_json = report_to_json(&[entry("dkip", "swim", 1.0)]);
        let report = compare_to_baseline(&[], &baseline_json, 0.30);
        assert_eq!(report.regressed, vec!["dkip".to_owned()]);
    }

    #[test]
    fn telemetry_overhead_gate_reads_best_sample_figures() {
        // The helper records best = 2x mean, so parsing the wrong column
        // out of the baseline would be off by a factor of two.
        let baseline_json = report_to_json(&[entry("dkip", "swim", 1.0)]);
        let best = parse_family_best_geomeans(&baseline_json);
        assert_eq!(best.len(), 1);
        assert!((best[0].1 - 2.0).abs() < 1e-9, "best geomean is 2x mean");
        // A pre-v4 baseline carries no best-sample geomeans at all: the
        // gate must fail it, never pass-by-default.
        let pre_v4 = "{\"families\": [{\"family\": \"dkip\", \"mips_geomean\": 1}]}";
        assert!(parse_family_best_geomeans(pre_v4).is_empty());
        assert_eq!(overall_geomean(&parse_family_best_geomeans(pre_v4)), None);
    }

    #[test]
    fn calibrated_geomean_round_trips_through_the_report() {
        // calib_mips_best is a fixed 50 in the helper, so the calibrated
        // ratios are mips_best / 50: geomean(2/50, 8/50) = 4/50 = 0.08.
        let entries = vec![entry("dkip", "gcc", 1.0), entry("dkip", "swim", 4.0)];
        let direct = calibrated_best_geomean(&entries).unwrap();
        assert!((direct - 0.08).abs() < 1e-12, "geomean of paired ratios");
        let json = report_to_json(&entries);
        assert!(json.contains("\"calib_mips_best\": 50"));
        let parsed = parse_calibrated_best_geomean(&json).unwrap();
        assert!((parsed - direct).abs() < 1e-9);
        // A report whose entries carry no usable control must not write the
        // figure at all — and the parser must report that as None, so the
        // gate fails such a baseline instead of passing by default.
        let mut uncalibrated = entry("dkip", "swim", 1.0);
        uncalibrated.calib_mips_best = 0.0;
        let without = report_to_json(&[uncalibrated]);
        assert!(!without.contains("calibrated_best_geomean"));
        assert_eq!(parse_calibrated_best_geomean(&without), None);
    }

    #[test]
    fn calibrated_geomean_uses_exact_entries_only() {
        let mut sampled = entry("dkip", "gcc", 100.0);
        sampled.mode = "sampled";
        let entries = vec![entry("dkip", "gcc", 1.0), sampled];
        let overall = calibrated_best_geomean(&entries).unwrap();
        assert!(
            (overall - 0.04).abs() < 1e-12,
            "the fast sampled row must not inflate the calibrated figure"
        );
    }

    #[test]
    fn calibration_measures_the_emulator_control() {
        assert!(measure_calibration() > 0.0);
    }

    #[test]
    fn overall_geomean_aggregates_family_figures() {
        let pairs = vec![("a".to_owned(), 2.0), ("b".to_owned(), 8.0)];
        let overall = overall_geomean(&pairs).unwrap();
        assert!((overall - 4.0).abs() < 1e-12, "geomean(2, 8) = 4");
        assert_eq!(overall_geomean(&[]), None);
        // 2% gate arithmetic on a calibrated figure: 0.0392 vs a baseline
        // of 0.04 passes, 0.0391 fails.
        let floor = 0.04 * (1.0 - TELEMETRY_OVERHEAD_TOLERANCE);
        assert!(0.0392 >= floor && 0.0391 < floor);
    }

    #[test]
    fn report_json_carries_clock_and_mode_telemetry() {
        let mut sampled = entry("dkip", "swim", 8.0);
        sampled.mode = "sampled";
        sampled.covered = 10_000;
        let entries = vec![entry("dkip", "swim", 2.0), sampled];
        let json = report_to_json(&entries);
        assert!(json.contains("\"schema\": \"dkip-sim-throughput/v4\""));
        assert!(json.contains("\"min_ns\": 1000000"));
        assert!(json.contains("\"mips_best\": 4"));
        assert!(json.contains("\"ticks_executed\": 1500"));
        assert!(json.contains("\"cycles_skipped\": 500"));
        assert!(json.contains("\"skipped_frac\": 0.25"));
        assert!(json.contains("\"mode\": \"exact\""));
        assert!(json.contains("\"mode\": \"sampled\""));
        assert!(json.contains("\"covered\": 10000"));
        assert!(json.contains("\"point\": \"dkip/swim\", \"speedup\": 4"));
        assert!((entries[0].skipped_frac() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn family_geomeans_exclude_sampled_rows() {
        let mut sampled = entry("dkip", "gcc", 100.0);
        sampled.mode = "sampled";
        let entries = vec![
            entry("dkip", "gcc", 2.0),
            entry("dkip", "swim", 8.0),
            sampled,
        ];
        let means = family_geomeans(&entries);
        assert_eq!(means.len(), 1);
        assert!((means[0].1 - 4.0).abs() < 1e-12, "geomean(2, 8) = 4");
        // The (fast) sampled row must not inflate the pinned exact geomean.
    }

    #[test]
    fn sampled_speedups_pair_rows_and_fail_loudly_when_unpaired() {
        let mut sampled = entry("dkip", "gcc", 9.0);
        sampled.mode = "sampled";
        let mut orphan = entry("dkip", "mesa", 9.0);
        orphan.mode = "sampled";
        let entries = vec![entry("dkip", "gcc", 3.0), sampled, orphan];
        let speedups = sampled_speedups(&entries);
        assert_eq!(speedups.len(), 2);
        assert_eq!(speedups[0].0, "dkip/gcc");
        assert!((speedups[0].1 - 3.0).abs() < 1e-12);
        assert_eq!(
            speedups[1],
            ("dkip/mesa".to_owned(), 0.0),
            "a sampled row with no exact twin reports 0x so floor checks fail"
        );
    }

    #[test]
    fn perf_args_parse_strictly() {
        let ok = PerfArgs::parse(
            [
                "budget=5000",
                "samples=2",
                "out=x.json",
                "tolerance=0.2",
                "floor=0.5",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .unwrap();
        assert_eq!(ok.budget, 5000);
        assert_eq!(ok.samples, 2);
        assert_eq!(ok.out, PathBuf::from("x.json"));
        assert!((ok.tolerance - 0.2).abs() < 1e-12);
        assert!((ok.floor - 0.5).abs() < 1e-12);
        assert_eq!(ok.telemetry_overhead, None);
        let gated = PerfArgs::parse(
            ["telemetry_overhead=ci/perf_baseline.json"]
                .iter()
                .map(|s| (*s).to_owned()),
        )
        .unwrap();
        assert_eq!(
            gated.telemetry_overhead,
            Some(PathBuf::from("ci/perf_baseline.json"))
        );
        assert!(PerfArgs::parse(["telemetry_overhead="].iter().map(|s| (*s).to_owned())).is_err());
        assert!(PerfArgs::parse(["budget=0"].iter().map(|s| (*s).to_owned())).is_err());
        assert!(PerfArgs::parse(["samples=none"].iter().map(|s| (*s).to_owned())).is_err());
        assert!(PerfArgs::parse(["tolerance=1.5"].iter().map(|s| (*s).to_owned())).is_err());
        assert!(PerfArgs::parse(["bogus"].iter().map(|s| (*s).to_owned())).is_err());
        assert!(PerfArgs::parse(["out="].iter().map(|s| (*s).to_owned())).is_err());
    }

    #[test]
    fn perf_jobs_cover_every_family_and_both_workload_kinds() {
        let jobs = perf_jobs(10_000);
        assert_eq!(
            jobs.len(),
            14,
            "3 families x 4 workloads + 2 sampled dkip rows"
        );
        for family in ["baseline", "kilo", "dkip"] {
            let of_family: Vec<_> = jobs
                .iter()
                .filter(|j| j.machine.family() == family && j.sample.is_none())
                .collect();
            assert_eq!(of_family.len(), 4);
            assert!(
                of_family.iter().any(|j| j.workload.is_finite()),
                "{family} runs RISC-V"
            );
            assert!(
                of_family.iter().any(|j| !j.workload.is_finite()),
                "{family} runs Spec"
            );
        }
        assert!(
            jobs.iter().all(|j| j.metrics.is_none()),
            "perf jobs time the disabled-probe hot path: no metrics sink"
        );
        let sampled: Vec<_> = jobs.iter().filter(|j| j.sample.is_some()).collect();
        assert_eq!(sampled.len(), 2, "dkip gcc + swim re-run under sampling");
        for job in &sampled {
            assert_eq!(job.machine.family(), "dkip");
            assert!(!job.workload.is_finite(), "sampled rows use endless Spec");
            assert_eq!(
                job.sample.unwrap().to_string(),
                PERF_SAMPLE_RATE,
                "sampled rows run at the documented perf rate"
            );
        }
    }

    #[test]
    fn measured_sampled_rows_cover_the_budget_cheaply() {
        let rate = SampleConfig::parse(PERF_SAMPLE_RATE).unwrap();
        let job = Job::new(
            "sampled-smoke",
            Machine::Dkip(DkipConfig::paper_default()),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Gcc,
            40_000,
        )
        .with_sample(rate);
        let entries = measure(&[job], 1);
        assert_eq!(entries[0].mode, "sampled");
        assert!(entries[0].covered >= 40_000, "covers the whole budget");
        assert!(
            entries[0].committed < entries[0].covered / 5,
            "only the detailed windows commit: {} of {}",
            entries[0].committed,
            entries[0].covered
        );
        assert!(entries[0].mips > 0.0);
    }

    #[test]
    fn measure_produces_positive_rates() {
        let jobs = vec![Job::new(
            "smoke",
            Machine::Baseline(BaselineConfig::r10_64()),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Gcc,
            1_000,
        )];
        let entries = measure(&jobs, 1);
        assert_eq!(entries.len(), 1);
        assert!(entries[0].mips > 0.0);
        assert!(entries[0].cycles_per_sec > 0.0);
        assert_eq!(
            entries[0].committed,
            entries[0].measurement.elements_per_iter.unwrap()
        );
    }
}
