//! Benchmark harness regenerating every table and figure of the D-KIP
//! paper.
//!
//! Two kinds of targets live here:
//!
//! * **Figure binaries** (`src/bin/fig*.rs`, `table*.rs`) — each prints the
//!   rows/series of one paper artefact using the drivers in
//!   `dkip_sim::experiments`. Run them with, e.g.,
//!   `cargo run -p dkip-bench --release --bin fig09_comparison`.
//!   Every simulating binary (the nine `fig*` paper figures plus
//!   `fig_riscv_ipc`; `table1`/`table2_3` just print static configuration
//!   tables and take no arguments) accepts five optional positional
//!   arguments: the per-benchmark instruction budget, `full` to use the
//!   complete benchmark suite instead of the fast representative subset,
//!   `threads=N` to fix the sweep-runner worker-pool size (default: the
//!   `DKIP_THREADS` environment variable, then the host's available
//!   parallelism), `sample=P:U:W` to regenerate the figure under
//!   sampled simulation at that `period:warmup:window` rate (default: the
//!   `DKIP_SAMPLE` environment variable, then exact simulation),
//!   `metrics=PATH:INTERVAL` to collect an interval-metrics time series
//!   per job alongside the figure (default: the `DKIP_METRICS` environment
//!   variable, then no telemetry), `cache=DIR` to serve/populate the
//!   content-addressed result store at that directory (default: the
//!   `DKIP_CACHE` environment variable, then no caching), and
//!   `expect=cold|warm` to assert the run's cache behaviour (exit 1 when a
//!   `cold` run hits or a `warm` run recomputes — see `make cache-check`).
//!   Malformed arguments exit with status 2 — an explicitly stated budget,
//!   thread count, sampling rate, metrics configuration or cache directory
//!   never falls back silently.
//! * **Telemetry binaries** — `fig_timeseries` runs exactly one
//!   (family, workload) pair with the interval-metrics and/or per-µop
//!   pipeline-trace backends attached (`trace=PATH[:OPS]`, Konata /
//!   O3PipeView format; only meaningful for a single run, so the sweep
//!   binaries reject it), and `trace_check` validates the emitted
//!   artefacts (see `make trace-smoke`).
//! * **Criterion benches** (`benches/`) — component microbenchmarks and one
//!   timed end-to-end simulation per core family.
//!
//! The helper functions here parse the common command-line arguments.

#![warn(missing_docs)]

pub mod throughput;

use dkip_model::{MetricsConfig, SampleConfig, TraceConfig, METRICS_ENV, SAMPLE_ENV};
use dkip_sim::{ResultStore, SweepRunner, Workload};
use dkip_trace::{Benchmark, Suite};

/// Default per-benchmark instruction budget for the figure binaries.
pub const DEFAULT_BUDGET: u64 = 10_000;

/// Parsed command line of a figure binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigureArgs {
    /// Explicit per-benchmark instruction budget, if one was given.
    /// Binaries read it through [`FigureArgs::instr_budget`] so each can
    /// pick its own default (`fig_riscv_ipc` needs a run-to-completion
    /// budget, the synthetic sweeps use [`DEFAULT_BUDGET`]).
    pub budget: Option<u64>,
    /// Whether to run the full 26-benchmark suite.
    pub full_suite: bool,
    /// Explicit worker-pool size (`threads=N`); `None` defers to
    /// `DKIP_THREADS` / the host parallelism via [`SweepRunner::from_env`].
    pub threads: Option<usize>,
    /// Explicit sampled-simulation rate (`sample=P:U:W`); `None` defers to
    /// the `DKIP_SAMPLE` environment variable (unset: exact simulation).
    pub sample: Option<SampleConfig>,
    /// Explicit interval-metrics collection (`metrics=<path>:<interval>`);
    /// `None` defers to the `DKIP_METRICS` environment variable (unset: no
    /// telemetry). Every job of the sweep writes its own time series to the
    /// given path with a per-job tag inserted before the extension.
    pub metrics: Option<MetricsConfig>,
    /// Explicit result-store directory (`cache=DIR`); `None` defers to the
    /// `DKIP_CACHE` environment variable (unset: no caching). With a store
    /// attached, every job of the figure sweep is served from the cache
    /// when present and written back when not.
    pub cache: Option<String>,
    /// Cache-behaviour assertion (`expect=cold|warm`): after the figure is
    /// rendered, [`FigureArgs::finish_cache`] fails the process (exit 1)
    /// if a `cold` run hit the cache or a `warm` run recomputed anything.
    /// Requires a store; `None` asserts nothing.
    pub expect: Option<CacheExpectation>,
}

/// What a figure run asserts about its cache behaviour (`expect=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheExpectation {
    /// Every cacheable job must be computed (zero hits).
    Cold,
    /// Every cacheable job must be served from the store (zero misses).
    Warm,
}

impl FigureArgs {
    /// Parses `[budget] [full] [threads=N] [sample=P:U:W]
    /// [metrics=PATH:INTERVAL]` from `std::env::args`, exiting with status 2
    /// on a malformed argument.
    ///
    /// An explicit `sample=` rate is published through the `DKIP_SAMPLE`
    /// environment variable, which every subsequently built
    /// [`dkip_sim::Job`] reads — so the whole figure sweep runs sampled
    /// without the drivers threading the rate through. An explicit
    /// `metrics=` configuration is published through `DKIP_METRICS` the
    /// same way.
    #[must_use]
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => {
                if let Some(rate) = args.sample {
                    std::env::set_var(SAMPLE_ENV, rate.to_string());
                }
                if let Some(metrics) = &args.metrics {
                    std::env::set_var(METRICS_ENV, metrics.to_string());
                }
                args
            }
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// Parses the argument list. Arguments are positional and strict: any
    /// token that is not `full`, `threads=N`, `sample=P:U:W`,
    /// `metrics=PATH:INTERVAL` or an unsigned integer budget is an error — a
    /// mistyped budget must not fall back silently to the default, exactly
    /// as a mistyped `threads=` must not.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending argument.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut budget = None;
        let mut full_suite = false;
        let mut threads = None;
        let mut sample = None;
        let mut metrics = None;
        let mut cache = None;
        let mut expect = None;
        for arg in args {
            if arg == "full" {
                full_suite = true;
            } else if let Some(v) = arg.strip_prefix("threads=") {
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => threads = Some(n),
                    _ => {
                        return Err(format!(
                            "invalid thread count {v:?}: expected threads=N with N >= 1"
                        ))
                    }
                }
            } else if let Some(v) = arg.strip_prefix("sample=") {
                match SampleConfig::parse(v) {
                    Ok(rate) => sample = Some(rate),
                    Err(err) => {
                        return Err(format!(
                            "invalid sampling rate {v:?}: {err} (expected sample=P:U:W)"
                        ))
                    }
                }
            } else if let Some(v) = arg.strip_prefix("metrics=") {
                match MetricsConfig::parse(v) {
                    Ok(cfg) => metrics = Some(cfg),
                    Err(err) => {
                        return Err(format!(
                            "invalid metrics configuration {v:?}: {err} \
                             (expected metrics=PATH:INTERVAL)"
                        ))
                    }
                }
            } else if let Some(v) = arg.strip_prefix("cache=") {
                if v.trim().is_empty() {
                    return Err(
                        "invalid cache=: expected cache=DIR with a non-empty directory".to_owned(),
                    );
                }
                cache = Some(v.trim().to_owned());
            } else if let Some(v) = arg.strip_prefix("expect=") {
                match v {
                    "cold" => expect = Some(CacheExpectation::Cold),
                    "warm" => expect = Some(CacheExpectation::Warm),
                    _ => {
                        return Err(format!(
                            "invalid expectation {v:?}: expected expect=cold or expect=warm"
                        ))
                    }
                }
            } else if arg.starts_with("trace=") {
                // A per-µop pipeline trace of a whole multi-job sweep would
                // interleave meaninglessly; tracing is a single-run affair.
                return Err(
                    "trace= is only supported by fig_timeseries, which runs one \
                     (family, workload) pair"
                        .to_owned(),
                );
            } else {
                match arg.parse::<u64>() {
                    Ok(0) => return Err("invalid budget 0: expected at least 1 instruction".to_owned()),
                    Ok(n) => {
                        if let Some(previous) = budget {
                            return Err(format!(
                                "conflicting budgets {previous} and {n}: pass at most one numeric budget"
                            ));
                        }
                        budget = Some(n);
                    }
                    Err(_) => {
                        return Err(format!(
                            "invalid argument {arg:?}: expected a numeric budget, 'full' or 'threads=N'"
                        ))
                    }
                }
            }
        }
        Ok(FigureArgs {
            budget,
            full_suite,
            threads,
            sample,
            metrics,
            cache,
            expect,
        })
    }

    /// The instruction budget: the explicit positional argument, or
    /// `default` when none was given.
    #[must_use]
    pub fn instr_budget(&self, default: u64) -> u64 {
        self.budget.unwrap_or(default)
    }

    /// The sweep runner selected by the command line / environment, with
    /// the result store attached: an explicit `cache=DIR` wins over the
    /// `DKIP_CACHE` environment variable; neither means no caching.
    ///
    /// # Panics
    ///
    /// Exits with status 2 when an explicit `cache=` directory cannot be
    /// created (the strict-knob contract — an explicitly requested store
    /// must not be dropped silently); panics when `DKIP_CACHE` is invalid.
    #[must_use]
    pub fn runner(&self) -> SweepRunner {
        let runner = match self.threads {
            Some(n) => SweepRunner::new(n).with_store_opt(ResultStore::from_env()),
            None => SweepRunner::from_env(),
        };
        match &self.cache {
            None => runner,
            Some(dir) => match ResultStore::open(dir) {
                Ok(store) => runner.with_store(store),
                Err(e) => {
                    eprintln!("invalid cache={dir:?}: cannot open store: {e}");
                    std::process::exit(2);
                }
            },
        }
    }

    /// Reports the figure's cache totals and enforces the `expect=`
    /// assertion. Call once after rendering, with the same runner every
    /// sweep of the figure ran through (the attached store's counters are
    /// process-wide, shared across clones).
    ///
    /// Prints a `# cache: …` summary to stderr when a store is attached.
    /// With `expect=cold` the process exits 1 if anything hit the cache;
    /// with `expect=warm` it exits 1 if anything was recomputed. An
    /// `expect=` without a store exits 2 — the assertion would be
    /// meaningless.
    pub fn finish_cache(&self, runner: &SweepRunner) {
        let Some(store) = runner.store() else {
            if self.expect.is_some() {
                eprintln!("expect= requires a result store: pass cache=DIR or set DKIP_CACHE");
                std::process::exit(2);
            }
            return;
        };
        let (hits, misses) = (store.hits(), store.misses());
        eprintln!(
            "# cache: hits={hits} misses={misses} store={}",
            store.root().display()
        );
        match self.expect {
            Some(CacheExpectation::Cold) if hits > 0 => {
                eprintln!("error: expected a cold run but {hits} jobs hit the cache");
                std::process::exit(1);
            }
            Some(CacheExpectation::Warm) if misses > 0 => {
                eprintln!("error: expected a warm run but {misses} jobs were recomputed");
                std::process::exit(1);
            }
            _ => {}
        }
    }

    /// The benchmark list to use for `suite`.
    #[must_use]
    pub fn benchmarks(&self, suite: Suite) -> Vec<Benchmark> {
        if self.full_suite {
            match suite {
                Suite::Int => Benchmark::spec_int(),
                Suite::Fp => Benchmark::spec_fp(),
            }
        } else {
            Benchmark::representative()
                .into_iter()
                .filter(|b| b.suite() == suite)
                .collect()
        }
    }
}

/// Parsed command line of the `fig_timeseries` binary, which runs exactly
/// one (family, workload) pair and is therefore the only target that also
/// accepts a per-µop pipeline trace (`trace=`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeseriesArgs {
    /// The core family to run ("baseline", "kilo" or "dkip"), at its
    /// paper-default configuration.
    pub family: String,
    /// The workload to run, parsed from its display name
    /// ([`Workload::parse`]).
    pub workload: Workload,
    /// Explicit instruction budget, if one was given.
    pub budget: Option<u64>,
    /// Interval-metrics output (`metrics=<path>:<interval>`). Unlike the
    /// sweep binaries, the path is used exactly as given — one run, one
    /// file, no per-job tag.
    pub metrics: Option<MetricsConfig>,
    /// Pipeline-trace output (`trace=<path>[:<ops>]`), Konata/O3PipeView
    /// format, capped at `ops` traced µops.
    pub trace: Option<TraceConfig>,
}

impl TimeseriesArgs {
    /// Parses `<family> <workload> [budget] [metrics=PATH:INTERVAL]
    /// [trace=PATH[:OPS]]` from `std::env::args`, exiting with status 2 on a
    /// malformed argument.
    #[must_use]
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{message}");
                eprintln!(
                    "usage: fig_timeseries <baseline|kilo|dkip> <workload> \
                     [budget] [metrics=PATH:INTERVAL] [trace=PATH[:OPS]]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses the argument list with the same strictness contract as
    /// [`FigureArgs::parse`]: nothing malformed falls back silently.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending argument.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut family = None;
        let mut workload = None;
        let mut budget = None;
        let mut metrics = None;
        let mut trace = None;
        for arg in args {
            if let Some(v) = arg.strip_prefix("metrics=") {
                match MetricsConfig::parse(v) {
                    Ok(cfg) => metrics = Some(cfg),
                    Err(err) => {
                        return Err(format!(
                            "invalid metrics configuration {v:?}: {err} \
                             (expected metrics=PATH:INTERVAL)"
                        ))
                    }
                }
            } else if let Some(v) = arg.strip_prefix("trace=") {
                match TraceConfig::parse(v) {
                    Ok(cfg) => trace = Some(cfg),
                    Err(err) => {
                        return Err(format!(
                            "invalid trace configuration {v:?}: {err} \
                             (expected trace=PATH[:OPS])"
                        ))
                    }
                }
            } else if family.is_none() {
                if !matches!(arg.as_str(), "baseline" | "kilo" | "dkip") {
                    return Err(format!(
                        "unknown family {arg:?}: expected baseline, kilo or dkip"
                    ));
                }
                family = Some(arg);
            } else if workload.is_none() {
                workload = Some(Workload::parse(&arg)?);
            } else if let Ok(n) = arg.parse::<u64>() {
                if n == 0 {
                    return Err("invalid budget 0: expected at least 1 instruction".to_owned());
                }
                if let Some(previous) = budget {
                    return Err(format!(
                        "conflicting budgets {previous} and {n}: pass at most one numeric budget"
                    ));
                }
                budget = Some(n);
            } else {
                return Err(format!(
                    "invalid argument {arg:?}: expected a numeric budget, \
                     metrics=PATH:INTERVAL or trace=PATH[:OPS]"
                ));
            }
        }
        let family = family.ok_or_else(|| "missing family argument".to_owned())?;
        let workload = workload.ok_or_else(|| "missing workload argument".to_owned())?;
        Ok(TimeseriesArgs {
            family,
            workload,
            budget,
            metrics,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<FigureArgs, String> {
        FigureArgs::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn representative_subset_is_split_by_suite() {
        let args = parse(&[]).unwrap();
        assert!(!args.benchmarks(Suite::Int).is_empty());
        assert!(!args.benchmarks(Suite::Fp).is_empty());
        assert!(args
            .benchmarks(Suite::Int)
            .iter()
            .all(|b| b.suite() == Suite::Int));
    }

    #[test]
    fn full_suite_selects_all_benchmarks() {
        let args = parse(&["full"]).unwrap();
        assert_eq!(args.benchmarks(Suite::Int).len(), 12);
        assert_eq!(args.benchmarks(Suite::Fp).len(), 14);
    }

    #[test]
    fn budget_and_threads_parse_positionally() {
        let args = parse(&["2500", "full", "threads=3"]).unwrap();
        assert_eq!(args.budget, Some(2500));
        assert_eq!(args.instr_budget(DEFAULT_BUDGET), 2500);
        assert!(args.full_suite);
        assert_eq!(args.threads, Some(3));
        assert_eq!(args.runner().threads(), 3);
    }

    #[test]
    fn missing_budget_falls_back_to_the_caller_default() {
        let args = parse(&["full"]).unwrap();
        assert_eq!(args.budget, None);
        assert_eq!(args.instr_budget(DEFAULT_BUDGET), DEFAULT_BUDGET);
        assert_eq!(args.instr_budget(123), 123);
    }

    #[test]
    fn malformed_arguments_are_rejected_not_defaulted() {
        assert!(parse(&["10k"]).unwrap_err().contains("10k"));
        assert!(parse(&["-5"]).is_err(), "negative budgets are malformed");
        assert!(parse(&["threads=0"]).is_err());
        assert!(parse(&["threads=many"]).is_err());
        assert!(parse(&["ful"]).is_err(), "typos must not be ignored");
        assert!(
            parse(&["50000", "5000"])
                .unwrap_err()
                .contains("conflicting"),
            "a second budget must not silently win"
        );
        assert!(
            parse(&["0"]).unwrap_err().contains("budget 0"),
            "a zero budget would print an all-zero figure"
        );
    }

    #[test]
    fn sampling_rates_parse_strictly() {
        let args = parse(&["5000", "sample=20000:2000:4000"]).unwrap();
        let rate = args.sample.expect("rate parsed");
        assert_eq!(rate.to_string(), "20000:2000:4000");
        assert_eq!(parse(&[]).unwrap().sample, None, "exact by default");
        assert!(parse(&["sample="]).is_err());
        assert!(parse(&["sample=fast"]).is_err());
        assert!(
            parse(&["sample=1000:600:600"]).is_err(),
            "warmup + window must fit in the period"
        );
    }

    #[test]
    fn metrics_configurations_parse_strictly() {
        let args = parse(&["metrics=runs/ts.csv:500"]).unwrap();
        let metrics = args.metrics.expect("metrics parsed");
        assert_eq!(metrics.to_string(), "runs/ts.csv:500");
        assert_eq!(parse(&[]).unwrap().metrics, None, "no telemetry by default");
        assert!(parse(&["metrics="]).is_err());
        assert!(parse(&["metrics=ts.csv"]).is_err(), "interval is mandatory");
        assert!(parse(&["metrics=ts.csv:0"]).is_err());
        assert!(parse(&["metrics=:500"]).is_err(), "path must be non-empty");
    }

    #[test]
    fn cache_knobs_parse_strictly() {
        let args = parse(&["cache=target/cc", "expect=warm"]).unwrap();
        assert_eq!(args.cache.as_deref(), Some("target/cc"));
        assert_eq!(args.expect, Some(CacheExpectation::Warm));
        assert_eq!(
            parse(&["expect=cold"]).unwrap().expect,
            Some(CacheExpectation::Cold)
        );
        assert_eq!(parse(&[]).unwrap().cache, None, "no caching by default");
        assert_eq!(parse(&[]).unwrap().expect, None);
        assert!(parse(&["cache="]).is_err());
        assert!(parse(&["cache=  "]).is_err());
        assert!(parse(&["expect=lukewarm"]).is_err());
        assert!(parse(&["expect="]).is_err());
    }

    #[test]
    fn explicit_cache_attaches_a_store_to_the_runner() {
        let dir = std::env::temp_dir().join(format!("dkip-figargs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = parse(&[&format!("cache={}", dir.display()), "threads=2"]).unwrap();
        let runner = args.runner();
        assert!(runner.store().is_some());
        assert_eq!(runner.threads(), 2);
        // finish_cache without an expectation only reports; it must not exit.
        args.finish_cache(&runner);
        assert!(
            parse(&["threads=2"]).unwrap().runner().store().is_none()
                || std::env::var("DKIP_CACHE").is_ok()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_binaries_reject_pipeline_traces() {
        let err = parse(&["trace=out.trace"]).unwrap_err();
        assert!(err.contains("fig_timeseries"), "{err}");
    }

    fn parse_ts(args: &[&str]) -> Result<TimeseriesArgs, String> {
        TimeseriesArgs::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn timeseries_args_parse_family_workload_and_knobs() {
        let args = parse_ts(&[
            "dkip",
            "riscv:matmul/8",
            "metrics=ts.csv:250",
            "trace=pipe.trace:5000",
        ])
        .unwrap();
        assert_eq!(args.family, "dkip");
        assert_eq!(args.workload.name(), "riscv:matmul/8");
        assert_eq!(args.budget, None);
        assert_eq!(args.metrics.expect("metrics").to_string(), "ts.csv:250");
        let trace = args.trace.expect("trace");
        assert_eq!(trace.path, "pipe.trace");
        assert_eq!(trace.ops, 5_000);
        let spec = parse_ts(&["baseline", "gcc", "4000"]).unwrap();
        assert_eq!(spec.workload.name(), "gcc");
        assert_eq!(spec.budget, Some(4000));
    }

    #[test]
    fn timeseries_args_are_strict() {
        assert!(parse_ts(&[]).unwrap_err().contains("missing family"));
        assert!(parse_ts(&["dkip"])
            .unwrap_err()
            .contains("missing workload"));
        assert!(parse_ts(&["r10", "gcc"]).unwrap_err().contains("r10"));
        assert!(parse_ts(&["dkip", "gccc"]).unwrap_err().contains("gccc"));
        assert!(parse_ts(&["dkip", "gcc", "0"]).is_err());
        assert!(parse_ts(&["dkip", "gcc", "5", "6"])
            .unwrap_err()
            .contains("conflicting"));
        assert!(parse_ts(&["dkip", "gcc", "trace="]).is_err());
        assert!(parse_ts(&["dkip", "gcc", "trace=t.trace:0"]).is_err());
        assert!(parse_ts(&["dkip", "gcc", "metrics=m.csv"]).is_err());
        assert!(parse_ts(&["dkip", "gcc", "full"])
            .unwrap_err()
            .contains("full"));
    }

    #[test]
    fn explicit_thread_count_overrides_the_environment() {
        let args = parse(&["threads=3"]).unwrap();
        assert_eq!(args.runner().threads(), 3);
        let auto = parse(&[]).unwrap();
        assert!(auto.runner().threads() >= 1);
    }
}
