//! Benchmark harness regenerating every table and figure of the D-KIP
//! paper.
//!
//! Two kinds of targets live here:
//!
//! * **Figure binaries** (`src/bin/fig*.rs`, `table*.rs`) — each prints the
//!   rows/series of one paper artefact using the drivers in
//!   `dkip_sim::experiments`. Run them with, e.g.,
//!   `cargo run -p dkip-bench --release --bin fig09_comparison`.
//!   Every simulating binary (the nine `fig*` paper figures plus
//!   `fig_riscv_ipc`; `table1`/`table2_3` just print static configuration
//!   tables and take no arguments) accepts four optional positional
//!   arguments: the per-benchmark instruction budget, `full` to use the
//!   complete benchmark suite instead of the fast representative subset,
//!   `threads=N` to fix the sweep-runner worker-pool size (default: the
//!   `DKIP_THREADS` environment variable, then the host's available
//!   parallelism), and `sample=P:U:W` to regenerate the figure under
//!   sampled simulation at that `period:warmup:window` rate (default: the
//!   `DKIP_SAMPLE` environment variable, then exact simulation). Malformed
//!   arguments exit with status 2 — an explicitly stated budget, thread
//!   count or sampling rate never falls back silently.
//! * **Criterion benches** (`benches/`) — component microbenchmarks and one
//!   timed end-to-end simulation per core family.
//!
//! The helper functions here parse the common command-line arguments.

#![warn(missing_docs)]

pub mod throughput;

use dkip_model::{SampleConfig, SAMPLE_ENV};
use dkip_sim::SweepRunner;
use dkip_trace::{Benchmark, Suite};

/// Default per-benchmark instruction budget for the figure binaries.
pub const DEFAULT_BUDGET: u64 = 10_000;

/// Parsed command line of a figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FigureArgs {
    /// Explicit per-benchmark instruction budget, if one was given.
    /// Binaries read it through [`FigureArgs::instr_budget`] so each can
    /// pick its own default (`fig_riscv_ipc` needs a run-to-completion
    /// budget, the synthetic sweeps use [`DEFAULT_BUDGET`]).
    pub budget: Option<u64>,
    /// Whether to run the full 26-benchmark suite.
    pub full_suite: bool,
    /// Explicit worker-pool size (`threads=N`); `None` defers to
    /// `DKIP_THREADS` / the host parallelism via [`SweepRunner::from_env`].
    pub threads: Option<usize>,
    /// Explicit sampled-simulation rate (`sample=P:U:W`); `None` defers to
    /// the `DKIP_SAMPLE` environment variable (unset: exact simulation).
    pub sample: Option<SampleConfig>,
}

impl FigureArgs {
    /// Parses `[budget] [full] [threads=N] [sample=P:U:W]` from
    /// `std::env::args`, exiting with status 2 on a malformed argument.
    ///
    /// An explicit `sample=` rate is published through the `DKIP_SAMPLE`
    /// environment variable, which every subsequently built
    /// [`dkip_sim::Job`] reads — so the whole figure sweep runs sampled
    /// without the drivers threading the rate through.
    #[must_use]
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => {
                if let Some(rate) = args.sample {
                    std::env::set_var(SAMPLE_ENV, rate.to_string());
                }
                args
            }
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// Parses the argument list. Arguments are positional and strict: any
    /// token that is not `full`, `threads=N`, `sample=P:U:W` or an unsigned
    /// integer budget is an error — a mistyped budget must not fall back
    /// silently to the default, exactly as a mistyped `threads=` must not.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending argument.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut budget = None;
        let mut full_suite = false;
        let mut threads = None;
        let mut sample = None;
        for arg in args {
            if arg == "full" {
                full_suite = true;
            } else if let Some(v) = arg.strip_prefix("threads=") {
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => threads = Some(n),
                    _ => {
                        return Err(format!(
                            "invalid thread count {v:?}: expected threads=N with N >= 1"
                        ))
                    }
                }
            } else if let Some(v) = arg.strip_prefix("sample=") {
                match SampleConfig::parse(v) {
                    Ok(rate) => sample = Some(rate),
                    Err(err) => {
                        return Err(format!(
                            "invalid sampling rate {v:?}: {err} (expected sample=P:U:W)"
                        ))
                    }
                }
            } else {
                match arg.parse::<u64>() {
                    Ok(0) => return Err("invalid budget 0: expected at least 1 instruction".to_owned()),
                    Ok(n) => {
                        if let Some(previous) = budget {
                            return Err(format!(
                                "conflicting budgets {previous} and {n}: pass at most one numeric budget"
                            ));
                        }
                        budget = Some(n);
                    }
                    Err(_) => {
                        return Err(format!(
                            "invalid argument {arg:?}: expected a numeric budget, 'full' or 'threads=N'"
                        ))
                    }
                }
            }
        }
        Ok(FigureArgs {
            budget,
            full_suite,
            threads,
            sample,
        })
    }

    /// The instruction budget: the explicit positional argument, or
    /// `default` when none was given.
    #[must_use]
    pub fn instr_budget(&self, default: u64) -> u64 {
        self.budget.unwrap_or(default)
    }

    /// The sweep runner selected by the command line / environment.
    #[must_use]
    pub fn runner(&self) -> SweepRunner {
        match self.threads {
            Some(n) => SweepRunner::new(n),
            None => SweepRunner::from_env(),
        }
    }

    /// The benchmark list to use for `suite`.
    #[must_use]
    pub fn benchmarks(&self, suite: Suite) -> Vec<Benchmark> {
        if self.full_suite {
            match suite {
                Suite::Int => Benchmark::spec_int(),
                Suite::Fp => Benchmark::spec_fp(),
            }
        } else {
            Benchmark::representative()
                .into_iter()
                .filter(|b| b.suite() == suite)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<FigureArgs, String> {
        FigureArgs::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn representative_subset_is_split_by_suite() {
        let args = parse(&[]).unwrap();
        assert!(!args.benchmarks(Suite::Int).is_empty());
        assert!(!args.benchmarks(Suite::Fp).is_empty());
        assert!(args
            .benchmarks(Suite::Int)
            .iter()
            .all(|b| b.suite() == Suite::Int));
    }

    #[test]
    fn full_suite_selects_all_benchmarks() {
        let args = parse(&["full"]).unwrap();
        assert_eq!(args.benchmarks(Suite::Int).len(), 12);
        assert_eq!(args.benchmarks(Suite::Fp).len(), 14);
    }

    #[test]
    fn budget_and_threads_parse_positionally() {
        let args = parse(&["2500", "full", "threads=3"]).unwrap();
        assert_eq!(args.budget, Some(2500));
        assert_eq!(args.instr_budget(DEFAULT_BUDGET), 2500);
        assert!(args.full_suite);
        assert_eq!(args.threads, Some(3));
        assert_eq!(args.runner().threads(), 3);
    }

    #[test]
    fn missing_budget_falls_back_to_the_caller_default() {
        let args = parse(&["full"]).unwrap();
        assert_eq!(args.budget, None);
        assert_eq!(args.instr_budget(DEFAULT_BUDGET), DEFAULT_BUDGET);
        assert_eq!(args.instr_budget(123), 123);
    }

    #[test]
    fn malformed_arguments_are_rejected_not_defaulted() {
        assert!(parse(&["10k"]).unwrap_err().contains("10k"));
        assert!(parse(&["-5"]).is_err(), "negative budgets are malformed");
        assert!(parse(&["threads=0"]).is_err());
        assert!(parse(&["threads=many"]).is_err());
        assert!(parse(&["ful"]).is_err(), "typos must not be ignored");
        assert!(
            parse(&["50000", "5000"])
                .unwrap_err()
                .contains("conflicting"),
            "a second budget must not silently win"
        );
        assert!(
            parse(&["0"]).unwrap_err().contains("budget 0"),
            "a zero budget would print an all-zero figure"
        );
    }

    #[test]
    fn sampling_rates_parse_strictly() {
        let args = parse(&["5000", "sample=20000:2000:4000"]).unwrap();
        let rate = args.sample.expect("rate parsed");
        assert_eq!(rate.to_string(), "20000:2000:4000");
        assert_eq!(parse(&[]).unwrap().sample, None, "exact by default");
        assert!(parse(&["sample="]).is_err());
        assert!(parse(&["sample=fast"]).is_err());
        assert!(
            parse(&["sample=1000:600:600"]).is_err(),
            "warmup + window must fit in the period"
        );
    }

    #[test]
    fn explicit_thread_count_overrides_the_environment() {
        let args = parse(&["threads=3"]).unwrap();
        assert_eq!(args.runner().threads(), 3);
        let auto = parse(&[]).unwrap();
        assert!(auto.runner().threads() >= 1);
    }
}
