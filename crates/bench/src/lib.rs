//! Benchmark harness regenerating every table and figure of the D-KIP
//! paper.
//!
//! Two kinds of targets live here:
//!
//! * **Figure binaries** (`src/bin/fig*.rs`, `table*.rs`) — each prints the
//!   rows/series of one paper artefact using the drivers in
//!   `dkip_sim::experiments`. Run them with, e.g.,
//!   `cargo run -p dkip-bench --release --bin fig09_comparison`.
//!   Every simulating binary (the nine `fig*` ones; `table1`/`table2_3`
//!   just print static configuration tables and take no arguments) accepts
//!   three optional positional arguments: the per-benchmark instruction
//!   budget, `full` to use the complete benchmark suite instead of the
//!   fast representative subset, and `threads=N` to fix the sweep-runner
//!   worker-pool size (default: the `DKIP_THREADS` environment variable,
//!   then the host's available parallelism).
//! * **Criterion benches** (`benches/`) — component microbenchmarks and one
//!   timed end-to-end simulation per core family.
//!
//! The helper functions here parse the common command-line arguments.

#![warn(missing_docs)]

use dkip_sim::SweepRunner;
use dkip_trace::{Benchmark, Suite};

/// Default per-benchmark instruction budget for the figure binaries.
pub const DEFAULT_BUDGET: u64 = 10_000;

/// Parsed command line of a figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FigureArgs {
    /// Instructions per benchmark per configuration.
    pub budget: u64,
    /// Whether to run the full 26-benchmark suite.
    pub full_suite: bool,
    /// Explicit worker-pool size (`threads=N`); `None` defers to
    /// `DKIP_THREADS` / the host parallelism via [`SweepRunner::from_env`].
    pub threads: Option<usize>,
}

impl FigureArgs {
    /// Parses `[budget] [full] [threads=N]` from `std::env::args`.
    #[must_use]
    pub fn from_env() -> Self {
        let mut budget = DEFAULT_BUDGET;
        let mut full_suite = false;
        let mut threads = None;
        for arg in std::env::args().skip(1) {
            if arg == "full" {
                full_suite = true;
            } else if let Some(v) = arg.strip_prefix("threads=") {
                match v.parse::<usize>() {
                    // `threads=` states intent explicitly, so unlike the
                    // loosely-parsed positional budget it must not fall back
                    // silently — a user pinning the pool size for a
                    // reproducibility check should get what they asked for.
                    Ok(n) if n > 0 => threads = Some(n),
                    _ => {
                        eprintln!("invalid thread count {v:?}: expected threads=N with N >= 1");
                        std::process::exit(2);
                    }
                }
            } else if let Ok(n) = arg.parse::<u64>() {
                budget = n;
            }
        }
        FigureArgs {
            budget,
            full_suite,
            threads,
        }
    }

    /// The sweep runner selected by the command line / environment.
    #[must_use]
    pub fn runner(&self) -> SweepRunner {
        match self.threads {
            Some(n) => SweepRunner::new(n),
            None => SweepRunner::from_env(),
        }
    }

    /// The benchmark list to use for `suite`.
    #[must_use]
    pub fn benchmarks(&self, suite: Suite) -> Vec<Benchmark> {
        if self.full_suite {
            match suite {
                Suite::Int => Benchmark::spec_int(),
                Suite::Fp => Benchmark::spec_fp(),
            }
        } else {
            Benchmark::representative()
                .into_iter()
                .filter(|b| b.suite() == suite)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_subset_is_split_by_suite() {
        let args = FigureArgs {
            budget: 1000,
            full_suite: false,
            threads: None,
        };
        assert!(!args.benchmarks(Suite::Int).is_empty());
        assert!(!args.benchmarks(Suite::Fp).is_empty());
        assert!(args.benchmarks(Suite::Int).iter().all(|b| b.suite() == Suite::Int));
    }

    #[test]
    fn full_suite_selects_all_benchmarks() {
        let args = FigureArgs {
            budget: 1000,
            full_suite: true,
            threads: None,
        };
        assert_eq!(args.benchmarks(Suite::Int).len(), 12);
        assert_eq!(args.benchmarks(Suite::Fp).len(), 14);
    }

    #[test]
    fn explicit_thread_count_overrides_the_environment() {
        let args = FigureArgs {
            budget: 1000,
            full_suite: false,
            threads: Some(3),
        };
        assert_eq!(args.runner().threads(), 3);
        let auto = FigureArgs {
            threads: None,
            ..args
        };
        assert!(auto.runner().threads() >= 1);
    }
}
