//! Counters, histograms and aggregate simulation statistics.

use std::fmt;

/// A bucketed histogram of non-negative integer samples.
///
/// Used to reproduce Figure 3 of the paper (the distribution of the
/// decode→issue distance) and to track queue-occupancy distributions.
///
/// # Example
///
/// ```
/// use dkip_model::stats::Histogram;
///
/// let mut h = Histogram::new(10, 100);
/// h.record(5);
/// h.record(15);
/// h.record(1_000); // lands in the overflow bucket
/// assert_eq!(h.total_samples(), 3);
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(1), 1);
/// assert_eq!(h.overflow_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with buckets of `bucket_width` covering values up
    /// to `max_value`; larger samples are recorded in an overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero.
    #[must_use]
    pub fn new(bucket_width: u64, max_value: u64) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        let n_buckets = (max_value / bucket_width + 1) as usize;
        Histogram {
            bucket_width,
            buckets: vec![0; n_buckets],
            overflow: 0,
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.total += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// The width of each bucket.
    #[must_use]
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Number of regular (non-overflow) buckets.
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of samples recorded in bucket `idx`.
    #[must_use]
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets.get(idx).copied().unwrap_or(0)
    }

    /// The inclusive lower bound of bucket `idx`.
    #[must_use]
    pub fn bucket_lower_bound(&self, idx: usize) -> u64 {
        idx as u64 * self.bucket_width
    }

    /// Number of samples that exceeded the covered range.
    #[must_use]
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Total number of samples recorded.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Largest sample recorded, or 0 if empty.
    #[must_use]
    pub fn max_value(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples, or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The fraction (0.0–1.0) of samples in bucket `idx`.
    #[must_use]
    pub fn bucket_fraction(&self, idx: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bucket_count(idx) as f64 / self.total as f64
        }
    }

    /// The fraction of samples whose value is at most `value`.
    #[must_use]
    pub fn fraction_at_most(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let limit_bucket = (value / self.bucket_width) as usize;
        let mut count = 0u64;
        for (idx, c) in self.buckets.iter().enumerate() {
            if idx <= limit_bucket {
                count += c;
            }
        }
        count as f64 / self.total as f64
    }

    /// Iterates over `(bucket_lower_bound, count)` pairs for all regular
    /// buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, c)| (self.bucket_lower_bound(i), *c))
    }

    /// The raw sum of every recorded sample.
    ///
    /// [`SimStats::to_kv`] only renders the rounded mean, which cannot be
    /// inverted exactly; the result store persists this raw sum alongside
    /// the serialisation so [`Histogram::from_parts`] can reconstruct a
    /// bit-identical histogram.
    #[must_use]
    pub fn sample_sum(&self) -> u128 {
        self.sum
    }

    /// Reconstructs a histogram from its serialised parts — the inverse of
    /// the `issue_latency.*` flattening in [`SimStats::to_kv`], plus the raw
    /// sample sum from [`Histogram::sample_sum`].
    ///
    /// `buckets` lists `(lower_bound, count)` pairs for the non-empty
    /// regular buckets, exactly as the `issue_latency.buckets=` line stores
    /// them.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the parts are inconsistent: a
    /// zero bucket width, a lower bound that is not a multiple of the width
    /// or beyond `num_buckets`, a duplicate bucket, or a `total` that does
    /// not equal the bucket counts plus the overflow.
    pub fn from_parts(
        bucket_width: u64,
        num_buckets: usize,
        buckets: &[(u64, u64)],
        overflow: u64,
        total: u64,
        max: u64,
        sum: u128,
    ) -> Result<Histogram, String> {
        if bucket_width == 0 {
            return Err("bucket width must be positive".to_owned());
        }
        let mut counts = vec![0u64; num_buckets];
        for &(lower, count) in buckets {
            if lower % bucket_width != 0 {
                return Err(format!(
                    "bucket lower bound {lower} is not a multiple of the width {bucket_width}"
                ));
            }
            let idx = (lower / bucket_width) as usize;
            let slot = counts
                .get_mut(idx)
                .ok_or_else(|| format!("bucket {lower} is beyond num_buckets={num_buckets}"))?;
            if *slot != 0 {
                return Err(format!("duplicate bucket at lower bound {lower}"));
            }
            *slot = count;
        }
        let counted: u64 = counts.iter().sum::<u64>() + overflow;
        if counted != total {
            return Err(format!(
                "total={total} does not match bucket counts + overflow = {counted}"
            ));
        }
        Ok(Histogram {
            bucket_width,
            buckets: counts,
            overflow,
            total,
            sum,
            max,
        })
    }

    /// Merges another histogram with identical bucketing into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths or bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "bucket widths must match"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket counts must match"
        );
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Peak-occupancy tracker for a queue or buffer.
///
/// Records the current occupancy and remembers the maximum ever observed;
/// used for Figures 13 and 14 (maximum number of instructions and registers
/// in the LLIB).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Occupancy {
    current: u64,
    peak: u64,
}

impl Occupancy {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` elements.
    pub fn add(&mut self, n: u64) {
        self.current += n;
        self.peak = self.peak.max(self.current);
    }

    /// Removes `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if more elements are removed than are present.
    pub fn remove(&mut self, n: u64) {
        assert!(n <= self.current, "occupancy underflow");
        self.current -= n;
    }

    /// Sets the current occupancy directly (peak is updated).
    pub fn set(&mut self, value: u64) {
        self.current = value;
        self.peak = self.peak.max(value);
    }

    /// The current occupancy.
    #[must_use]
    pub fn current(&self) -> u64 {
        self.current
    }

    /// The maximum occupancy ever observed.
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak
    }
}

/// Aggregate statistics reported by a single simulation run.
///
/// Not every field is meaningful for every core model: the baseline
/// out-of-order cores leave the D-KIP-specific fields at zero, and vice
/// versa.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed (retired) correct-path instructions.
    pub committed: u64,
    /// Instructions fetched from the trace.
    pub fetched: u64,
    /// Conditional branches executed.
    pub cond_branches: u64,
    /// Conditional branches mispredicted.
    pub branch_mispredicts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Loads that hit in the L1 data cache.
    pub l1_hits: u64,
    /// Loads that missed L1 but hit in the L2 cache.
    pub l2_hits: u64,
    /// Loads that went to main memory.
    pub mem_accesses: u64,
    /// Cycles in which the front end could not fetch because the ROB
    /// (or Aging-ROB) was full.
    pub rob_full_stall_cycles: u64,
    /// Cycles in which fetch was stalled waiting for a mispredicted branch
    /// to resolve.
    pub mispredict_stall_cycles: u64,
    /// Instructions classified as low execution locality (D-KIP only).
    pub low_locality_instrs: u64,
    /// Instructions executed on the Cache Processor / main pipeline.
    pub high_locality_instrs: u64,
    /// Cycles the Analyze stage stalled waiting for an in-flight
    /// short-latency instruction to write back (D-KIP only).
    pub analyze_stall_cycles: u64,
    /// Cycles an LLIB was full and blocked the Analyze stage (D-KIP only).
    pub llib_full_stall_cycles: u64,
    /// Checkpoints taken (D-KIP and KILO baselines).
    pub checkpoints_taken: u64,
    /// Checkpoint recoveries performed.
    pub checkpoint_recoveries: u64,
    /// Peak occupancy of the integer LLIB in instructions (D-KIP only).
    pub llib_int_peak_instrs: u64,
    /// Peak occupancy of the floating-point LLIB in instructions (D-KIP only).
    pub llib_fp_peak_instrs: u64,
    /// Peak number of registers held in the integer LLRF (D-KIP only).
    pub llrf_int_peak_regs: u64,
    /// Peak number of registers held in the floating-point LLRF (D-KIP only).
    pub llrf_fp_peak_regs: u64,
    /// Histogram of decode→issue distances (only collected when the core is
    /// asked to characterise execution locality, Figure 3).
    pub issue_latency: Option<Histogram>,
    /// `tick()` invocations actually executed by the core. With the
    /// event-driven clock this is `cycles - cycles_skipped`; single-stepping
    /// (`DKIP_NO_SKIP=1`) makes it equal to `cycles`. Host-side telemetry:
    /// excluded from [`SimStats::to_kv`] so golden snapshots stay identical
    /// across clock modes.
    pub ticks_executed: u64,
    /// Quiesced cycles the event-driven clock advanced over without running
    /// a tick. Host-side telemetry: excluded from [`SimStats::to_kv`].
    pub cycles_skipped: u64,
}

impl SimStats {
    /// Creates an all-zero statistics record.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Instructions per cycle; 0.0 if no cycles were simulated.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate over conditional branches (0.0–1.0).
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Fraction of loads that accessed main memory (0.0–1.0).
    #[must_use]
    pub fn memory_access_rate(&self) -> f64 {
        let total = self.l1_hits + self.l2_hits + self.mem_accesses;
        if total == 0 {
            0.0
        } else {
            self.mem_accesses as f64 / total as f64
        }
    }

    /// Fraction of committed instructions processed on the Cache Processor
    /// (high execution locality). Only meaningful for the D-KIP.
    #[must_use]
    pub fn high_locality_fraction(&self) -> f64 {
        let total = self.high_locality_instrs + self.low_locality_instrs;
        if total == 0 {
            0.0
        } else {
            self.high_locality_instrs as f64 / total as f64
        }
    }

    /// Fraction of simulated cycles the event-driven clock skipped (0.0–1.0).
    #[must_use]
    pub fn skipped_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.cycles_skipped as f64 / self.cycles as f64
        }
    }

    /// Snapshot of the counters that single-stepping bumps once per quiesced
    /// cycle, in a fixed order. Taken immediately before a tick; see
    /// [`SimStats::replay_stall_cycles`].
    #[must_use]
    pub fn stall_counter_snapshot(&self) -> [u64; 4] {
        [
            self.rob_full_stall_cycles,
            self.mispredict_stall_cycles,
            self.analyze_stall_cycles,
            self.llib_full_stall_cycles,
        ]
    }

    /// Replays the per-cycle stall bumps of a quiesced tick over `skipped`
    /// additional cycles.
    ///
    /// When the event-driven clock proves a tick made no progress, every
    /// skipped cycle up to the next event would have re-executed that exact
    /// tick — including its stall-counter increments. `before` is the
    /// [`SimStats::stall_counter_snapshot`] taken just before the quiesced
    /// tick ran; the difference against the current counters is the
    /// per-cycle bump, which this multiplies by `skipped` so the counters
    /// end up bit-identical to single-stepping.
    pub fn replay_stall_cycles(&mut self, before: [u64; 4], skipped: u64) {
        let after = self.stall_counter_snapshot();
        let bumped = [
            &mut self.rob_full_stall_cycles,
            &mut self.mispredict_stall_cycles,
            &mut self.analyze_stall_cycles,
            &mut self.llib_full_stall_cycles,
        ];
        for ((counter, before), after) in bumped.into_iter().zip(before).zip(after) {
            *counter += (after - before) * skipped;
        }
    }
}

impl SimStats {
    /// Serialises the statistics as stable `key=value` lines.
    ///
    /// This is the format stored in the golden snapshot files under
    /// `tests/golden/`: one line per field in declaration order, derived
    /// rates rendered with a fixed precision, and the optional issue-latency
    /// histogram flattened into `issue_latency.*` keys. Two runs produce
    /// byte-identical output if and only if they observed the same counter
    /// values, so the serialisation doubles as a bit-for-bit equality check
    /// for the determinism and parallel-runner tests.
    #[must_use]
    pub fn to_kv(&self) -> String {
        use fmt::Write as _;
        // Exhaustive destructuring (no `..`): adding a field to `SimStats`
        // without serialising it here is a compile error, so new counters
        // can never silently escape the golden snapshots.
        let SimStats {
            cycles,
            committed,
            fetched,
            cond_branches,
            branch_mispredicts,
            loads,
            stores,
            l1_hits,
            l2_hits,
            mem_accesses,
            rob_full_stall_cycles,
            mispredict_stall_cycles,
            low_locality_instrs,
            high_locality_instrs,
            analyze_stall_cycles,
            llib_full_stall_cycles,
            checkpoints_taken,
            checkpoint_recoveries,
            llib_int_peak_instrs,
            llib_fp_peak_instrs,
            llrf_int_peak_regs,
            llrf_fp_peak_regs,
            issue_latency,
            // Clock telemetry is deliberately NOT serialised: it describes
            // how the host advanced simulated time (event-driven skipping vs
            // DKIP_NO_SKIP single-stepping), not what the simulated machine
            // did, and golden snapshots must be identical in both modes.
            ticks_executed: _,
            cycles_skipped: _,
        } = self;
        let mut out = String::new();
        for (key, value) in [
            ("cycles", cycles),
            ("committed", committed),
            ("fetched", fetched),
            ("cond_branches", cond_branches),
            ("branch_mispredicts", branch_mispredicts),
            ("loads", loads),
            ("stores", stores),
            ("l1_hits", l1_hits),
            ("l2_hits", l2_hits),
            ("mem_accesses", mem_accesses),
            ("rob_full_stall_cycles", rob_full_stall_cycles),
            ("mispredict_stall_cycles", mispredict_stall_cycles),
            ("low_locality_instrs", low_locality_instrs),
            ("high_locality_instrs", high_locality_instrs),
            ("analyze_stall_cycles", analyze_stall_cycles),
            ("llib_full_stall_cycles", llib_full_stall_cycles),
            ("checkpoints_taken", checkpoints_taken),
            ("checkpoint_recoveries", checkpoint_recoveries),
            ("llib_int_peak_instrs", llib_int_peak_instrs),
            ("llib_fp_peak_instrs", llib_fp_peak_instrs),
            ("llrf_int_peak_regs", llrf_int_peak_regs),
            ("llrf_fp_peak_regs", llrf_fp_peak_regs),
        ] {
            let _ = writeln!(out, "{key}={value}");
        }
        let _ = writeln!(out, "ipc={:.6}", self.ipc());
        let _ = writeln!(out, "mispredict_rate={:.6}", self.mispredict_rate());
        match issue_latency {
            None => {
                let _ = writeln!(out, "issue_latency=none");
            }
            Some(hist) => {
                let _ = writeln!(out, "issue_latency.bucket_width={}", hist.bucket_width());
                let _ = writeln!(out, "issue_latency.num_buckets={}", hist.num_buckets());
                let _ = writeln!(out, "issue_latency.total={}", hist.total_samples());
                let _ = writeln!(out, "issue_latency.overflow={}", hist.overflow_count());
                let _ = writeln!(out, "issue_latency.max={}", hist.max_value());
                let _ = writeln!(out, "issue_latency.mean={:.6}", hist.mean());
                let buckets: Vec<String> = hist
                    .iter()
                    .filter(|(_, count)| *count > 0)
                    .map(|(lower, count)| format!("{lower}:{count}"))
                    .collect();
                let _ = writeln!(out, "issue_latency.buckets={}", buckets.join(","));
            }
        }
        out
    }

    /// Parses the [`SimStats::to_kv`] serialisation back into a statistics
    /// record — the load half of the content-addressed result store.
    ///
    /// `histogram_sum` supplies the raw issue-latency sample sum, which
    /// `to_kv` renders only as a rounded mean (the store persists it in a
    /// supplementary field); it is ignored when the document carries
    /// `issue_latency=none`. The parser is strict — every counter line must
    /// be present exactly once and nothing unknown may appear — and the
    /// derived `ipc=`/`mispredict_rate=` lines are cross-checked against the
    /// parsed counters, so a corrupted document fails to parse instead of
    /// yielding subtly wrong statistics. Callers that need bit-exact
    /// fidelity additionally compare `from_kv(kv).to_kv()` against the
    /// original bytes.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the missing, duplicated,
    /// malformed or inconsistent line.
    pub fn from_kv(kv: &str, histogram_sum: u128) -> Result<SimStats, String> {
        const COUNTERS: [&str; 22] = [
            "cycles",
            "committed",
            "fetched",
            "cond_branches",
            "branch_mispredicts",
            "loads",
            "stores",
            "l1_hits",
            "l2_hits",
            "mem_accesses",
            "rob_full_stall_cycles",
            "mispredict_stall_cycles",
            "low_locality_instrs",
            "high_locality_instrs",
            "analyze_stall_cycles",
            "llib_full_stall_cycles",
            "checkpoints_taken",
            "checkpoint_recoveries",
            "llib_int_peak_instrs",
            "llib_fp_peak_instrs",
            "llrf_int_peak_regs",
            "llrf_fp_peak_regs",
        ];
        let mut counters: [Option<u64>; 22] = [None; 22];
        let mut derived: [Option<String>; 2] = [None, None];
        let mut hist: std::collections::BTreeMap<String, String> =
            std::collections::BTreeMap::new();
        let mut hist_none = false;
        for line in kv.lines() {
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("malformed line {line:?}"))?;
            if let Some(idx) = COUNTERS.iter().position(|&name| name == key) {
                if counters[idx].is_some() {
                    return Err(format!("duplicate counter {key}"));
                }
                counters[idx] = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("counter {key} has non-integer value {value:?}"))?,
                );
            } else if key == "ipc" || key == "mispredict_rate" {
                let idx = usize::from(key == "mispredict_rate");
                if derived[idx].is_some() {
                    return Err(format!("duplicate derived field {key}"));
                }
                derived[idx] = Some(value.to_owned());
            } else if key == "issue_latency" {
                if value != "none" {
                    return Err(format!("issue_latency must be 'none', got {value:?}"));
                }
                hist_none = true;
            } else if let Some(sub) = key.strip_prefix("issue_latency.") {
                if hist.insert(sub.to_owned(), value.to_owned()).is_some() {
                    return Err(format!("duplicate histogram field {key}"));
                }
            } else {
                return Err(format!("unknown field {key}"));
            }
        }
        for (idx, slot) in counters.iter().enumerate() {
            if slot.is_none() {
                return Err(format!("missing counter {}", COUNTERS[idx]));
            }
        }
        let get = |name: &str| {
            counters[COUNTERS.iter().position(|&n| n == name).unwrap()].unwrap_or_default()
        };
        let issue_latency = match (hist_none, hist.is_empty()) {
            (true, true) => None,
            (true, false) => return Err("both issue_latency=none and histogram fields".to_owned()),
            (false, true) => return Err("missing issue_latency section".to_owned()),
            (false, false) => {
                let mut field = |name: &str| -> Result<String, String> {
                    hist.remove(name)
                        .ok_or_else(|| format!("missing histogram field issue_latency.{name}"))
                };
                let parse_u64 = |text: &str, name: &str| -> Result<u64, String> {
                    text.parse::<u64>()
                        .map_err(|_| format!("histogram field {name} has non-integer value"))
                };
                let bucket_width = parse_u64(&field("bucket_width")?, "bucket_width")?;
                let num_buckets = parse_u64(&field("num_buckets")?, "num_buckets")? as usize;
                let total = parse_u64(&field("total")?, "total")?;
                let overflow = parse_u64(&field("overflow")?, "overflow")?;
                let max = parse_u64(&field("max")?, "max")?;
                let mean = field("mean")?;
                let buckets_text = field("buckets")?;
                if let Some(stray) = hist.keys().next() {
                    return Err(format!("unknown histogram field issue_latency.{stray}"));
                }
                let mut buckets = Vec::new();
                for pair in buckets_text.split(',').filter(|p| !p.is_empty()) {
                    let (lower, count) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("malformed bucket entry {pair:?}"))?;
                    buckets.push((parse_u64(lower, "buckets")?, parse_u64(count, "buckets")?));
                }
                let hist = Histogram::from_parts(
                    bucket_width,
                    num_buckets,
                    &buckets,
                    overflow,
                    total,
                    max,
                    histogram_sum,
                )?;
                if format!("{:.6}", hist.mean()) != mean {
                    return Err(format!(
                        "histogram mean {mean} inconsistent with sum {histogram_sum} over {total} samples"
                    ));
                }
                Some(hist)
            }
        };
        let stats = SimStats {
            cycles: get("cycles"),
            committed: get("committed"),
            fetched: get("fetched"),
            cond_branches: get("cond_branches"),
            branch_mispredicts: get("branch_mispredicts"),
            loads: get("loads"),
            stores: get("stores"),
            l1_hits: get("l1_hits"),
            l2_hits: get("l2_hits"),
            mem_accesses: get("mem_accesses"),
            rob_full_stall_cycles: get("rob_full_stall_cycles"),
            mispredict_stall_cycles: get("mispredict_stall_cycles"),
            low_locality_instrs: get("low_locality_instrs"),
            high_locality_instrs: get("high_locality_instrs"),
            analyze_stall_cycles: get("analyze_stall_cycles"),
            llib_full_stall_cycles: get("llib_full_stall_cycles"),
            checkpoints_taken: get("checkpoints_taken"),
            checkpoint_recoveries: get("checkpoint_recoveries"),
            llib_int_peak_instrs: get("llib_int_peak_instrs"),
            llib_fp_peak_instrs: get("llib_fp_peak_instrs"),
            llrf_int_peak_regs: get("llrf_int_peak_regs"),
            llrf_fp_peak_regs: get("llrf_fp_peak_regs"),
            issue_latency,
            ticks_executed: 0,
            cycles_skipped: 0,
        };
        for (slot, name) in derived.iter().zip(["ipc", "mispredict_rate"]) {
            let text = slot
                .as_ref()
                .ok_or_else(|| format!("missing derived field {name}"))?;
            let recomputed = if name == "ipc" {
                stats.ipc()
            } else {
                stats.mispredict_rate()
            };
            if format!("{recomputed:.6}") != *text {
                return Err(format!(
                    "derived field {name}={text} inconsistent with counters ({recomputed:.6})"
                ));
            }
        }
        Ok(stats)
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles={} committed={} ipc={:.3} mispredict_rate={:.3} mem_rate={:.3}",
            self.cycles,
            self.committed,
            self.ipc(),
            self.mispredict_rate(),
            self.memory_access_rate()
        )
    }
}

/// Accumulates per-benchmark IPC values into an arithmetic mean, as used for
/// the "Average IPC (Arith. Mean)" axes of the paper's figures.
#[derive(Debug, Clone, Default)]
pub struct MeanIpc {
    sum: f64,
    count: u64,
}

impl MeanIpc {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one benchmark's IPC.
    pub fn add(&mut self, ipc: f64) {
        self.sum += ipc;
        self.count += 1;
    }

    /// Number of benchmarks accumulated.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The arithmetic mean, or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One measured detailed window of a sampled simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Dynamic instruction index at which the measured window began.
    pub start_instr: u64,
    /// Instructions committed inside the measured window (warmup excluded).
    pub committed: u64,
    /// Cycles the measured window took.
    pub cycles: u64,
}

impl WindowSample {
    /// The window's IPC; 0.0 for an empty window.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// A whole-run IPC estimate produced by [`SampleEstimator::estimate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpcEstimate {
    /// The ratio-estimator IPC: total committed over total cycles across
    /// every measured window.
    pub ipc: f64,
    /// Half-width of the 95% confidence interval around the per-window
    /// mean IPC (normal approximation); 0.0 with fewer than two windows.
    pub ci95: f64,
    /// Number of measured windows that contributed.
    pub windows: usize,
    /// Total instructions committed inside measured windows.
    pub committed: u64,
    /// Total cycles spent inside measured windows.
    pub cycles: u64,
}

/// Combines the per-window measurements of a sampled simulation into a
/// whole-run IPC estimate with a reported confidence interval
/// (SMARTS-style systematic sampling).
///
/// The point estimate is the *ratio estimator* — total committed
/// instructions over total cycles across all measured windows — which
/// weights longer windows proportionally and converges to the exact-run
/// IPC as coverage grows. The confidence interval treats the per-window
/// IPCs as independent samples and applies the normal approximation:
/// `1.96·s/√n`, where `s` is the sample standard deviation. A single
/// window yields a zero-width interval (no variance information), which is
/// the degenerate case the unit tests pin.
#[derive(Debug, Clone, Default)]
pub struct SampleEstimator {
    windows: Vec<WindowSample>,
}

impl SampleEstimator {
    /// Creates an empty estimator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one measured window. Windows with zero cycles are ignored (an
    /// exhausted stream can produce an empty trailing window).
    pub fn add_window(&mut self, window: WindowSample) {
        if window.cycles > 0 {
            self.windows.push(window);
        }
    }

    /// The measured windows, in insertion order.
    #[must_use]
    pub fn windows(&self) -> &[WindowSample] {
        &self.windows
    }

    /// Number of measured windows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window has been measured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total instructions committed inside measured windows.
    #[must_use]
    pub fn total_committed(&self) -> u64 {
        self.windows.iter().map(|w| w.committed).sum()
    }

    /// Total cycles spent inside measured windows.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.windows.iter().map(|w| w.cycles).sum()
    }

    /// The ratio-estimator IPC (total committed / total cycles); 0.0 when
    /// nothing was measured.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            0.0
        } else {
            self.total_committed() as f64 / cycles as f64
        }
    }

    /// Arithmetic mean of the per-window IPCs; 0.0 when empty.
    #[must_use]
    pub fn mean_window_ipc(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        self.windows.iter().map(WindowSample::ipc).sum::<f64>() / self.windows.len() as f64
    }

    /// Sample standard deviation of the per-window IPCs (n−1 denominator);
    /// 0.0 with fewer than two windows.
    #[must_use]
    pub fn window_ipc_stddev(&self) -> f64 {
        let n = self.windows.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_window_ipc();
        let var = self
            .windows
            .iter()
            .map(|w| {
                let d = w.ipc() - mean;
                d * d
            })
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Half-width of the 95% confidence interval around the per-window
    /// mean IPC: `1.96·s/√n`. 0.0 with fewer than two windows.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        let n = self.windows.len();
        if n < 2 {
            return 0.0;
        }
        1.96 * self.window_ipc_stddev() / (n as f64).sqrt()
    }

    /// The combined estimate.
    #[must_use]
    pub fn estimate(&self) -> IpcEstimate {
        IpcEstimate {
            ipc: self.ipc(),
            ci95: self.ci95_half_width(),
            windows: self.windows.len(),
            committed: self.total_committed(),
            cycles: self.total_cycles(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(100, 1000);
        for v in [0, 50, 99, 100, 101, 950, 1001, 5000] {
            h.record(v);
        }
        assert_eq!(h.bucket_count(0), 3);
        assert_eq!(h.bucket_count(1), 2);
        assert_eq!(h.bucket_count(9), 1);
        // 1001 still falls in the last regular bucket (1000..1100); only 5000 overflows.
        assert_eq!(h.bucket_count(10), 1);
        assert_eq!(h.overflow_count(), 1);
        assert_eq!(h.total_samples(), 8);
        assert_eq!(h.max_value(), 5000);
    }

    #[test]
    fn histogram_fraction_at_most() {
        let mut h = Histogram::new(10, 100);
        for v in 0..100 {
            h.record(v);
        }
        let f = h.fraction_at_most(49);
        assert!((f - 0.5).abs() < 1e-9, "expected 0.5, got {f}");
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::new(10, 100);
        let mut b = Histogram::new(10, 100);
        a.record(5);
        b.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.total_samples(), 3);
        assert_eq!(a.bucket_count(0), 2);
        assert_eq!(a.overflow_count(), 1);
    }

    #[test]
    #[should_panic(expected = "bucket widths")]
    fn histogram_merge_rejects_mismatched_widths() {
        let mut a = Histogram::new(10, 100);
        let b = Histogram::new(20, 100);
        a.merge(&b);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(1, 10);
        h.record(2);
        h.record(4);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        let empty = Histogram::new(1, 10);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn occupancy_tracks_peak() {
        let mut occ = Occupancy::new();
        occ.add(5);
        occ.add(3);
        occ.remove(6);
        occ.add(1);
        assert_eq!(occ.current(), 3);
        assert_eq!(occ.peak(), 8);
        occ.set(20);
        assert_eq!(occ.peak(), 20);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn occupancy_underflow_panics() {
        let mut occ = Occupancy::new();
        occ.add(1);
        occ.remove(2);
    }

    #[test]
    fn ipc_and_rates() {
        let stats = SimStats {
            cycles: 1000,
            committed: 2500,
            cond_branches: 100,
            branch_mispredicts: 5,
            l1_hits: 90,
            l2_hits: 5,
            mem_accesses: 5,
            ..SimStats::default()
        };
        assert!((stats.ipc() - 2.5).abs() < 1e-12);
        assert!((stats.mispredict_rate() - 0.05).abs() < 1e-12);
        assert!((stats.memory_access_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_stats_do_not_divide_by_zero() {
        let stats = SimStats::new();
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.mispredict_rate(), 0.0);
        assert_eq!(stats.memory_access_rate(), 0.0);
        assert_eq!(stats.high_locality_fraction(), 0.0);
    }

    #[test]
    fn mean_ipc_accumulator() {
        let mut mean = MeanIpc::new();
        mean.add(1.0);
        mean.add(2.0);
        mean.add(3.0);
        assert_eq!(mean.count(), 3);
        assert!((mean.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_display_is_nonempty() {
        let stats = SimStats::new();
        assert!(stats.to_string().contains("ipc"));
    }

    #[test]
    fn sample_estimator_matches_hand_computed_mean_and_ci() {
        // Three windows with IPCs 2.0, 1.0 and 0.5:
        //   ratio estimate      = (100+100+100)/(50+100+200) = 300/350 = 6/7
        //   mean window IPC     = (2 + 1 + 0.5)/3            = 7/6
        //   sample variance     = ((5/6)² + (1/6)² + (4/6)²)/2 = 7/12
        //   95% CI half-width   = 1.96·√(7/12)/√3
        let mut est = SampleEstimator::new();
        est.add_window(WindowSample {
            start_instr: 0,
            committed: 100,
            cycles: 50,
        });
        est.add_window(WindowSample {
            start_instr: 1_000,
            committed: 100,
            cycles: 100,
        });
        est.add_window(WindowSample {
            start_instr: 2_000,
            committed: 100,
            cycles: 200,
        });
        assert_eq!(est.len(), 3);
        assert_eq!(est.total_committed(), 300);
        assert_eq!(est.total_cycles(), 350);
        assert!((est.ipc() - 6.0 / 7.0).abs() < 1e-12);
        assert!((est.mean_window_ipc() - 7.0 / 6.0).abs() < 1e-12);
        assert!((est.window_ipc_stddev() - (7.0f64 / 12.0).sqrt()).abs() < 1e-12);
        let expected_ci = 1.96 * (7.0f64 / 12.0).sqrt() / 3.0f64.sqrt();
        assert!((est.ci95_half_width() - expected_ci).abs() < 1e-12);
        let e = est.estimate();
        assert_eq!(e.windows, 3);
        assert_eq!(e.committed, 300);
        assert_eq!(e.cycles, 350);
        assert!((e.ipc - 6.0 / 7.0).abs() < 1e-12);
        assert!((e.ci95 - expected_ci).abs() < 1e-12);
    }

    #[test]
    fn sample_estimator_degenerate_single_window() {
        // One window carries no variance information: the point estimate is
        // the window's own IPC and the confidence interval collapses to 0.
        let mut est = SampleEstimator::new();
        est.add_window(WindowSample {
            start_instr: 500,
            committed: 123,
            cycles: 456,
        });
        assert_eq!(est.len(), 1);
        assert!((est.ipc() - 123.0 / 456.0).abs() < 1e-12);
        assert!((est.mean_window_ipc() - 123.0 / 456.0).abs() < 1e-12);
        assert_eq!(est.window_ipc_stddev(), 0.0);
        assert_eq!(est.ci95_half_width(), 0.0);
        assert_eq!(est.estimate().ci95, 0.0);
    }

    #[test]
    fn sample_estimator_ignores_empty_windows_and_handles_none() {
        let mut est = SampleEstimator::new();
        assert!(est.is_empty());
        assert_eq!(est.ipc(), 0.0);
        assert_eq!(est.ci95_half_width(), 0.0);
        est.add_window(WindowSample {
            start_instr: 0,
            committed: 0,
            cycles: 0,
        });
        assert!(est.is_empty(), "zero-cycle windows must be dropped");
        assert_eq!(est.estimate().windows, 0);
    }

    #[test]
    fn identical_windows_yield_a_zero_width_interval() {
        let mut est = SampleEstimator::new();
        for i in 0..5 {
            est.add_window(WindowSample {
                start_instr: i * 100,
                committed: 200,
                cycles: 80,
            });
        }
        assert!((est.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(est.window_ipc_stddev(), 0.0);
        assert_eq!(est.ci95_half_width(), 0.0);
    }

    #[test]
    fn kv_serialisation_is_stable_and_complete() {
        let stats = SimStats {
            cycles: 1000,
            committed: 2500,
            loads: 7,
            ..SimStats::default()
        };
        let kv = stats.to_kv();
        assert_eq!(kv, stats.to_kv(), "serialisation must be deterministic");
        assert!(kv.contains("cycles=1000\n"));
        assert!(kv.contains("committed=2500\n"));
        assert!(kv.contains("loads=7\n"));
        assert!(kv.contains("ipc=2.500000\n"));
        assert!(kv.contains("issue_latency=none\n"));
        // One line per u64 field + two derived rates + the histogram marker.
        assert_eq!(kv.lines().count(), 25);
    }

    #[test]
    fn kv_serialisation_flattens_the_histogram() {
        let mut hist = Histogram::new(10, 100);
        hist.record(5);
        hist.record(25);
        hist.record(500);
        let stats = SimStats {
            issue_latency: Some(hist),
            ..SimStats::default()
        };
        let kv = stats.to_kv();
        assert!(kv.contains("issue_latency.total=3\n"));
        assert!(kv.contains("issue_latency.overflow=1\n"));
        assert!(kv.contains("issue_latency.buckets=0:1,20:1\n"));
    }

    #[test]
    fn kv_serialisation_excludes_clock_telemetry() {
        let a = SimStats {
            cycles: 1000,
            committed: 500,
            ..SimStats::default()
        };
        let mut b = a.clone();
        b.ticks_executed = 123;
        b.cycles_skipped = 877;
        assert_eq!(
            a.to_kv(),
            b.to_kv(),
            "clock mode must not leak into golden snapshots"
        );
        assert!((b.skipped_fraction() - 0.877).abs() < 1e-12);
        assert_eq!(SimStats::default().skipped_fraction(), 0.0);
    }

    #[test]
    fn stall_replay_multiplies_the_per_tick_bump() {
        let mut stats = SimStats {
            rob_full_stall_cycles: 10,
            mispredict_stall_cycles: 20,
            analyze_stall_cycles: 30,
            llib_full_stall_cycles: 40,
            ..SimStats::default()
        };
        let before = stats.stall_counter_snapshot();
        // One quiesced tick bumps two of the four counters.
        stats.mispredict_stall_cycles += 1;
        stats.analyze_stall_cycles += 1;
        stats.replay_stall_cycles(before, 99);
        assert_eq!(stats.rob_full_stall_cycles, 10);
        assert_eq!(stats.mispredict_stall_cycles, 20 + 1 + 99);
        assert_eq!(stats.analyze_stall_cycles, 30 + 1 + 99);
        assert_eq!(stats.llib_full_stall_cycles, 40);
    }

    #[test]
    fn kv_serialisation_distinguishes_perturbed_stats() {
        let a = SimStats {
            cycles: 1000,
            committed: 2500,
            ..SimStats::default()
        };
        let mut b = a.clone();
        b.committed += 1; // perturbs both committed= and the derived ipc=
        assert_ne!(a.to_kv(), b.to_kv());
    }

    #[test]
    fn from_kv_round_trips_without_histogram() {
        let stats = SimStats {
            cycles: 1000,
            committed: 2500,
            fetched: 2600,
            cond_branches: 300,
            branch_mispredicts: 7,
            loads: 400,
            stores: 200,
            l1_hits: 350,
            l2_hits: 30,
            mem_accesses: 20,
            rob_full_stall_cycles: 11,
            checkpoints_taken: 3,
            ..SimStats::default()
        };
        let kv = stats.to_kv();
        let parsed = SimStats::from_kv(&kv, 0).unwrap();
        assert_eq!(parsed.to_kv(), kv, "round trip must be byte-identical");
        assert_eq!(parsed.cycles, 1000);
        assert_eq!(parsed.committed, 2500);
        assert_eq!(parsed.ticks_executed, 0, "clock telemetry is not persisted");
    }

    #[test]
    fn from_kv_round_trips_with_histogram() {
        let mut hist = Histogram::new(10, 4);
        hist.record(3);
        hist.record(27);
        hist.record(999);
        let sum = hist.sample_sum();
        let stats = SimStats {
            cycles: 123,
            committed: 456,
            issue_latency: Some(hist),
            ..SimStats::default()
        };
        let kv = stats.to_kv();
        let parsed = SimStats::from_kv(&kv, sum).unwrap();
        assert_eq!(parsed.to_kv(), kv, "round trip must be byte-identical");
        assert_eq!(parsed.issue_latency.as_ref().unwrap().sample_sum(), sum);
    }

    #[test]
    fn from_kv_rejects_corrupted_documents() {
        let stats = SimStats {
            cycles: 1000,
            committed: 2500,
            ..SimStats::default()
        };
        let kv = stats.to_kv();
        // Truncation drops required fields.
        let truncated: String = kv.lines().take(5).map(|l| format!("{l}\n")).collect();
        assert!(SimStats::from_kv(&truncated, 0)
            .unwrap_err()
            .contains("missing"));
        // A tampered counter breaks the derived-field cross-check.
        let tampered = kv.replace("committed=2500", "committed=2501");
        assert!(SimStats::from_kv(&tampered, 0)
            .unwrap_err()
            .contains("inconsistent"));
        // Unknown and duplicated fields are rejected outright.
        assert!(SimStats::from_kv(&format!("{kv}bogus=1\n"), 0)
            .unwrap_err()
            .contains("unknown"));
        assert!(SimStats::from_kv(&format!("{kv}cycles=1000\n"), 0)
            .unwrap_err()
            .contains("duplicate"));
        assert!(SimStats::from_kv("garbage\n", 0)
            .unwrap_err()
            .contains("malformed"));
    }

    #[test]
    fn from_kv_checks_the_histogram_sum() {
        let mut hist = Histogram::new(10, 4);
        hist.record(5);
        hist.record(15);
        let stats = SimStats {
            committed: 2,
            cycles: 2,
            issue_latency: Some(hist),
            ..SimStats::default()
        };
        let kv = stats.to_kv();
        assert!(SimStats::from_kv(&kv, 20).is_ok());
        assert!(
            SimStats::from_kv(&kv, 999_999)
                .unwrap_err()
                .contains("mean"),
            "a wrong supplementary sum contradicts the rendered mean"
        );
    }

    #[test]
    fn histogram_from_parts_validates_its_inputs() {
        assert!(Histogram::from_parts(0, 4, &[], 0, 0, 0, 0).is_err());
        assert!(Histogram::from_parts(10, 4, &[(5, 1)], 0, 1, 5, 5).is_err());
        assert!(Histogram::from_parts(10, 4, &[(50, 1)], 0, 1, 55, 55).is_err());
        assert!(Histogram::from_parts(10, 4, &[(0, 1), (0, 1)], 0, 2, 5, 8).is_err());
        assert!(Histogram::from_parts(10, 4, &[(0, 1)], 0, 5, 5, 5).is_err());
        let hist = Histogram::from_parts(10, 4, &[(0, 1), (20, 2)], 1, 4, 99, 150).unwrap();
        assert_eq!(hist.sample_sum(), 150);
    }
}
