//! Architectural and physical register identifiers.
//!
//! The reproduction models an Alpha-like ISA with 32 integer and 32
//! floating-point architectural registers. Register identity matters for the
//! D-KIP because the Low-Locality Bit Vector (LLBV) is indexed by
//! architectural register, and the Low-Locality Register File (LLRF) stores
//! READY operand values by physical slot.

use std::fmt;

/// Number of integer architectural registers (Alpha-like ISA).
pub const INT_ARCH_REGS: usize = 32;
/// Number of floating-point architectural registers (Alpha-like ISA).
pub const FP_ARCH_REGS: usize = 32;
/// Total number of architectural registers across both classes.
pub const TOTAL_ARCH_REGS: usize = INT_ARCH_REGS + FP_ARCH_REGS;

/// The register class an architectural or physical register belongs to.
///
/// The D-KIP keeps one LLIB (and one Memory Processor) per class, so the
/// class of a value determines which low-locality path it takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Integer register file.
    Int,
    /// Floating-point register file.
    Fp,
}

impl RegClass {
    /// Number of architectural registers in this class.
    #[must_use]
    pub fn arch_count(self) -> usize {
        match self {
            RegClass::Int => INT_ARCH_REGS,
            RegClass::Fp => FP_ARCH_REGS,
        }
    }

    /// Both register classes, in a fixed order.
    #[must_use]
    pub fn both() -> [RegClass; 2] {
        [RegClass::Int, RegClass::Fp]
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register: a class plus an index within that class.
///
/// # Example
///
/// ```
/// use dkip_model::reg::{ArchReg, RegClass};
///
/// let r = ArchReg::int(5);
/// assert_eq!(r.class(), RegClass::Int);
/// assert_eq!(r.index(), 5);
/// assert!(r.flat_index() < dkip_model::reg::TOTAL_ARCH_REGS);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Creates an integer architectural register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= INT_ARCH_REGS`.
    #[must_use]
    pub fn int(index: u8) -> Self {
        assert!(
            (index as usize) < INT_ARCH_REGS,
            "integer register index {index} out of range"
        );
        ArchReg {
            class: RegClass::Int,
            index,
        }
    }

    /// Creates a floating-point architectural register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= FP_ARCH_REGS`.
    #[must_use]
    pub fn fp(index: u8) -> Self {
        assert!(
            (index as usize) < FP_ARCH_REGS,
            "fp register index {index} out of range"
        );
        ArchReg {
            class: RegClass::Fp,
            index,
        }
    }

    /// Creates a register of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the class.
    #[must_use]
    pub fn new(class: RegClass, index: u8) -> Self {
        match class {
            RegClass::Int => ArchReg::int(index),
            RegClass::Fp => ArchReg::fp(index),
        }
    }

    /// The register class.
    #[must_use]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The index within the register class.
    #[must_use]
    pub fn index(self) -> u8 {
        self.index
    }

    /// A dense index over all architectural registers (integer registers
    /// first, then floating point), suitable for indexing the LLBV.
    #[must_use]
    pub fn flat_index(self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => INT_ARCH_REGS + self.index as usize,
        }
    }

    /// Reconstructs a register from its [`flat_index`](Self::flat_index).
    ///
    /// # Panics
    ///
    /// Panics if `flat >= TOTAL_ARCH_REGS`.
    #[must_use]
    pub fn from_flat_index(flat: usize) -> Self {
        assert!(flat < TOTAL_ARCH_REGS, "flat register index out of range");
        if flat < INT_ARCH_REGS {
            ArchReg::int(flat as u8)
        } else {
            ArchReg::fp((flat - INT_ARCH_REGS) as u8)
        }
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

/// A physical register identifier inside a merged register file.
///
/// The baseline cores rename architectural registers onto physical registers
/// MIPS R10000 style; the identifier is opaque outside the renaming logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysReg(pub u32);

impl PhysReg {
    /// The raw index of the physical register.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_registers_have_distinct_flat_indices() {
        let r5 = ArchReg::int(5);
        let f5 = ArchReg::fp(5);
        assert_ne!(r5.flat_index(), f5.flat_index());
        assert_eq!(f5.flat_index(), INT_ARCH_REGS + 5);
    }

    #[test]
    fn flat_index_round_trips() {
        for flat in 0..TOTAL_ARCH_REGS {
            let r = ArchReg::from_flat_index(flat);
            assert_eq!(r.flat_index(), flat);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(ArchReg::int(3).to_string(), "r3");
        assert_eq!(ArchReg::fp(7).to_string(), "f7");
        assert_eq!(PhysReg(12).to_string(), "p12");
        assert_eq!(RegClass::Int.to_string(), "int");
        assert_eq!(RegClass::Fp.to_string(), "fp");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_register_index_is_validated() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_register_index_is_validated() {
        let _ = ArchReg::fp(200);
    }

    #[test]
    fn class_counts() {
        assert_eq!(RegClass::Int.arch_count(), 32);
        assert_eq!(RegClass::Fp.arch_count(), 32);
        assert_eq!(TOTAL_ARCH_REGS, 64);
    }

    #[test]
    fn ordering_is_total() {
        let mut regs: Vec<ArchReg> = (0..8)
            .map(ArchReg::fp)
            .chain((0..8).map(ArchReg::int))
            .collect();
        regs.sort();
        // Int sorts before Fp because of enum ordering.
        assert_eq!(regs[0], ArchReg::int(0));
        assert_eq!(regs[15], ArchReg::fp(7));
    }
}
