//! Micro-operation classes, functional-unit pools and execution latencies.
//!
//! The configuration of Table 2 of the paper provides 4 ALUs, 1 integer
//! multiplier, 4 FP adders and 1 FP multiplier/divider per execution engine.
//! Memory operations occupy the Address Processor's global memory ports
//! rather than a functional unit.

use crate::reg::RegClass;
use std::fmt;

/// The class of a micro-operation.
///
/// The class determines which functional-unit pool executes the operation,
/// its execution latency and whether it interacts with the memory hierarchy
/// or the branch predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU operation (add, logical, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Floating point add/subtract/compare/convert.
    FpAdd,
    /// Floating point multiply.
    FpMul,
    /// Floating point divide / square root.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Control-flow instruction (conditional branch, jump, call, return).
    Branch,
    /// No-operation (also used for prefetch hints).
    Nop,
}

impl OpClass {
    /// All operation classes, in a fixed order (useful for building
    /// per-class tables and for property tests).
    pub const ALL: [OpClass; 9] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Nop,
    ];

    /// The functional-unit pool this class issues to, or `None` for
    /// memory operations and nops which use the memory ports / no unit.
    #[must_use]
    pub fn fu_pool(self) -> Option<FuPool> {
        match self {
            OpClass::IntAlu | OpClass::Branch => Some(FuPool::IntAlu),
            OpClass::IntMul => Some(FuPool::IntMul),
            OpClass::FpAdd => Some(FuPool::FpAdd),
            OpClass::FpMul | OpClass::FpDiv => Some(FuPool::FpMulDiv),
            OpClass::Load | OpClass::Store | OpClass::Nop => None,
        }
    }

    /// Execution latency in cycles once issued to a functional unit.
    ///
    /// Loads add the memory-hierarchy latency on top of their
    /// address-generation latency; this method returns only the fixed
    /// pipeline portion.
    #[must_use]
    pub fn exec_latency(self) -> u64 {
        match self {
            OpClass::IntAlu | OpClass::Branch | OpClass::Nop => 1,
            OpClass::IntMul => 3,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
            // Address generation for memory operations.
            OpClass::Load | OpClass::Store => 1,
        }
    }

    /// Whether this class accesses memory through the load/store queue.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether this class is a load.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, OpClass::Load)
    }

    /// Whether this class is a store.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, OpClass::Store)
    }

    /// Whether this class is a control-flow instruction.
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::Branch)
    }

    /// The register class an operation of this class naturally produces and
    /// consumes. Loads and stores can touch either class; they report the
    /// class of the value they move, which the trace generator chooses, so
    /// this returns the *default* class.
    #[must_use]
    pub fn natural_class(self) -> RegClass {
        match self {
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => RegClass::Fp,
            _ => RegClass::Int,
        }
    }

    /// Whether the operation is a floating-point arithmetic operation.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int_alu",
            OpClass::IntMul => "int_mul",
            OpClass::FpAdd => "fp_add",
            OpClass::FpMul => "fp_mul",
            OpClass::FpDiv => "fp_div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// A functional-unit pool in an execution engine.
///
/// Pools have a unit count (how many operations of that pool may start per
/// cycle) configured in [`crate::config::FuConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuPool {
    /// Integer ALUs (also execute branches).
    IntAlu,
    /// Integer multiplier.
    IntMul,
    /// Floating-point adders.
    FpAdd,
    /// Floating-point multiplier / divider.
    FpMulDiv,
}

impl FuPool {
    /// All functional-unit pools.
    pub const ALL: [FuPool; 4] = [
        FuPool::IntAlu,
        FuPool::IntMul,
        FuPool::FpAdd,
        FuPool::FpMulDiv,
    ];

    /// A dense index for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FuPool::IntAlu => 0,
            FuPool::IntMul => 1,
            FuPool::FpAdd => 2,
            FuPool::FpMulDiv => 3,
        }
    }
}

impl fmt::Display for FuPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuPool::IntAlu => "int_alu_pool",
            FuPool::IntMul => "int_mul_pool",
            FuPool::FpAdd => "fp_add_pool",
            FuPool::FpMulDiv => "fp_muldiv_pool",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_non_memory_class_has_a_pool() {
        for class in OpClass::ALL {
            if class.is_mem() || class == OpClass::Nop {
                assert!(class.fu_pool().is_none(), "{class} should not use a pool");
            } else {
                assert!(class.fu_pool().is_some(), "{class} must map to a pool");
            }
        }
    }

    #[test]
    fn latencies_are_positive() {
        for class in OpClass::ALL {
            assert!(
                class.exec_latency() >= 1,
                "{class} latency must be at least 1"
            );
        }
    }

    #[test]
    fn fp_div_is_slowest_arithmetic() {
        for class in OpClass::ALL {
            if class != OpClass::FpDiv {
                assert!(OpClass::FpDiv.exec_latency() >= class.exec_latency());
            }
        }
    }

    #[test]
    fn predicate_helpers_are_consistent() {
        assert!(OpClass::Load.is_mem() && OpClass::Load.is_load() && !OpClass::Load.is_store());
        assert!(OpClass::Store.is_mem() && OpClass::Store.is_store() && !OpClass::Store.is_load());
        assert!(OpClass::Branch.is_branch());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::FpMul.is_fp() && !OpClass::IntMul.is_fp());
    }

    #[test]
    fn natural_class_of_fp_ops_is_fp() {
        assert_eq!(OpClass::FpAdd.natural_class(), RegClass::Fp);
        assert_eq!(OpClass::FpDiv.natural_class(), RegClass::Fp);
        assert_eq!(OpClass::IntAlu.natural_class(), RegClass::Int);
        assert_eq!(OpClass::Load.natural_class(), RegClass::Int);
    }

    #[test]
    fn pool_indices_are_dense_and_unique() {
        let mut seen = [false; 4];
        for pool in FuPool::ALL {
            assert!(!seen[pool.index()]);
            seen[pool.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn display_is_nonempty() {
        for class in OpClass::ALL {
            assert!(!class.to_string().is_empty());
        }
        for pool in FuPool::ALL {
            assert!(!pool.to_string().is_empty());
        }
    }
}
