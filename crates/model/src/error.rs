//! Error types for configuration validation.

use std::error::Error;
use std::fmt;

/// An invalid configuration was supplied to one of the simulator components.
///
/// The error message names the offending field and the constraint it
/// violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: String,
    message: String,
}

impl ConfigError {
    /// Creates a configuration error for `field` with a human-readable
    /// explanation of the violated constraint.
    #[must_use]
    pub fn new(field: impl Into<String>, message: impl Into<String>) -> Self {
        ConfigError {
            field: field.into(),
            message: message.into(),
        }
    }

    /// The configuration field that failed validation.
    #[must_use]
    pub fn field(&self) -> &str {
        &self.field
    }

    /// The constraint that was violated.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid configuration for `{}`: {}",
            self.field, self.message
        )
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field_and_message() {
        let err = ConfigError::new(
            "rob_capacity",
            "must be a positive multiple of the commit width",
        );
        let text = err.to_string();
        assert!(text.contains("rob_capacity"));
        assert!(text.contains("multiple"));
        assert_eq!(err.field(), "rob_capacity");
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ConfigError>();
    }
}
