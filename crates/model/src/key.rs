//! Stable cache-key derivation for simulation configurations.
//!
//! The sweep service's result store (`dkip_sim::store`) is content-addressed:
//! a simulation point is identified by a digest of *everything that
//! determines its statistics* — the machine configuration, the memory
//! hierarchy, the workload, the seed, the budget and the sample/clock knobs —
//! plus a code-version salt. This module provides the serialisation half of
//! that contract: [`StableKey`] renders a configuration into a canonical,
//! line-oriented text form (the *key text*), and [`key_digest`] hashes key
//! text into the fixed-width hex digest used as the store's file name.
//!
//! The key text follows the same discipline as [`crate::SimStats::to_kv`]:
//! every implementation destructures its type exhaustively (no `..`), so
//! adding a configuration field without extending its key is a compile
//! error. A field that silently escaped the key would let two *different*
//! configurations share a cache entry — the one bug a content-addressed
//! store must never have. The reverse direction (a formatting change that
//! alters every key) is caught by the committed key fixture in
//! `tests/golden/cache_keys.golden`.
//!
//! The digest is 128-bit FNV-1a. It is not cryptographic — the store is a
//! local cache, not a trust boundary — but at 128 bits accidental collisions
//! across even the largest design-space sweeps are negligible, and the
//! implementation is dependency-free and byte-stable across platforms.

use std::fmt::{Display, Write as _};

use crate::config::{
    AddressProcessorConfig, BaselineConfig, CacheProcessorConfig, CheckpointConfig, DkipConfig,
    FuConfig, KiloConfig, LlibConfig, MemoryHierarchyConfig, MemoryProcessorConfig, SampleConfig,
    SchedPolicy, WidthConfig,
};

/// Accumulates `name=value` lines (with hierarchical `scope.` prefixes) into
/// a canonical key text.
#[derive(Debug, Default)]
pub struct KeyWriter {
    prefix: String,
    out: String,
}

impl KeyWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one `name=value` line under the current scope.
    pub fn field(&mut self, name: &str, value: impl Display) {
        let _ = writeln!(self.out, "{}{name}={value}", self.prefix);
    }

    /// Appends an optional field as `name=none` or `name=<value>`.
    pub fn opt_field(&mut self, name: &str, value: Option<impl Display>) {
        match value {
            None => self.field(name, "none"),
            Some(v) => self.field(name, v),
        }
    }

    /// Runs `f` with `scope.` prepended to every field name it writes.
    pub fn scoped(&mut self, scope: &str, f: impl FnOnce(&mut KeyWriter)) {
        let saved = self.prefix.len();
        self.prefix.push_str(scope);
        self.prefix.push('.');
        f(self);
        self.prefix.truncate(saved);
    }

    /// The accumulated key text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// A configuration that can render itself into canonical key text.
///
/// Implementations must be *exhaustive* (destructure every field) and
/// *stable* (never reorder or reformat existing fields without an
/// accompanying store-version bump — see `dkip_sim::store::RESULTS_EPOCH`).
pub trait StableKey {
    /// Writes every behaviour-determining field of `self` to `w`.
    fn write_key(&self, w: &mut KeyWriter);

    /// Renders the full key text of `self`.
    fn key_text(&self) -> String {
        let mut w = KeyWriter::new();
        self.write_key(&mut w);
        w.finish()
    }
}

/// 128-bit FNV-1a over `bytes`.
#[must_use]
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET_BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET_BASIS;
    for &b in bytes {
        hash ^= u128::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Digests key text into the 32-hex-character content address used by the
/// result store.
#[must_use]
pub fn key_digest(key_text: &str) -> String {
    format!("{:032x}", fnv1a_128(key_text.as_bytes()))
}

impl StableKey for FuConfig {
    fn write_key(&self, w: &mut KeyWriter) {
        let FuConfig {
            int_alu,
            int_mul,
            fp_add,
            fp_mul_div,
        } = self;
        w.field("int_alu", int_alu);
        w.field("int_mul", int_mul);
        w.field("fp_add", fp_add);
        w.field("fp_mul_div", fp_mul_div);
    }
}

impl StableKey for WidthConfig {
    fn write_key(&self, w: &mut KeyWriter) {
        let WidthConfig {
            fetch,
            decode,
            issue,
            commit,
        } = self;
        w.field("fetch", fetch);
        w.field("decode", decode);
        w.field("issue", issue);
        w.field("commit", commit);
    }
}

impl StableKey for MemoryHierarchyConfig {
    fn write_key(&self, w: &mut KeyWriter) {
        let MemoryHierarchyConfig {
            name,
            l1_size,
            l1_latency,
            l1_assoc,
            l2_size,
            l2_latency,
            l2_assoc,
            memory_latency,
            line_size,
            l2_perfect,
        } = self;
        w.field("name", name);
        w.opt_field("l1_size", l1_size.as_ref());
        w.field("l1_latency", l1_latency);
        w.field("l1_assoc", l1_assoc);
        w.opt_field("l2_size", l2_size.as_ref());
        w.field("l2_latency", l2_latency);
        w.field("l2_assoc", l2_assoc);
        w.field("memory_latency", memory_latency);
        w.field("line_size", line_size);
        w.field("l2_perfect", l2_perfect);
    }
}

impl StableKey for BaselineConfig {
    fn write_key(&self, w: &mut KeyWriter) {
        let BaselineConfig {
            name,
            rob_capacity,
            int_iq_capacity,
            fp_iq_capacity,
            sched,
            lsq_capacity,
            memory_ports,
            widths,
            fu,
            mispredict_penalty,
            collect_issue_histogram,
        } = self;
        w.field("name", name);
        w.field("rob_capacity", rob_capacity);
        w.field("int_iq_capacity", int_iq_capacity);
        w.field("fp_iq_capacity", fp_iq_capacity);
        w.field("sched", sched.label());
        w.field("lsq_capacity", lsq_capacity);
        w.field("memory_ports", memory_ports);
        w.scoped("widths", |w| widths.write_key(w));
        w.scoped("fu", |w| fu.write_key(w));
        w.field("mispredict_penalty", mispredict_penalty);
        w.field("collect_issue_histogram", collect_issue_histogram);
    }
}

impl StableKey for CacheProcessorConfig {
    fn write_key(&self, w: &mut KeyWriter) {
        let CacheProcessorConfig {
            rob_capacity,
            rob_timer,
            int_iq_capacity,
            fp_iq_capacity,
            sched,
            widths,
            fu,
            mispredict_penalty,
        } = self;
        w.field("rob_capacity", rob_capacity);
        w.field("rob_timer", rob_timer);
        w.field("int_iq_capacity", int_iq_capacity);
        w.field("fp_iq_capacity", fp_iq_capacity);
        w.field("sched", sched.label());
        w.scoped("widths", |w| widths.write_key(w));
        w.scoped("fu", |w| fu.write_key(w));
        w.field("mispredict_penalty", mispredict_penalty);
    }
}

impl StableKey for MemoryProcessorConfig {
    fn write_key(&self, w: &mut KeyWriter) {
        let MemoryProcessorConfig {
            queue_capacity,
            sched,
            decode_width,
            fu,
        } = self;
        w.field("queue_capacity", queue_capacity);
        w.field("sched", sched.label());
        w.field("decode_width", decode_width);
        w.scoped("fu", |w| fu.write_key(w));
    }
}

impl StableKey for LlibConfig {
    fn write_key(&self, w: &mut KeyWriter) {
        let LlibConfig {
            capacity,
            insertion_rate,
            extraction_rate,
            llrf_banks,
            llrf_regs_per_bank,
        } = self;
        w.field("capacity", capacity);
        w.field("insertion_rate", insertion_rate);
        w.field("extraction_rate", extraction_rate);
        w.field("llrf_banks", llrf_banks);
        w.field("llrf_regs_per_bank", llrf_regs_per_bank);
    }
}

impl StableKey for AddressProcessorConfig {
    fn write_key(&self, w: &mut KeyWriter) {
        let AddressProcessorConfig {
            lsq_capacity,
            memory_ports,
            load_value_fifo_capacity,
        } = self;
        w.field("lsq_capacity", lsq_capacity);
        w.field("memory_ports", memory_ports);
        w.field("load_value_fifo_capacity", load_value_fifo_capacity);
    }
}

impl StableKey for CheckpointConfig {
    fn write_key(&self, w: &mut KeyWriter) {
        let CheckpointConfig {
            stack_entries,
            interval_instrs,
            recovery_penalty,
        } = self;
        w.field("stack_entries", stack_entries);
        w.field("interval_instrs", interval_instrs);
        w.field("recovery_penalty", recovery_penalty);
    }
}

impl StableKey for DkipConfig {
    fn write_key(&self, w: &mut KeyWriter) {
        let DkipConfig {
            name,
            cache_processor,
            memory_processor,
            llib,
            address_processor,
            checkpoint,
        } = self;
        w.field("name", name);
        w.scoped("cp", |w| cache_processor.write_key(w));
        w.scoped("mp", |w| memory_processor.write_key(w));
        w.scoped("llib", |w| llib.write_key(w));
        w.scoped("ap", |w| address_processor.write_key(w));
        w.scoped("ckpt", |w| checkpoint.write_key(w));
    }
}

impl StableKey for KiloConfig {
    fn write_key(&self, w: &mut KeyWriter) {
        let KiloConfig {
            name,
            pseudo_rob_capacity,
            pseudo_rob_timer,
            sliq_capacity,
            iq_capacity,
            lsq_capacity,
            memory_ports,
            widths,
            fu,
            mispredict_penalty,
            checkpoint,
        } = self;
        w.field("name", name);
        w.field("pseudo_rob_capacity", pseudo_rob_capacity);
        w.field("pseudo_rob_timer", pseudo_rob_timer);
        w.field("sliq_capacity", sliq_capacity);
        w.field("iq_capacity", iq_capacity);
        w.field("lsq_capacity", lsq_capacity);
        w.field("memory_ports", memory_ports);
        w.scoped("widths", |w| widths.write_key(w));
        w.scoped("fu", |w| fu.write_key(w));
        w.field("mispredict_penalty", mispredict_penalty);
        w.scoped("ckpt", |w| checkpoint.write_key(w));
    }
}

impl StableKey for SampleConfig {
    fn write_key(&self, w: &mut KeyWriter) {
        let SampleConfig {
            period,
            warmup,
            window,
        } = self;
        w.field("period", period);
        w.field("warmup", warmup);
        w.field("window", window);
    }
}

impl StableKey for SchedPolicy {
    fn write_key(&self, w: &mut KeyWriter) {
        w.field("sched", self.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_writer_scopes_and_options() {
        let mut w = KeyWriter::new();
        w.field("a", 1);
        w.scoped("inner", |w| {
            w.field("b", "x");
            w.scoped("deep", |w| w.field("c", 2));
        });
        w.opt_field("d", None::<u64>);
        w.opt_field("e", Some(5));
        assert_eq!(w.finish(), "a=1\ninner.b=x\ninner.deep.c=2\nd=none\ne=5\n");
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 128-bit test vectors.
        assert_eq!(fnv1a_128(b""), 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d);
        assert_eq!(key_digest("a"), "d228cb696f1a8caf78912b704e4a8964");
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let base = DkipConfig::paper_default().key_text();
        assert_eq!(key_digest(&base), key_digest(&base));
        let small = DkipConfig::paper_default()
            .with_llib_capacity(512)
            .key_text();
        assert_ne!(key_digest(&base), key_digest(&small));
    }

    #[test]
    fn key_texts_distinguish_every_preset() {
        let texts = [
            BaselineConfig::r10_64().key_text(),
            BaselineConfig::r10_256().key_text(),
            BaselineConfig::unbounded().key_text(),
            KiloConfig::kilo_1024().key_text(),
            DkipConfig::paper_default().key_text(),
            DkipConfig::paper_default()
                .with_llib_capacity(512)
                .key_text(),
        ];
        for (i, a) in texts.iter().enumerate() {
            for b in texts.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn mem_key_covers_perfect_caches() {
        let text = MemoryHierarchyConfig::l1_2().key_text();
        assert!(text.contains("l1_size=none"));
        assert!(text.contains("l2_perfect=true"));
        let sized = MemoryHierarchyConfig::mem_400().with_l2_kb(64).key_text();
        assert!(sized.contains("l2_size=65536"));
    }

    #[test]
    fn sample_key_matches_display_fields() {
        let rate = SampleConfig::default_rate();
        let text = rate.key_text();
        assert_eq!(text, "period=10000\nwarmup=1000\nwindow=1000\n");
    }
}
