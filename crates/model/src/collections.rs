//! Allocation-conscious containers for the simulator hot path.
//!
//! Every core model burns most of its time in per-cycle bookkeeping:
//! dependency wiring at dispatch, wakeup at writeback, and membership tests
//! on in-flight sequence numbers. The std defaults are correct but slow
//! there — `SipHash` dominates `HashMap` lookups keyed by small integers,
//! and `HashMap<u64, Vec<u64>>` consumer lists reallocate on every producer.
//! This module provides drop-in replacements that are *observationally
//! identical* (the golden snapshots stay bit-for-bit) but allocation-free in
//! steady state:
//!
//! * [`FastHashMap`] / [`FastHashSet`] — std collections with the
//!   deterministic multiply-rotate [`FastHasher`] (an FxHash-style hasher;
//!   no per-process random state, so runs stay reproducible across
//!   processes, which the golden-stats subsystem requires).
//! * [`ConsumerTable`] — producer → consumer-list map whose `Vec` spines are
//!   recycled through a pool instead of being dropped on wakeup.
//! * [`DepList`] — an inline list of pending producer sequence numbers,
//!   bounded by [`crate::instr::MicroOp`]'s two source operands
//!   ([`MAX_SOURCES`]), replacing a heap `Vec` per dispatched instruction.
//! * [`LastWriters`] — the rename table as a flat array scoreboard indexed
//!   by [`ArchReg::flat_index`], replacing a `HashMap<ArchReg, u64>`.

use crate::reg::{ArchReg, TOTAL_ARCH_REGS};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Maximum number of source operands of a [`crate::instr::MicroOp`], and
/// therefore the capacity of a [`DepList`].
pub const MAX_SOURCES: usize = 2;

/// A deterministic, non-cryptographic hasher for small keys (sequence
/// numbers, registers). Multiply-rotate over 8-byte chunks in the style of
/// rustc's FxHash: far cheaper than the std `SipHash`, with no per-process
/// seed — identical input produces identical tables in every run, which the
/// cross-process determinism contract of the golden snapshots depends on
/// (hash *iteration* order is still never relied upon anywhere in the
/// simulator).
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    const K: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(Self::K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.mix(value);
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.mix(u64::from(value));
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.mix(value as u64);
    }
}

/// `HashMap` with the deterministic [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with the deterministic [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// A [`FastHashMap`] pre-sized for `capacity` entries (avoids growth
/// rehashing during the simulation warm-up).
#[must_use]
pub fn fast_map_with_capacity<K, V>(capacity: usize) -> FastHashMap<K, V> {
    FastHashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

/// A [`FastHashSet`] pre-sized for `capacity` entries.
#[must_use]
pub fn fast_set_with_capacity<T>(capacity: usize) -> FastHashSet<T> {
    FastHashSet::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

/// An inline list of pending producer sequence numbers for one dispatched
/// instruction. A [`crate::instr::MicroOp`] has at most [`MAX_SOURCES`]
/// source registers, so the list never needs the heap; distinct slots may
/// legitimately name the same producer (two wakeups, counted twice — the
/// cores rely on that, so this is a list, not a set).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepList {
    deps: [u64; MAX_SOURCES],
    len: u8,
}

impl DepList {
    /// An empty dependency list.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a producer.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds [`MAX_SOURCES`] producers.
    pub fn push(&mut self, producer: u64) {
        assert!(
            (self.len as usize) < MAX_SOURCES,
            "more producers than source operands"
        );
        self.deps[self.len as usize] = producer;
        self.len += 1;
    }

    /// Number of pending producers.
    #[must_use]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether no producer is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The producers, in insertion order.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.deps[..self.len as usize]
    }

    /// Iterates over the producers in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.as_slice().iter().copied()
    }
}

/// Producer → consumer-list wakeup table with pooled list spines.
///
/// Pushes append to the producer's list (allocating from an internal pool of
/// recycled `Vec`s); [`ConsumerTable::take`] removes and returns the whole
/// list for iteration, and [`ConsumerTable::recycle`] hands the spine back.
/// In steady state no allocation happens at all. Lists preserve insertion
/// order, exactly like the `HashMap<u64, Vec<u64>>` they replace.
///
/// `Clone` deep-copies the live lists (and the recycled spines), so a
/// cloned core's wakeup table is an independent, observationally identical
/// snapshot — required by the checkpoint/restore machinery.
#[derive(Debug, Default, Clone)]
pub struct ConsumerTable {
    lists: FastHashMap<u64, Vec<u64>>,
    pool: Vec<Vec<u64>>,
}

impl ConsumerTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table pre-sized for about `capacity` concurrent producers,
    /// avoiding rehash churn during the simulation warm-up.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        ConsumerTable {
            lists: FastHashMap::with_capacity_and_hasher(capacity, Default::default()),
            pool: Vec::new(),
        }
    }

    /// Registers `consumer` as waiting on `producer`.
    pub fn push(&mut self, producer: u64, consumer: u64) {
        self.lists
            .entry(producer)
            .or_insert_with(|| self.pool.pop().unwrap_or_default())
            .push(consumer);
    }

    /// The consumers currently registered for `producer` (empty slice if
    /// none), in insertion order.
    #[must_use]
    pub fn get(&self, producer: u64) -> &[u64] {
        self.lists.get(&producer).map_or(&[], Vec::as_slice)
    }

    /// Removes and returns the consumer list of `producer` (empty if none).
    /// Pass the list back through [`ConsumerTable::recycle`] after
    /// iterating so its spine is reused.
    #[must_use]
    pub fn take(&mut self, producer: u64) -> Vec<u64> {
        self.lists.remove(&producer).unwrap_or_default()
    }

    /// Returns a drained list's spine to the pool.
    pub fn recycle(&mut self, mut list: Vec<u64>) {
        if list.capacity() > 0 {
            list.clear();
            self.pool.push(list);
        }
    }

    /// Number of producers that currently have waiting consumers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether no consumer is waiting on any producer.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }
}

/// The most recent producer of every architectural register, as a flat
/// array indexed by [`ArchReg::flat_index`] — the renaming scoreboard the
/// dispatch stage consults for every source operand.
#[derive(Debug, Clone)]
pub struct LastWriters {
    writers: [Option<u64>; TOTAL_ARCH_REGS],
}

impl Default for LastWriters {
    fn default() -> Self {
        LastWriters {
            writers: [None; TOTAL_ARCH_REGS],
        }
    }
}

impl LastWriters {
    /// A table with no recorded writers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The sequence number of the most recent writer of `reg`, if any.
    #[must_use]
    pub fn get(&self, reg: ArchReg) -> Option<u64> {
        self.writers[reg.flat_index()]
    }

    /// Records `seq` as the most recent writer of `reg`.
    pub fn set(&mut self, reg: ArchReg, seq: u64) {
        self.writers[reg.flat_index()] = Some(seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_hasher_is_deterministic_and_spreads() {
        let hash = |v: u64| {
            let mut h = FastHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(1), hash(2));
        // Byte-stream hashing matches across chunk boundaries deterministically.
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FastHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn fast_map_and_set_behave_like_std() {
        let mut map: FastHashMap<u64, u32> = FastHashMap::default();
        map.insert(7, 1);
        map.insert(7, 2);
        assert_eq!(map.get(&7), Some(&2));
        assert_eq!(map.remove(&7), Some(2));
        let mut set: FastHashSet<u64> = FastHashSet::default();
        assert!(set.insert(9));
        assert!(!set.insert(9));
        assert!(set.contains(&9));
    }

    #[test]
    fn dep_list_holds_at_most_two_producers() {
        let mut deps = DepList::new();
        assert!(deps.is_empty());
        deps.push(10);
        deps.push(10); // same producer twice is legal (two source slots)
        assert_eq!(deps.len(), 2);
        assert_eq!(deps.as_slice(), &[10, 10]);
        assert_eq!(deps.iter().collect::<Vec<_>>(), vec![10, 10]);
    }

    #[test]
    #[should_panic(expected = "more producers")]
    fn dep_list_overflow_panics() {
        let mut deps = DepList::new();
        deps.push(1);
        deps.push(2);
        deps.push(3);
    }

    #[test]
    fn consumer_table_preserves_insertion_order_and_recycles() {
        let mut table = ConsumerTable::new();
        table.push(5, 10);
        table.push(5, 11);
        table.push(6, 12);
        assert_eq!(table.get(5), &[10, 11]);
        assert_eq!(table.len(), 2);
        let list = table.take(5);
        assert_eq!(list, vec![10, 11]);
        let spine_cap = list.capacity();
        table.recycle(list);
        assert!(
            table.take(99).is_empty(),
            "missing producers yield empty lists"
        );
        // The next producer reuses the recycled spine (no new allocation).
        table.push(7, 13);
        assert!(table.get(7).len() == 1 && table.lists[&7].capacity() >= spine_cap.min(1));
        assert_eq!(table.take(6), vec![12]);
    }

    #[test]
    fn last_writers_track_per_register() {
        let mut writers = LastWriters::new();
        assert_eq!(writers.get(ArchReg::int(3)), None);
        writers.set(ArchReg::int(3), 41);
        writers.set(ArchReg::fp(3), 42);
        assert_eq!(writers.get(ArchReg::int(3)), Some(41));
        assert_eq!(writers.get(ArchReg::fp(3)), Some(42));
        writers.set(ArchReg::int(3), 43);
        assert_eq!(writers.get(ArchReg::int(3)), Some(43));
    }
}
