//! The trace-level micro-operation record.
//!
//! The reproduction is trace driven: the workload generators in `dkip-trace`
//! emit a stream of [`MicroOp`]s describing the dynamic *correct-path*
//! instruction stream, and the core models in `dkip-ooo`, `dkip-kilo` and
//! `dkip-core` simulate their timing.

use crate::op::OpClass;
use crate::reg::ArchReg;
use std::fmt;

/// The kind of a control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// A conditional branch whose direction must be predicted.
    Conditional,
    /// An unconditional direct jump (always taken, trivially predicted).
    Jump,
    /// A call instruction (pushes the return-address stack).
    Call,
    /// A return instruction (pops the return-address stack).
    Return,
}

/// The resolved control-flow behaviour of a branch micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// What kind of control-flow instruction this is.
    pub kind: BranchKind,
    /// The architecturally correct direction (true = taken).
    pub taken: bool,
    /// The architecturally correct target address.
    pub target: u64,
}

impl BranchInfo {
    /// A taken conditional branch to `target`.
    #[must_use]
    pub fn conditional(taken: bool, target: u64) -> Self {
        BranchInfo {
            kind: BranchKind::Conditional,
            taken,
            target,
        }
    }
}

/// A single dynamic micro-operation of the correct-path instruction stream.
///
/// `seq` is a dense dynamic sequence number assigned by the generator; all
/// core models identify in-flight instructions by it.
///
/// # Example
///
/// ```
/// use dkip_model::instr::MicroOp;
/// use dkip_model::op::OpClass;
/// use dkip_model::reg::ArchReg;
///
/// let op = MicroOp::new(0, 0x1000, OpClass::IntAlu)
///     .with_dst(ArchReg::int(1))
///     .with_src(ArchReg::int(2))
///     .with_src(ArchReg::int(3));
/// assert_eq!(op.sources().count(), 2);
/// assert_eq!(op.dst, Some(ArchReg::int(1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Dynamic sequence number (dense, starting at 0).
    pub seq: u64,
    /// Program counter of the instruction.
    pub pc: u64,
    /// Operation class.
    pub class: OpClass,
    /// Source architectural registers (at most two).
    pub srcs: [Option<ArchReg>; 2],
    /// Destination architectural register, if the instruction produces one.
    pub dst: Option<ArchReg>,
    /// Effective address for loads and stores.
    pub mem_addr: Option<u64>,
    /// Size in bytes of the memory access (loads/stores only).
    pub mem_size: u8,
    /// Resolved branch behaviour for control-flow instructions.
    pub branch: Option<BranchInfo>,
}

impl MicroOp {
    /// Creates a micro-op with no sources, destination or memory behaviour.
    #[must_use]
    pub fn new(seq: u64, pc: u64, class: OpClass) -> Self {
        MicroOp {
            seq,
            pc,
            class,
            srcs: [None, None],
            dst: None,
            mem_addr: None,
            mem_size: 8,
            branch: None,
        }
    }

    /// Sets the destination register (builder style).
    #[must_use]
    pub fn with_dst(mut self, dst: ArchReg) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Adds a source register in the first free slot (builder style).
    ///
    /// # Panics
    ///
    /// Panics if both source slots are already occupied.
    #[must_use]
    pub fn with_src(mut self, src: ArchReg) -> Self {
        if self.srcs[0].is_none() {
            self.srcs[0] = Some(src);
        } else if self.srcs[1].is_none() {
            self.srcs[1] = Some(src);
        } else {
            panic!("micro-op already has two sources");
        }
        self
    }

    /// Sets the effective address of a memory operation (builder style).
    #[must_use]
    pub fn with_mem_addr(mut self, addr: u64) -> Self {
        self.mem_addr = Some(addr);
        self
    }

    /// Sets the branch behaviour (builder style).
    #[must_use]
    pub fn with_branch(mut self, info: BranchInfo) -> Self {
        self.branch = Some(info);
        self
    }

    /// Iterates over the present source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().filter_map(|s| *s)
    }

    /// Number of source registers.
    #[must_use]
    pub fn num_sources(&self) -> usize {
        self.srcs.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the micro-op is a load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        self.class.is_load()
    }

    /// Whether the micro-op is a store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        self.class.is_store()
    }

    /// Whether the micro-op is a conditional branch (the only kind that can
    /// be mispredicted by a direction predictor).
    #[must_use]
    pub fn is_conditional_branch(&self) -> bool {
        matches!(
            self.branch,
            Some(BranchInfo {
                kind: BranchKind::Conditional,
                ..
            })
        )
    }

    /// Validates structural invariants of the micro-op: memory operations
    /// carry an address, branches carry branch info, non-branches do not,
    /// and stores do not write a register.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        let mem_ok = if self.class.is_mem() {
            self.mem_addr.is_some()
        } else {
            self.mem_addr.is_none()
        };
        let br_ok = if self.class.is_branch() {
            self.branch.is_some()
        } else {
            self.branch.is_none()
        };
        let store_ok = !self.is_store() || self.dst.is_none();
        let load_ok = !self.is_load() || self.dst.is_some();
        mem_ok && br_ok && store_ok && load_ok
    }
}

impl fmt::Display for MicroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} pc={:#x} {}", self.seq, self.pc, self.class)?;
        if let Some(dst) = self.dst {
            write!(f, " {dst} <-")?;
        }
        for src in self.sources() {
            write!(f, " {src}")?;
        }
        if let Some(addr) = self.mem_addr {
            write!(f, " @{addr:#x}")?;
        }
        if let Some(b) = self.branch {
            write!(f, " {}", if b.taken { "taken" } else { "not-taken" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_fills_source_slots_in_order() {
        let op = MicroOp::new(1, 0x40, OpClass::IntAlu)
            .with_src(ArchReg::int(1))
            .with_src(ArchReg::int(2));
        assert_eq!(op.srcs[0], Some(ArchReg::int(1)));
        assert_eq!(op.srcs[1], Some(ArchReg::int(2)));
        assert_eq!(op.num_sources(), 2);
    }

    #[test]
    #[should_panic(expected = "two sources")]
    fn third_source_panics() {
        let _ = MicroOp::new(0, 0, OpClass::IntAlu)
            .with_src(ArchReg::int(1))
            .with_src(ArchReg::int(2))
            .with_src(ArchReg::int(3));
    }

    #[test]
    fn well_formedness_checks_memory_and_branch_fields() {
        let load = MicroOp::new(0, 0, OpClass::Load)
            .with_dst(ArchReg::int(1))
            .with_mem_addr(0x100);
        assert!(load.is_well_formed());

        let bad_load = MicroOp::new(0, 0, OpClass::Load).with_dst(ArchReg::int(1));
        assert!(
            !bad_load.is_well_formed(),
            "load without address is malformed"
        );

        let store = MicroOp::new(0, 0, OpClass::Store)
            .with_src(ArchReg::int(1))
            .with_mem_addr(0x100);
        assert!(store.is_well_formed());

        let bad_store = store.with_dst(ArchReg::int(2));
        assert!(
            !bad_store.is_well_formed(),
            "store must not write a register"
        );

        let branch =
            MicroOp::new(0, 0, OpClass::Branch).with_branch(BranchInfo::conditional(true, 0x2000));
        assert!(branch.is_well_formed());

        let bad_branch = MicroOp::new(0, 0, OpClass::Branch);
        assert!(!bad_branch.is_well_formed(), "branch needs branch info");

        let alu_with_branch =
            MicroOp::new(0, 0, OpClass::IntAlu).with_branch(BranchInfo::conditional(false, 0));
        assert!(!alu_with_branch.is_well_formed());
    }

    #[test]
    fn conditional_branch_detection() {
        let cond =
            MicroOp::new(0, 0, OpClass::Branch).with_branch(BranchInfo::conditional(true, 8));
        assert!(cond.is_conditional_branch());
        let jump = MicroOp::new(0, 0, OpClass::Branch).with_branch(BranchInfo {
            kind: BranchKind::Jump,
            taken: true,
            target: 8,
        });
        assert!(!jump.is_conditional_branch());
    }

    #[test]
    fn display_mentions_class_and_seq() {
        let op = MicroOp::new(42, 0x1234, OpClass::FpMul).with_dst(ArchReg::fp(3));
        let text = op.to_string();
        assert!(text.contains("#42"));
        assert!(text.contains("fp_mul"));
        assert!(text.contains("f3"));
    }
}
