//! Configuration structures and the paper's presets (Tables 1, 2 and 3).
//!
//! Every core model in the workspace is constructed from one of the
//! configuration structures defined here:
//!
//! * [`MemoryHierarchyConfig`] — Table 1 memory-subsystem presets and the
//!   default hierarchy of Table 2 (32 KB L1 / 512 KB L2 / 400-cycle memory),
//! * [`BaselineConfig`] — the R10000-style out-of-order baselines (R10-64,
//!   R10-256, R10-768) and the idealised cores of Figures 1–3,
//! * [`KiloConfig`] — the traditional KILO-instruction processor baseline
//!   (pseudo-ROB + Slow-Lane Instruction Queue),
//! * [`DkipConfig`] — the decoupled KILO-instruction processor of the paper
//!   (Cache Processor, LLIB, LLRF, Memory Processors, Address Processor,
//!   Checkpointing Stack).

use crate::error::ConfigError;

/// Environment variable that forces every core to single-step quiesced
/// cycles instead of skipping them with the event-driven clock.
///
/// Any value other than `0` or the empty string disables skipping. The
/// equivalence tests use this to prove that the two clock modes produce
/// bit-identical statistics.
pub const NO_SKIP_ENV: &str = "DKIP_NO_SKIP";

/// Whether the event-driven clock may skip quiesced cycles.
///
/// Reads [`NO_SKIP_ENV`] (`DKIP_NO_SKIP`); cores sample this once at
/// construction time, so a test flipping the variable between runs affects
/// every core built afterwards but never a simulation already in flight.
#[must_use]
pub fn event_clock_enabled() -> bool {
    !matches!(
        std::env::var(NO_SKIP_ENV).as_deref(),
        Ok(v) if !v.is_empty() && v != "0"
    )
}

/// Environment variable selecting sampled simulation, read by
/// `Job::new` in the experiment harness (and therefore by every figure
/// binary). The format is `period:warmup:window` in instructions, e.g.
/// `DKIP_SAMPLE=10000:1000:1000`; unset or empty means exact simulation.
/// See [`SampleConfig::parse`].
pub const SAMPLE_ENV: &str = "DKIP_SAMPLE";

/// Parameters of the sampled-simulation mode (SMARTS-style systematic
/// sampling): the stream is divided into fixed-length periods; in each
/// period the simulator functionally fast-forwards, then runs `warmup`
/// instructions detailed but unmeasured to heat caches and predictors,
/// then measures a `window` of detailed instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleConfig {
    /// Sampling period in instructions: one detailed window is taken per
    /// `period` instructions of the stream.
    pub period: u64,
    /// Detailed-but-unmeasured instructions run before each window to warm
    /// microarchitectural state (may be 0).
    pub warmup: u64,
    /// Measured detailed instructions per window.
    pub window: u64,
}

impl SampleConfig {
    /// A default sampling regime for the throughput harness and the figure
    /// binaries: 10k-instruction periods with a 1k warmup and a 1k
    /// measured window (20% detailed).
    #[must_use]
    pub fn default_rate() -> Self {
        SampleConfig {
            period: 10_000,
            warmup: 1_000,
            window: 1_000,
        }
    }

    /// Instructions functionally fast-forwarded per period.
    #[must_use]
    pub fn skip(&self) -> u64 {
        self.period - self.warmup - self.window
    }

    /// Fraction of the stream simulated in detail (warmup + window).
    #[must_use]
    pub fn detailed_fraction(&self) -> f64 {
        (self.warmup + self.window) as f64 / self.period as f64
    }

    /// Parses the `period:warmup:window` knob syntax used by `DKIP_SAMPLE`
    /// and the figure binaries' `sample=` argument.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on malformed syntax or a configuration
    /// that fails [`SampleConfig::validate`].
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut parts = text.split(':');
        let mut field = |name: &'static str| -> Result<u64, ConfigError> {
            parts
                .next()
                .ok_or_else(|| ConfigError::new(name, "expected period:warmup:window"))?
                .trim()
                .parse::<u64>()
                .map_err(|_| ConfigError::new(name, "expected a non-negative integer"))
        };
        let cfg = SampleConfig {
            period: field("sample.period")?,
            warmup: field("sample.warmup")?,
            window: field("sample.window")?,
        };
        if parts.next().is_some() {
            return Err(ConfigError::new(
                "sample",
                "expected exactly period:warmup:window",
            ));
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Reads [`SAMPLE_ENV`] (`DKIP_SAMPLE`). Unset or empty means exact
    /// simulation (`None`).
    ///
    /// # Panics
    ///
    /// Panics on a malformed value — a silently ignored typo would quietly
    /// report exact-mode numbers as sampled ones (or vice versa).
    #[must_use]
    pub fn from_env() -> Option<Self> {
        match std::env::var(SAMPLE_ENV) {
            Ok(v) if !v.trim().is_empty() => {
                Some(Self::parse(&v).unwrap_or_else(|e| panic!("invalid {SAMPLE_ENV}={v:?}: {e}")))
            }
            _ => None,
        }
    }

    /// Validates the sampling parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the window is empty or warmup + window
    /// do not fit in the period.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.window == 0 {
            return Err(ConfigError::new(
                "sample.window",
                "the measured window must be at least one instruction",
            ));
        }
        if self.warmup + self.window > self.period {
            return Err(ConfigError::new(
                "sample.period",
                "warmup + window must fit within the sampling period",
            ));
        }
        Ok(())
    }
}

impl std::fmt::Display for SampleConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.period, self.warmup, self.window)
    }
}

/// Instruction scheduling policy of an issue queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// Only the oldest instruction in the queue may issue each cycle
    /// (stalls on the first non-ready instruction).
    InOrder,
    /// Any ready instruction may issue, oldest first.
    OutOfOrder,
}

impl SchedPolicy {
    /// Short label used by the figure generators ("INO" / "OOO").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchedPolicy::InOrder => "INO",
            SchedPolicy::OutOfOrder => "OOO",
        }
    }
}

/// Functional-unit pool counts (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Number of integer ALUs (branches also use these).
    pub int_alu: usize,
    /// Number of integer multipliers.
    pub int_mul: usize,
    /// Number of floating-point adders.
    pub fp_add: usize,
    /// Number of floating-point multiplier/dividers.
    pub fp_mul_div: usize,
}

impl FuConfig {
    /// The execution resources of Table 2: 4 ALUs, 1 integer multiplier,
    /// 4 FP adders, 1 FP multiplier/divider.
    #[must_use]
    pub fn paper_default() -> Self {
        FuConfig {
            int_alu: 4,
            int_mul: 1,
            fp_add: 4,
            fp_mul_div: 1,
        }
    }

    /// An effectively unlimited set of functional units, used by the
    /// idealised cores of Section 2 where only the ROB limits execution.
    #[must_use]
    pub fn unlimited() -> Self {
        FuConfig {
            int_alu: 64,
            int_mul: 64,
            fp_add: 64,
            fp_mul_div: 64,
        }
    }

    /// Validates that every pool has at least one unit.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the empty pool.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.int_alu == 0 {
            return Err(ConfigError::new(
                "fu.int_alu",
                "at least one integer ALU is required",
            ));
        }
        if self.int_mul == 0 {
            return Err(ConfigError::new(
                "fu.int_mul",
                "at least one integer multiplier is required",
            ));
        }
        if self.fp_add == 0 {
            return Err(ConfigError::new(
                "fu.fp_add",
                "at least one FP adder is required",
            ));
        }
        if self.fp_mul_div == 0 {
            return Err(ConfigError::new(
                "fu.fp_mul_div",
                "at least one FP multiplier/divider is required",
            ));
        }
        Ok(())
    }
}

impl Default for FuConfig {
    fn default() -> Self {
        FuConfig::paper_default()
    }
}

/// Configuration of the two-level cache hierarchy plus main memory
/// (Table 1 and the memory rows of Table 2).
///
/// Latencies are in processor cycles. A `None` cache size means the cache is
/// *perfect* (infinite capacity, never misses), which is how the L1-2 and
/// L2-xx rows of Table 1 are modelled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryHierarchyConfig {
    /// Human-readable name of the configuration ("MEM-400", …).
    pub name: String,
    /// L1 data cache size in bytes, or `None` for a perfect L1.
    pub l1_size: Option<usize>,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L2 cache size in bytes, or `None` if there is no L2 (perfect L1
    /// configurations) — a miss in L1 then goes straight to memory.
    pub l2_size: Option<usize>,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Main-memory access latency in cycles.
    pub memory_latency: u64,
    /// Cache line size in bytes (both levels).
    pub line_size: usize,
    /// Whether L1 misses are satisfied by the L2 at all; when `false`
    /// (Table 1 rows L2-11 / L2-21) the L2 is perfect and memory is never
    /// reached.
    pub l2_perfect: bool,
}

impl MemoryHierarchyConfig {
    const KB: usize = 1024;

    fn base(name: &str) -> Self {
        MemoryHierarchyConfig {
            name: name.to_owned(),
            l1_size: Some(32 * Self::KB),
            l1_latency: 2,
            l1_assoc: 4,
            l2_size: Some(512 * Self::KB),
            l2_latency: 11,
            l2_assoc: 8,
            memory_latency: 400,
            line_size: 64,
            l2_perfect: false,
        }
    }

    /// Table 1, row `L1-2`: a perfect L1 cache with a 2-cycle access time.
    #[must_use]
    pub fn l1_2() -> Self {
        MemoryHierarchyConfig {
            l1_size: None,
            l2_size: None,
            l2_perfect: true,
            ..Self::base("L1-2")
        }
    }

    /// Table 1, row `L2-11`: 32 KB L1 (2 cycles) and a perfect L2 with an
    /// 11-cycle access time.
    #[must_use]
    pub fn l2_11() -> Self {
        MemoryHierarchyConfig {
            l2_size: None,
            l2_latency: 11,
            l2_perfect: true,
            ..Self::base("L2-11")
        }
    }

    /// Table 1, row `L2-21`: 32 KB L1 (2 cycles) and a perfect L2 with a
    /// 21-cycle access time.
    #[must_use]
    pub fn l2_21() -> Self {
        MemoryHierarchyConfig {
            l2_size: None,
            l2_latency: 21,
            l2_perfect: true,
            ..Self::base("L2-21")
        }
    }

    /// Table 1, row `MEM-100`: 32 KB L1, 512 KB L2 (11 cycles), 100-cycle
    /// memory.
    #[must_use]
    pub fn mem_100() -> Self {
        MemoryHierarchyConfig {
            memory_latency: 100,
            ..Self::base("MEM-100")
        }
    }

    /// Table 1, row `MEM-400`: 32 KB L1, 512 KB L2 (11 cycles), 400-cycle
    /// memory. This is also the default memory system of Table 2.
    #[must_use]
    pub fn mem_400() -> Self {
        MemoryHierarchyConfig {
            memory_latency: 400,
            ..Self::base("MEM-400")
        }
    }

    /// Table 1, row `MEM-1000`: 32 KB L1, 512 KB L2 (11 cycles), 1000-cycle
    /// memory.
    #[must_use]
    pub fn mem_1000() -> Self {
        MemoryHierarchyConfig {
            memory_latency: 1000,
            ..Self::base("MEM-1000")
        }
    }

    /// All six Table 1 presets in row order.
    #[must_use]
    pub fn table1_presets() -> Vec<MemoryHierarchyConfig> {
        vec![
            Self::l1_2(),
            Self::l2_11(),
            Self::l2_21(),
            Self::mem_100(),
            Self::mem_400(),
            Self::mem_1000(),
        ]
    }

    /// The default memory system of Tables 2/3 (identical to `MEM-400` with
    /// a 512 KB L2).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::mem_400()
    }

    /// Returns a copy with the given L2 capacity in kilobytes (used by the
    /// cache-size sweep of Figures 11 and 12).
    #[must_use]
    pub fn with_l2_kb(mut self, kb: usize) -> Self {
        self.l2_size = Some(kb * Self::KB);
        self.l2_perfect = false;
        self.name = format!("{}-L2-{}KB", self.name, kb);
        self
    }

    /// Validates sizes and latencies.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint:
    /// latencies must be positive and non-decreasing down the hierarchy, the
    /// line size must be a power of two, and cache sizes must be a multiple
    /// of `line_size * assoc`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.l1_latency == 0 {
            return Err(ConfigError::new("l1_latency", "must be positive"));
        }
        if self.l2_latency < self.l1_latency {
            return Err(ConfigError::new(
                "l2_latency",
                "must be at least the L1 latency",
            ));
        }
        if !self.l2_perfect && self.memory_latency < self.l2_latency {
            return Err(ConfigError::new(
                "memory_latency",
                "must be at least the L2 latency",
            ));
        }
        if !self.line_size.is_power_of_two() {
            return Err(ConfigError::new("line_size", "must be a power of two"));
        }
        for (field, size, assoc) in [
            ("l1_size", self.l1_size, self.l1_assoc),
            ("l2_size", self.l2_size, self.l2_assoc),
        ] {
            if let Some(size) = size {
                if assoc == 0 {
                    return Err(ConfigError::new(field, "associativity must be positive"));
                }
                if size == 0 || size % (self.line_size * assoc) != 0 {
                    return Err(ConfigError::new(
                        field,
                        "must be a positive multiple of line_size * associativity",
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Default for MemoryHierarchyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Front-end and commit widths shared by every core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthConfig {
    /// Instructions fetched per cycle.
    pub fetch: usize,
    /// Instructions decoded/renamed per cycle.
    pub decode: usize,
    /// Instructions issued to functional units per cycle.
    pub issue: usize,
    /// Instructions committed per cycle.
    pub commit: usize,
}

impl WidthConfig {
    /// The 4-wide machine of the paper.
    #[must_use]
    pub fn four_wide() -> Self {
        WidthConfig {
            fetch: 4,
            decode: 4,
            issue: 4,
            commit: 4,
        }
    }

    /// Validates that every width is positive.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the zero width.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, w) in [
            ("width.fetch", self.fetch),
            ("width.decode", self.decode),
            ("width.issue", self.issue),
            ("width.commit", self.commit),
        ] {
            if w == 0 {
                return Err(ConfigError::new(name, "must be positive"));
            }
        }
        Ok(())
    }
}

impl Default for WidthConfig {
    fn default() -> Self {
        Self::four_wide()
    }
}

/// Misprediction recovery penalty (front-end refill) in cycles, applied
/// after a mispredicted branch resolves.
pub const DEFAULT_MISPREDICT_PENALTY: u64 = 8;

/// Configuration of an R10000-style out-of-order baseline core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineConfig {
    /// Human-readable name ("R10-64", "R10-256", …).
    pub name: String,
    /// Reorder-buffer capacity in instructions.
    pub rob_capacity: usize,
    /// Integer issue-queue capacity.
    pub int_iq_capacity: usize,
    /// Floating-point issue-queue capacity.
    pub fp_iq_capacity: usize,
    /// Issue-queue scheduling policy.
    pub sched: SchedPolicy,
    /// Load/store queue capacity.
    pub lsq_capacity: usize,
    /// Number of global memory ports.
    pub memory_ports: usize,
    /// Pipeline widths.
    pub widths: WidthConfig,
    /// Functional-unit pools.
    pub fu: FuConfig,
    /// Front-end refill penalty after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// Collect the decode→issue distance histogram (Figure 3).
    pub collect_issue_histogram: bool,
}

impl BaselineConfig {
    /// The `R10-64` baseline of Figure 9: 64-entry ROB, 40-entry issue
    /// queues — identical to the default Cache Processor.
    #[must_use]
    pub fn r10_64() -> Self {
        BaselineConfig {
            name: "R10-64".to_owned(),
            rob_capacity: 64,
            int_iq_capacity: 40,
            fp_iq_capacity: 40,
            sched: SchedPolicy::OutOfOrder,
            lsq_capacity: 512,
            memory_ports: 2,
            widths: WidthConfig::four_wide(),
            fu: FuConfig::paper_default(),
            mispredict_penalty: DEFAULT_MISPREDICT_PENALTY,
            collect_issue_histogram: false,
        }
    }

    /// The `R10-256` baseline of Figure 9: 256-entry ROB, 160-entry issue
    /// queues.
    #[must_use]
    pub fn r10_256() -> Self {
        BaselineConfig {
            name: "R10-256".to_owned(),
            rob_capacity: 256,
            int_iq_capacity: 160,
            fp_iq_capacity: 160,
            ..Self::r10_64()
        }
    }

    /// The `R10-768` configuration mentioned in Section 4.2 (a very large
    /// conventional out-of-order core).
    #[must_use]
    pub fn r10_768() -> Self {
        BaselineConfig {
            name: "R10-768".to_owned(),
            rob_capacity: 768,
            int_iq_capacity: 512,
            fp_iq_capacity: 512,
            ..Self::r10_64()
        }
    }

    /// The idealised out-of-order core of Section 2 used for Figures 1
    /// and 2: every resource is sized so that only the ROB can stall the
    /// machine, so the issue queues and LSQ track the window size.
    #[must_use]
    pub fn idealized(window: usize) -> Self {
        BaselineConfig {
            name: format!("IDEAL-{window}"),
            rob_capacity: window,
            int_iq_capacity: window,
            fp_iq_capacity: window,
            lsq_capacity: window.max(64),
            fu: FuConfig::unlimited(),
            memory_ports: 4,
            ..Self::r10_64()
        }
    }

    /// The effectively unbounded core used for the execution-locality
    /// characterisation of Figure 3 (unlimited processor, 400-cycle memory).
    #[must_use]
    pub fn unbounded() -> Self {
        let mut cfg = Self::idealized(1 << 16);
        cfg.name = "UNBOUNDED".to_owned();
        cfg.collect_issue_histogram = true;
        cfg
    }

    /// The window sizes swept in Figures 1 and 2.
    #[must_use]
    pub fn figure1_window_sizes() -> Vec<usize> {
        vec![32, 48, 64, 128, 256, 512, 1024, 2048, 4096]
    }

    /// Validates capacities and widths.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.rob_capacity == 0 {
            return Err(ConfigError::new("rob_capacity", "must be positive"));
        }
        if self.int_iq_capacity == 0 || self.fp_iq_capacity == 0 {
            return Err(ConfigError::new(
                "iq_capacity",
                "issue queues must be non-empty",
            ));
        }
        if self.lsq_capacity == 0 {
            return Err(ConfigError::new("lsq_capacity", "must be positive"));
        }
        if self.memory_ports == 0 {
            return Err(ConfigError::new("memory_ports", "must be positive"));
        }
        self.widths.validate()?;
        self.fu.validate()?;
        Ok(())
    }
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self::r10_64()
    }
}

/// Configuration of the Cache Processor of the D-KIP (Table 2, first block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheProcessorConfig {
    /// Aging-ROB capacity (Table 2: 64 entries).
    pub rob_capacity: usize,
    /// Aging-ROB timer in cycles (Table 2: 16 cycles): the delay between an
    /// instruction entering the ROB and reaching the Analyze stage.
    pub rob_timer: u64,
    /// Integer issue-queue capacity (Table 3 default: 40).
    pub int_iq_capacity: usize,
    /// Floating-point issue-queue capacity (Table 3 default: 40).
    pub fp_iq_capacity: usize,
    /// Scheduling policy of the Cache Processor queues (Table 3 default:
    /// out of order).
    pub sched: SchedPolicy,
    /// Pipeline widths (fetch/decode/analyze width 4).
    pub widths: WidthConfig,
    /// Functional-unit pools.
    pub fu: FuConfig,
    /// Front-end refill penalty after a mispredicted branch resolves in the
    /// Cache Processor.
    pub mispredict_penalty: u64,
}

impl CacheProcessorConfig {
    /// The Table 2 / Table 3 default Cache Processor.
    #[must_use]
    pub fn paper_default() -> Self {
        CacheProcessorConfig {
            rob_capacity: 64,
            rob_timer: 16,
            int_iq_capacity: 40,
            fp_iq_capacity: 40,
            sched: SchedPolicy::OutOfOrder,
            widths: WidthConfig::four_wide(),
            fu: FuConfig::paper_default(),
            mispredict_penalty: DEFAULT_MISPREDICT_PENALTY,
        }
    }

    /// Validates the Aging-ROB sizing rule from the paper: the ROB capacity
    /// must hold at least `rob_timer * commit_width` instructions so that
    /// instructions age for the full timer before analysis.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.rob_capacity == 0 {
            return Err(ConfigError::new(
                "cache_processor.rob_capacity",
                "must be positive",
            ));
        }
        if self.rob_timer == 0 {
            return Err(ConfigError::new(
                "cache_processor.rob_timer",
                "must be positive",
            ));
        }
        if self.rob_capacity < self.rob_timer as usize * self.widths.commit {
            return Err(ConfigError::new(
                "cache_processor.rob_capacity",
                "must be at least rob_timer * commit width (Aging-ROB sizing rule)",
            ));
        }
        if self.int_iq_capacity == 0 || self.fp_iq_capacity == 0 {
            return Err(ConfigError::new(
                "cache_processor.iq_capacity",
                "issue queues must be non-empty",
            ));
        }
        self.widths.validate()?;
        self.fu.validate()?;
        Ok(())
    }
}

impl Default for CacheProcessorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of one Memory Processor (Table 2, Future File architecture).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryProcessorConfig {
    /// Reservation-station / queue capacity (Table 3 default: 20).
    pub queue_capacity: usize,
    /// Scheduling policy (Table 3 default: in order).
    pub sched: SchedPolicy,
    /// Decode/insertion width (Table 2: 4).
    pub decode_width: usize,
    /// Functional-unit pools available to this Memory Processor.
    pub fu: FuConfig,
}

impl MemoryProcessorConfig {
    /// The Table 2 / Table 3 default Memory Processor (in-order, 20-entry
    /// queue).
    #[must_use]
    pub fn paper_default() -> Self {
        MemoryProcessorConfig {
            queue_capacity: 20,
            sched: SchedPolicy::InOrder,
            decode_width: 4,
            fu: FuConfig::paper_default(),
        }
    }

    /// Validates capacities.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.queue_capacity == 0 {
            return Err(ConfigError::new(
                "memory_processor.queue_capacity",
                "must be positive",
            ));
        }
        if self.decode_width == 0 {
            return Err(ConfigError::new(
                "memory_processor.decode_width",
                "must be positive",
            ));
        }
        self.fu.validate()?;
        Ok(())
    }
}

impl Default for MemoryProcessorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of one Low-Locality Instruction Buffer and its associated
/// Low-Locality Register File (Table 2, LLIB block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlibConfig {
    /// Number of instruction entries (Table 2: 2048 per LLIB).
    pub capacity: usize,
    /// Instructions inserted per cycle (Table 2: 4).
    pub insertion_rate: usize,
    /// Instructions extracted per cycle (Table 2: 4).
    pub extraction_rate: usize,
    /// Number of LLRF banks (Table 2: 8).
    pub llrf_banks: usize,
    /// Registers per LLRF bank (Table 2: up to 256).
    pub llrf_regs_per_bank: usize,
}

impl LlibConfig {
    /// The Table 2 default LLIB: 2048 entries, 4-wide insertion/extraction,
    /// 8 LLRF banks of 256 registers.
    #[must_use]
    pub fn paper_default() -> Self {
        LlibConfig {
            capacity: 2048,
            insertion_rate: 4,
            extraction_rate: 4,
            llrf_banks: 8,
            llrf_regs_per_bank: 256,
        }
    }

    /// Total LLRF register capacity across banks.
    #[must_use]
    pub fn llrf_capacity(&self) -> usize {
        self.llrf_banks * self.llrf_regs_per_bank
    }

    /// Validates capacities and rates.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first invalid field. The LLRF
    /// banking scheme of the paper requires insertion and extraction to
    /// operate on disjoint groups of banks, so at least
    /// `insertion_rate + extraction_rate` banks are required.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.capacity == 0 {
            return Err(ConfigError::new("llib.capacity", "must be positive"));
        }
        if self.insertion_rate == 0 || self.extraction_rate == 0 {
            return Err(ConfigError::new(
                "llib.rates",
                "insertion and extraction rates must be positive",
            ));
        }
        if self.llrf_banks == 0 || self.llrf_regs_per_bank == 0 {
            return Err(ConfigError::new(
                "llib.llrf",
                "LLRF banks and entries must be positive",
            ));
        }
        if self.llrf_banks < self.insertion_rate + self.extraction_rate {
            return Err(ConfigError::new(
                "llib.llrf_banks",
                "needs at least insertion_rate + extraction_rate banks so reads and writes hit disjoint banks",
            ));
        }
        Ok(())
    }
}

impl Default for LlibConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of the Address Processor (Table 2, Address Processor block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressProcessorConfig {
    /// Load/store queue capacity (Table 2: 512 entries).
    pub lsq_capacity: usize,
    /// Global read/write memory ports (Table 2: 2).
    pub memory_ports: usize,
    /// Capacity of each long-latency load-value FIFO (one per LLIB).
    pub load_value_fifo_capacity: usize,
}

impl AddressProcessorConfig {
    /// The Table 2 default Address Processor.
    #[must_use]
    pub fn paper_default() -> Self {
        AddressProcessorConfig {
            lsq_capacity: 512,
            memory_ports: 2,
            load_value_fifo_capacity: 512,
        }
    }

    /// Validates capacities.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.lsq_capacity == 0 {
            return Err(ConfigError::new(
                "address_processor.lsq_capacity",
                "must be positive",
            ));
        }
        if self.memory_ports == 0 {
            return Err(ConfigError::new(
                "address_processor.memory_ports",
                "must be positive",
            ));
        }
        if self.load_value_fifo_capacity == 0 {
            return Err(ConfigError::new(
                "address_processor.load_value_fifo_capacity",
                "must be positive",
            ));
        }
        Ok(())
    }
}

impl Default for AddressProcessorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of the Checkpointing Stack used for recovery past the
/// Cache Processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Number of checkpoint entries in the stack.
    pub stack_entries: usize,
    /// A checkpoint is taken at Analyze at least every this many analysed
    /// instructions while low-locality code is in flight.
    pub interval_instrs: u64,
    /// Additional recovery penalty (cycles) when restoring a checkpoint.
    pub recovery_penalty: u64,
}

impl CheckpointConfig {
    /// Default checkpointing: 8 checkpoints, one at least every 256 analysed
    /// instructions, 16-cycle restore penalty.
    #[must_use]
    pub fn paper_default() -> Self {
        CheckpointConfig {
            stack_entries: 8,
            interval_instrs: 256,
            recovery_penalty: 16,
        }
    }

    /// Validates capacities.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.stack_entries == 0 {
            return Err(ConfigError::new(
                "checkpoint.stack_entries",
                "must be positive",
            ));
        }
        if self.interval_instrs == 0 {
            return Err(ConfigError::new(
                "checkpoint.interval_instrs",
                "must be positive",
            ));
        }
        Ok(())
    }
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Full configuration of the Decoupled KILO-Instruction Processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DkipConfig {
    /// Human-readable name ("D-KIP-2048", "OOO80-OOO40", …).
    pub name: String,
    /// The Cache Processor.
    pub cache_processor: CacheProcessorConfig,
    /// The (shared) Memory Processor configuration; one integer and one
    /// floating-point Memory Processor are instantiated from it.
    pub memory_processor: MemoryProcessorConfig,
    /// The LLIB/LLRF configuration; one integer and one floating-point LLIB
    /// are instantiated from it.
    pub llib: LlibConfig,
    /// The Address Processor.
    pub address_processor: AddressProcessorConfig,
    /// The Checkpointing Stack.
    pub checkpoint: CheckpointConfig,
}

impl DkipConfig {
    /// The `D-KIP-2048` configuration of Figure 9 with the Table 2/3
    /// defaults: out-of-order 40-entry Cache Processor queues, in-order
    /// 20-entry Memory Processors and 2048-entry LLIBs.
    #[must_use]
    pub fn paper_default() -> Self {
        DkipConfig {
            name: "D-KIP-2048".to_owned(),
            cache_processor: CacheProcessorConfig::paper_default(),
            memory_processor: MemoryProcessorConfig::paper_default(),
            llib: LlibConfig::paper_default(),
            address_processor: AddressProcessorConfig::paper_default(),
            checkpoint: CheckpointConfig::paper_default(),
        }
    }

    /// Returns a copy with the Cache Processor scheduling policy and issue
    /// queue size set (the `INO` / `OOO-XX` points of Figure 10).
    #[must_use]
    pub fn with_cp(mut self, sched: SchedPolicy, iq_size: usize) -> Self {
        self.cache_processor.sched = sched;
        self.cache_processor.int_iq_capacity = iq_size;
        self.cache_processor.fp_iq_capacity = iq_size;
        self.name = format!("CP-{}-{}", sched.label(), iq_size);
        self
    }

    /// Returns a copy with the Memory Processor scheduling policy and queue
    /// size set (the `MP INO` / `MP OOO-XX` series of Figure 10).
    #[must_use]
    pub fn with_mp(mut self, sched: SchedPolicy, queue_size: usize) -> Self {
        self.memory_processor.sched = sched;
        self.memory_processor.queue_capacity = queue_size;
        self.name = format!("{}/MP-{}-{}", self.name, sched.label(), queue_size);
        self
    }

    /// Returns a copy with both LLIBs resized.
    #[must_use]
    pub fn with_llib_capacity(mut self, capacity: usize) -> Self {
        self.llib.capacity = capacity;
        self.name = format!("D-KIP-{capacity}");
        self
    }

    /// Validates every component configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in any component.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.cache_processor.validate()?;
        self.memory_processor.validate()?;
        self.llib.validate()?;
        self.address_processor.validate()?;
        self.checkpoint.validate()?;
        Ok(())
    }
}

impl Default for DkipConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of the traditional KILO-instruction processor baseline
/// (`KILO-1024` in Figure 9): a pseudo-ROB plus an out-of-order Slow-Lane
/// Instruction Queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KiloConfig {
    /// Human-readable name.
    pub name: String,
    /// Pseudo-ROB capacity (64 in the paper).
    pub pseudo_rob_capacity: usize,
    /// Pseudo-ROB timer, analogous to the Aging-ROB timer.
    pub pseudo_rob_timer: u64,
    /// Slow-Lane Instruction Queue capacity (1024 in the paper).
    pub sliq_capacity: usize,
    /// Main issue-queue capacity (72 in the paper).
    pub iq_capacity: usize,
    /// Load/store queue capacity (512, identical to the other models).
    pub lsq_capacity: usize,
    /// Global memory ports.
    pub memory_ports: usize,
    /// Pipeline widths.
    pub widths: WidthConfig,
    /// Functional units.
    pub fu: FuConfig,
    /// Front-end refill penalty after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// Checkpointing for recovery of SLIQ instructions.
    pub checkpoint: CheckpointConfig,
}

impl KiloConfig {
    /// The `KILO-1024` configuration of Figure 9: 64-entry pseudo-ROB,
    /// 1024-entry out-of-order SLIQ, 72-entry issue queues.
    #[must_use]
    pub fn kilo_1024() -> Self {
        KiloConfig {
            name: "KILO-1024".to_owned(),
            pseudo_rob_capacity: 64,
            pseudo_rob_timer: 16,
            sliq_capacity: 1024,
            iq_capacity: 72,
            lsq_capacity: 512,
            memory_ports: 2,
            widths: WidthConfig::four_wide(),
            fu: FuConfig::paper_default(),
            mispredict_penalty: DEFAULT_MISPREDICT_PENALTY,
            checkpoint: CheckpointConfig::paper_default(),
        }
    }

    /// Validates capacities and widths.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.pseudo_rob_capacity == 0 {
            return Err(ConfigError::new(
                "kilo.pseudo_rob_capacity",
                "must be positive",
            ));
        }
        if self.sliq_capacity == 0 {
            return Err(ConfigError::new("kilo.sliq_capacity", "must be positive"));
        }
        if self.iq_capacity == 0 {
            return Err(ConfigError::new("kilo.iq_capacity", "must be positive"));
        }
        if self.lsq_capacity == 0 {
            return Err(ConfigError::new("kilo.lsq_capacity", "must be positive"));
        }
        if self.memory_ports == 0 {
            return Err(ConfigError::new("kilo.memory_ports", "must be positive"));
        }
        self.widths.validate()?;
        self.fu.validate()?;
        self.checkpoint.validate()?;
        Ok(())
    }
}

impl Default for KiloConfig {
    fn default() -> Self {
        Self::kilo_1024()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets_match_the_paper() {
        let presets = MemoryHierarchyConfig::table1_presets();
        assert_eq!(presets.len(), 6);

        let l1 = &presets[0];
        assert_eq!(l1.name, "L1-2");
        assert_eq!(l1.l1_latency, 2);
        assert!(l1.l1_size.is_none(), "L1-2 has a perfect L1");

        let l2_11 = &presets[1];
        assert_eq!(l2_11.l1_size, Some(32 * 1024));
        assert_eq!(l2_11.l2_latency, 11);
        assert!(l2_11.l2_perfect);

        let l2_21 = &presets[2];
        assert_eq!(l2_21.l2_latency, 21);

        for (idx, latency) in [(3usize, 100u64), (4, 400), (5, 1000)] {
            let cfg = &presets[idx];
            assert_eq!(cfg.memory_latency, latency);
            assert_eq!(cfg.l2_size, Some(512 * 1024));
            assert_eq!(cfg.l2_latency, 11);
            assert!(!cfg.l2_perfect);
        }
    }

    #[test]
    fn table2_defaults_match_the_paper() {
        let dkip = DkipConfig::paper_default();
        assert_eq!(dkip.cache_processor.rob_capacity, 64);
        assert_eq!(dkip.cache_processor.rob_timer, 16);
        assert_eq!(dkip.cache_processor.widths.fetch, 4);
        assert_eq!(dkip.cache_processor.fu.int_alu, 4);
        assert_eq!(dkip.cache_processor.fu.fp_mul_div, 1);
        assert_eq!(dkip.llib.capacity, 2048);
        assert_eq!(dkip.llib.llrf_banks, 8);
        assert_eq!(dkip.llib.llrf_regs_per_bank, 256);
        assert_eq!(dkip.address_processor.lsq_capacity, 512);
        assert_eq!(dkip.address_processor.memory_ports, 2);
        assert_eq!(dkip.memory_processor.decode_width, 4);
        dkip.validate().expect("paper default must validate");
    }

    #[test]
    fn table3_defaults_match_the_paper() {
        let dkip = DkipConfig::paper_default();
        assert_eq!(dkip.cache_processor.int_iq_capacity, 40);
        assert_eq!(dkip.cache_processor.fp_iq_capacity, 40);
        assert_eq!(dkip.cache_processor.sched, SchedPolicy::OutOfOrder);
        assert_eq!(dkip.memory_processor.queue_capacity, 20);
        assert_eq!(dkip.memory_processor.sched, SchedPolicy::InOrder);
        let mem = MemoryHierarchyConfig::paper_default();
        assert_eq!(mem.l2_size, Some(512 * 1024));
        assert_eq!(mem.memory_latency, 400);
    }

    #[test]
    fn baseline_presets_match_figure9() {
        let r64 = BaselineConfig::r10_64();
        assert_eq!(r64.rob_capacity, 64);
        assert_eq!(r64.int_iq_capacity, 40);
        let r256 = BaselineConfig::r10_256();
        assert_eq!(r256.rob_capacity, 256);
        assert_eq!(r256.int_iq_capacity, 160);
        let kilo = KiloConfig::kilo_1024();
        assert_eq!(kilo.pseudo_rob_capacity, 64);
        assert_eq!(kilo.sliq_capacity, 1024);
        assert_eq!(kilo.iq_capacity, 72);
        r64.validate().unwrap();
        r256.validate().unwrap();
        kilo.validate().unwrap();
    }

    #[test]
    fn figure1_window_sizes_match_the_paper() {
        assert_eq!(
            BaselineConfig::figure1_window_sizes(),
            vec![32, 48, 64, 128, 256, 512, 1024, 2048, 4096]
        );
    }

    #[test]
    fn idealized_core_scales_resources_with_window() {
        let cfg = BaselineConfig::idealized(1024);
        assert_eq!(cfg.rob_capacity, 1024);
        assert_eq!(cfg.int_iq_capacity, 1024);
        assert!(cfg.lsq_capacity >= 64);
        cfg.validate().unwrap();
    }

    #[test]
    fn unbounded_core_collects_histogram() {
        let cfg = BaselineConfig::unbounded();
        assert!(cfg.collect_issue_histogram);
        assert!(cfg.rob_capacity >= 4096);
    }

    #[test]
    fn memory_validation_rejects_bad_sizes() {
        let mut cfg = MemoryHierarchyConfig::mem_400();
        cfg.l2_size = Some(1000); // not a multiple of line*assoc
        assert!(cfg.validate().is_err());

        let mut cfg = MemoryHierarchyConfig::mem_400();
        cfg.line_size = 48;
        assert!(cfg.validate().is_err());

        let mut cfg = MemoryHierarchyConfig::mem_400();
        cfg.memory_latency = 5; // below L2 latency
        assert!(cfg.validate().is_err());

        assert!(MemoryHierarchyConfig::mem_400().validate().is_ok());
        assert!(MemoryHierarchyConfig::l1_2().validate().is_ok());
    }

    #[test]
    fn with_l2_kb_rescales_cache() {
        let cfg = MemoryHierarchyConfig::mem_400().with_l2_kb(4096);
        assert_eq!(cfg.l2_size, Some(4096 * 1024));
        assert!(cfg.validate().is_ok());
        assert!(cfg.name.contains("4096KB"));
    }

    #[test]
    fn dkip_builders_set_policy_and_sizes() {
        let cfg = DkipConfig::paper_default()
            .with_cp(SchedPolicy::OutOfOrder, 80)
            .with_mp(SchedPolicy::OutOfOrder, 40);
        assert_eq!(cfg.cache_processor.int_iq_capacity, 80);
        assert_eq!(cfg.memory_processor.queue_capacity, 40);
        assert_eq!(cfg.memory_processor.sched, SchedPolicy::OutOfOrder);
        assert!(cfg.name.contains("OOO"));
        cfg.validate().unwrap();
    }

    #[test]
    fn aging_rob_sizing_rule_is_enforced() {
        let mut cp = CacheProcessorConfig::paper_default();
        cp.rob_capacity = 16; // below timer * commit width = 64
        let err = cp.validate().unwrap_err();
        assert!(err.field().contains("rob_capacity"));
    }

    #[test]
    fn llib_bank_rule_is_enforced() {
        let mut llib = LlibConfig::paper_default();
        llib.llrf_banks = 4; // insertion (4) + extraction (4) need 8
        assert!(llib.validate().is_err());
        llib.llrf_banks = 8;
        assert!(llib.validate().is_ok());
    }

    #[test]
    fn zero_widths_are_rejected() {
        let mut w = WidthConfig::four_wide();
        w.issue = 0;
        assert!(w.validate().is_err());
    }

    #[test]
    fn fu_validation_rejects_empty_pools() {
        let mut fu = FuConfig::paper_default();
        fu.fp_add = 0;
        assert!(fu.validate().is_err());
        assert!(FuConfig::unlimited().validate().is_ok());
    }

    #[test]
    fn sched_policy_labels() {
        assert_eq!(SchedPolicy::InOrder.label(), "INO");
        assert_eq!(SchedPolicy::OutOfOrder.label(), "OOO");
    }

    #[test]
    fn sample_config_parses_the_knob_syntax() {
        let cfg = SampleConfig::parse("10000:1000:2000").unwrap();
        assert_eq!(
            cfg,
            SampleConfig {
                period: 10_000,
                warmup: 1_000,
                window: 2_000,
            }
        );
        assert_eq!(cfg.skip(), 7_000);
        assert!((cfg.detailed_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(cfg.to_string(), "10000:1000:2000");
        assert_eq!(SampleConfig::parse(&cfg.to_string()).unwrap(), cfg);
        // Whitespace around the fields is tolerated (env-var ergonomics).
        assert_eq!(SampleConfig::parse(" 100 : 0 : 50 ").unwrap().warmup, 0);
    }

    #[test]
    fn sample_config_rejects_malformed_and_infeasible_values() {
        assert!(SampleConfig::parse("").is_err());
        assert!(SampleConfig::parse("100:10").is_err(), "missing field");
        assert!(SampleConfig::parse("100:10:20:30").is_err(), "extra field");
        assert!(SampleConfig::parse("100:ten:20").is_err());
        assert!(SampleConfig::parse("100:0:0").is_err(), "empty window");
        assert!(
            SampleConfig::parse("100:60:50").is_err(),
            "warmup + window exceed the period"
        );
        assert!(SampleConfig::parse("100:50:50").is_ok(), "fully detailed");
    }

    #[test]
    fn sample_default_rate_is_valid() {
        let cfg = SampleConfig::default_rate();
        assert!(cfg.validate().is_ok());
        assert!((cfg.detailed_fraction() - 0.2).abs() < 1e-12);
    }
}
