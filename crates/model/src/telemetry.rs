//! Intra-run telemetry: interval time-series metrics and per-µop pipeline
//! tracing, zero-cost when disabled.
//!
//! Every result the simulator reports elsewhere is an end-of-run aggregate
//! ([`crate::SimStats::to_kv`]). This module adds the *intra-run* view: a
//! [`Telemetry`] probe sink the cores drive from inside their cycle loops,
//! with two independent backends.
//!
//! * **Interval metrics** — every `interval` committed instructions the
//!   core hands the sink a [`MetricsFrame`] snapshot and the sink emits one
//!   row of interval IPC, structure occupancies (ROB, issue queues, LSQ,
//!   and the D-KIP's LLIB/LLBV), interval L1/L2 miss rates and branch
//!   mispredict rate, plus the cumulative event-driven-clock counters
//!   (`ticks_executed`, `cycles_skipped`, `skipped_fraction`) that
//!   [`crate::SimStats::to_kv`] deliberately excludes. Rows serialise to
//!   CSV (default) or JSON-lines (`.json`/`.jsonl` paths), with fixed
//!   float precision, so repeated runs produce byte-identical files.
//!   Configured with [`MetricsConfig`] (`metrics=<path>:<interval>` on the
//!   figure binaries, or the [`METRICS_ENV`] environment variable).
//! * **Pipeline trace** — per-µop stage timestamps (fetch, dispatch,
//!   issue, complete, commit, plus the D-KIP's CP→MP handoff) emitted in
//!   the gem5 O3PipeView text format, which the
//!   [Konata](https://github.com/shioyadan/Konata) pipeline viewer loads
//!   directly. Configured with [`TraceConfig`] (`trace=<path>[:<ops>]`);
//!   the `ops` window budget bounds how many µops are recorded so traces
//!   stay small on long runs.
//!
//! # Probe contract
//!
//! The sink is threaded through the cores as an `Option<&mut Telemetry>`
//! *run parameter* — never a core field, so core snapshots (`Clone`) and
//! the sampled-simulation checkpoints are unaffected. When the option is
//! `None` the hot path pays one predictable branch per probe site and
//! performs no allocation; when it is `Some` the probes only read state the
//! tick has already produced. Either way the simulation itself must stay
//! **bit-identical**: golden snapshots, skip-equivalence, sampling and the
//! differential-fuzz oracle all hold with probes attached or detached
//! (`tests/telemetry_invariance.rs` pins this).
//!
//! Any new pipeline stage must feed the sink at the same point where it
//! feeds the event-driven clock's per-tick progress flag: if a stage can
//! make progress, that progress must be visible to both the skip logic and
//! the trace.
//!
//! Output is buffered in memory and written by [`Telemetry::write_files`]
//! after the run, keeping file I/O off the simulated path entirely.

use crate::collections::FastHashMap;
use crate::error::ConfigError;
use crate::instr::MicroOp;
use crate::op::OpClass;
use std::fmt::{self, Write as _};
use std::path::PathBuf;

/// Environment variable carrying a [`MetricsConfig`] (`<path>:<interval>`)
/// picked up by every `dkip_sim::Job`. Unset or empty means no interval
/// metrics. See [`MetricsConfig::from_env`].
pub const METRICS_ENV: &str = "DKIP_METRICS";

/// Default per-trace µop window budget when `trace=<path>` names no
/// explicit `:<ops>` bound.
pub const DEFAULT_TRACE_OPS: u64 = 100_000;

/// A per-µop pipeline stage reported through [`Telemetry::trace_stage`].
///
/// Fetch and commit have dedicated entry points
/// ([`Telemetry::trace_fetch`], [`Telemetry::trace_commit`]) because fetch
/// opens a µop record (it needs the [`MicroOp`] itself) and commit closes
/// and emits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The µop entered the ROB (rename/dispatch).
    Dispatch,
    /// The µop was selected for execution (Cache Processor or Memory
    /// Processor issue — whichever happens first wins).
    Issue,
    /// The µop finished executing (wrote back).
    Complete,
    /// D-KIP only: the Analyze stage classified the µop as low execution
    /// locality and handed it to the memory-side engines (LLIB insertion,
    /// or an in-flight long-latency load adopted by the Address
    /// Processor).
    MpHandoff,
}

/// Configuration of the interval-metrics backend: emit one row every
/// `interval` committed instructions to `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Output file. A `.json`/`.jsonl` extension selects JSON-lines;
    /// anything else is CSV.
    pub path: String,
    /// Committed-instruction distance between rows (≥ 1).
    pub interval: u64,
}

impl MetricsConfig {
    /// Parses the `<path>:<interval>` knob syntax used by `DKIP_METRICS`
    /// and the figure binaries' `metrics=` argument.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on a missing `:<interval>` suffix, an
    /// empty path, or a non-positive interval.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let (path, interval) = text.rsplit_once(':').ok_or_else(|| {
            ConfigError::new(
                "metrics",
                "expected <path>:<interval> (interval in instructions)",
            )
        })?;
        if path.trim().is_empty() {
            return Err(ConfigError::new(
                "metrics.path",
                "expected a non-empty path",
            ));
        }
        let interval = interval
            .trim()
            .parse::<u64>()
            .map_err(|_| ConfigError::new("metrics.interval", "expected a positive integer"))?;
        if interval == 0 {
            return Err(ConfigError::new(
                "metrics.interval",
                "the row interval must be at least one instruction",
            ));
        }
        Ok(MetricsConfig {
            path: path.to_owned(),
            interval,
        })
    }

    /// Reads [`METRICS_ENV`] (`DKIP_METRICS`). Unset or empty means no
    /// interval metrics (`None`).
    ///
    /// # Panics
    ///
    /// Panics on a malformed value — a silently ignored typo would quietly
    /// produce a run with no metrics file where one was asked for, exactly
    /// the failure mode `DKIP_SAMPLE` and `DKIP_THREADS` refuse.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        match std::env::var(METRICS_ENV) {
            Ok(v) if !v.trim().is_empty() => {
                Some(Self::parse(&v).unwrap_or_else(|e| panic!("invalid {METRICS_ENV}={v:?}: {e}")))
            }
            _ => None,
        }
    }

    /// Derives a per-job variant of this configuration by inserting a
    /// sanitised `tag` before the path's extension, so every job of a
    /// multi-job sweep writes its own collision-free file:
    /// `runs/m.csv` + tag `dkip gcc` → `runs/m.dkip_gcc.csv`.
    #[must_use]
    pub fn for_job(&self, tag: &str) -> MetricsConfig {
        let sanitized: String = tag
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let dot = self
            .path
            .rfind('.')
            .filter(|&i| i > self.path.rfind('/').map_or(0, |s| s + 1));
        let path = match dot {
            Some(i) => format!("{}.{}{}", &self.path[..i], sanitized, &self.path[i..]),
            None => format!("{}.{}", self.path, sanitized),
        };
        MetricsConfig {
            path,
            interval: self.interval,
        }
    }
}

impl fmt::Display for MetricsConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.path, self.interval)
    }
}

/// Configuration of the pipeline-trace backend: record the first `ops`
/// µops to `path` in O3PipeView format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Output file (O3PipeView text, loadable by Konata).
    pub path: String,
    /// Window budget: number of µops recorded from the start of the run.
    pub ops: u64,
}

impl TraceConfig {
    /// Parses the `<path>[:<ops>]` knob syntax of the `trace=` argument.
    /// A trailing `:<digits>` is the window budget; without one the whole
    /// string is the path and the budget defaults to
    /// [`DEFAULT_TRACE_OPS`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on an empty path or an explicit zero
    /// budget (a window of zero µops would silently produce an empty
    /// trace).
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        if text.trim().is_empty() {
            return Err(ConfigError::new("trace.path", "expected a non-empty path"));
        }
        if let Some((path, ops)) = text.rsplit_once(':') {
            if let Ok(n) = ops.trim().parse::<u64>() {
                if n == 0 {
                    return Err(ConfigError::new(
                        "trace.ops",
                        "the window budget must be at least one µop",
                    ));
                }
                if path.trim().is_empty() {
                    return Err(ConfigError::new("trace.path", "expected a non-empty path"));
                }
                return Ok(TraceConfig {
                    path: path.to_owned(),
                    ops: n,
                });
            }
        }
        Ok(TraceConfig {
            path: text.to_owned(),
            ops: DEFAULT_TRACE_OPS,
        })
    }
}

impl fmt::Display for TraceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.path, self.ops)
    }
}

/// A point-in-time snapshot a core hands to [`Telemetry::record_metrics`]
/// at an interval boundary. Occupancies are instantaneous; every other
/// counter is cumulative since the start of the run (the sink differences
/// consecutive frames to produce interval rates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsFrame {
    /// Current cycle.
    pub cycle: u64,
    /// Instructions committed so far.
    pub committed: u64,
    /// ROB / Aging-ROB occupancy.
    pub rob: u64,
    /// Issue-queue occupancy (int + fp; Cache Processor queues on D-KIP).
    pub iq: u64,
    /// Load/store-queue occupancy.
    pub lsq: u64,
    /// Low-locality buffer occupancy: the D-KIP's LLIBs (int + fp), the
    /// KILO baseline's slow lane; 0 on the plain baseline.
    pub llib: u64,
    /// D-KIP LLBV: architectural registers currently flagged long-latency.
    pub llbv: u64,
    /// Cumulative L1 hits.
    pub l1_hits: u64,
    /// Cumulative L2 hits.
    pub l2_hits: u64,
    /// Cumulative main-memory accesses.
    pub mem_accesses: u64,
    /// Cumulative conditional branches resolved.
    pub cond_branches: u64,
    /// Cumulative conditional-branch mispredicts.
    pub branch_mispredicts: u64,
    /// Cumulative `tick()` calls actually executed (event-driven clock).
    pub ticks_executed: u64,
    /// Cumulative quiesced cycles fast-forwarded (event-driven clock).
    pub cycles_skipped: u64,
}

/// Columns of a metrics row, in emission order. Shared by the CSV header,
/// the JSON-lines keys and the format validator in `trace_check`.
pub const METRICS_COLUMNS: [&str; 15] = [
    "interval",
    "cycle",
    "committed",
    "ipc",
    "rob",
    "iq",
    "lsq",
    "llib",
    "llbv",
    "l1_miss_rate",
    "l2_miss_rate",
    "mispredict_rate",
    "ticks_executed",
    "cycles_skipped",
    "skipped_fraction",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Csv,
    Jsonl,
}

#[derive(Debug)]
struct MetricsState {
    interval: u64,
    path: Option<PathBuf>,
    format: MetricsFormat,
    /// Next committed-instruction boundary that emits a row.
    next_at: u64,
    rows: u64,
    last: MetricsFrame,
    out: String,
}

#[derive(Debug, Clone, Copy)]
struct TraceRecord {
    pc: u64,
    class: OpClass,
    mem_addr: Option<u64>,
    fetch: u64,
    dispatch: Option<u64>,
    issue: Option<u64>,
    complete: Option<u64>,
    handoff: Option<u64>,
}

#[derive(Debug)]
struct TraceState {
    path: Option<PathBuf>,
    /// µops still allowed to open a record (window budget countdown).
    remaining: u64,
    records: FastHashMap<u64, TraceRecord>,
    retired: u64,
    out: String,
}

/// The probe sink. Construct one with [`Telemetry::from_configs`] (file
/// output) or [`Telemetry::buffered`] (in-memory only, for tests), pass it
/// to a core's `run_probed`, then collect output via
/// [`Telemetry::write_files`] / [`Telemetry::metrics_text`] /
/// [`Telemetry::trace_text`].
#[derive(Debug)]
pub struct Telemetry {
    metrics: Option<MetricsState>,
    trace: Option<TraceState>,
}

impl Telemetry {
    /// Builds a sink with the given backends; `None` leaves a backend
    /// disabled.
    #[must_use]
    pub fn from_configs(metrics: Option<&MetricsConfig>, trace: Option<&TraceConfig>) -> Self {
        Telemetry {
            metrics: metrics.map(|m| MetricsState {
                interval: m.interval,
                path: Some(PathBuf::from(&m.path)),
                format: if m.path.ends_with(".jsonl") || m.path.ends_with(".json") {
                    MetricsFormat::Jsonl
                } else {
                    MetricsFormat::Csv
                },
                next_at: m.interval,
                rows: 0,
                last: MetricsFrame::default(),
                out: String::new(),
            }),
            trace: trace.map(|t| TraceState {
                path: Some(PathBuf::from(&t.path)),
                remaining: t.ops,
                records: FastHashMap::default(),
                retired: 0,
                out: String::new(),
            }),
        }
    }

    /// Builds an in-memory sink (no file paths): CSV metrics every
    /// `metrics_interval` instructions and/or a trace of `trace_ops` µops.
    /// Used by tests and the fuzz oracle's probed pass.
    #[must_use]
    pub fn buffered(metrics_interval: Option<u64>, trace_ops: Option<u64>) -> Self {
        Telemetry {
            metrics: metrics_interval.map(|interval| MetricsState {
                interval: interval.max(1),
                path: None,
                format: MetricsFormat::Csv,
                next_at: interval.max(1),
                rows: 0,
                last: MetricsFrame::default(),
                out: String::new(),
            }),
            trace: trace_ops.map(|ops| TraceState {
                path: None,
                remaining: ops,
                records: FastHashMap::default(),
                retired: 0,
                out: String::new(),
            }),
        }
    }

    /// Whether the metrics backend is active.
    #[must_use]
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// Whether the trace backend is active.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Whether `committed` has reached the next metrics-row boundary.
    /// Called once per executed tick; must stay branch-cheap.
    #[inline]
    #[must_use]
    pub fn metrics_due(&self, committed: u64) -> bool {
        match &self.metrics {
            Some(m) => committed >= m.next_at,
            None => false,
        }
    }

    /// Emits one metrics row from `frame`, differencing against the
    /// previous frame for the interval rates, and advances the boundary
    /// past `frame.committed` (a multi-commit tick crossing several
    /// boundaries emits a single row — the row carries the actual cycle
    /// and committed counts, so consumers see the true spacing).
    pub fn record_metrics(&mut self, frame: &MetricsFrame) {
        let Some(m) = &mut self.metrics else { return };
        let d_cycle = frame.cycle - m.last.cycle;
        let d_committed = frame.committed - m.last.committed;
        let d_l1_ref = (frame.l1_hits + frame.l2_hits + frame.mem_accesses)
            - (m.last.l1_hits + m.last.l2_hits + m.last.mem_accesses);
        let d_l1_miss =
            (frame.l2_hits + frame.mem_accesses) - (m.last.l2_hits + m.last.mem_accesses);
        let d_l2_miss = frame.mem_accesses - m.last.mem_accesses;
        let d_branches = frame.cond_branches - m.last.cond_branches;
        let d_mispredicts = frame.branch_mispredicts - m.last.branch_mispredicts;
        let ipc = ratio(d_committed, d_cycle);
        let l1_miss_rate = ratio(d_l1_miss, d_l1_ref);
        let l2_miss_rate = ratio(d_l2_miss, d_l1_miss);
        let mispredict_rate = ratio(d_mispredicts, d_branches);
        let skipped_fraction = ratio(frame.cycles_skipped, frame.cycle);
        m.rows += 1;
        match m.format {
            MetricsFormat::Csv => {
                if m.out.is_empty() {
                    m.out.push_str(&METRICS_COLUMNS.join(","));
                    m.out.push('\n');
                }
                let _ = writeln!(
                    m.out,
                    "{},{},{},{ipc:.6},{},{},{},{},{},{l1_miss_rate:.6},{l2_miss_rate:.6},\
                     {mispredict_rate:.6},{},{},{skipped_fraction:.6}",
                    m.rows,
                    frame.cycle,
                    frame.committed,
                    frame.rob,
                    frame.iq,
                    frame.lsq,
                    frame.llib,
                    frame.llbv,
                    frame.ticks_executed,
                    frame.cycles_skipped,
                );
            }
            MetricsFormat::Jsonl => {
                let _ = writeln!(
                    m.out,
                    "{{\"interval\": {}, \"cycle\": {}, \"committed\": {}, \"ipc\": {ipc:.6}, \
                     \"rob\": {}, \"iq\": {}, \"lsq\": {}, \"llib\": {}, \"llbv\": {}, \
                     \"l1_miss_rate\": {l1_miss_rate:.6}, \"l2_miss_rate\": {l2_miss_rate:.6}, \
                     \"mispredict_rate\": {mispredict_rate:.6}, \"ticks_executed\": {}, \
                     \"cycles_skipped\": {}, \"skipped_fraction\": {skipped_fraction:.6}}}",
                    m.rows,
                    frame.cycle,
                    frame.committed,
                    frame.rob,
                    frame.iq,
                    frame.lsq,
                    frame.llib,
                    frame.llbv,
                    frame.ticks_executed,
                    frame.cycles_skipped,
                );
            }
        }
        m.next_at = (frame.committed / m.interval + 1) * m.interval;
        m.last = *frame;
    }

    /// Opens a trace record for a fetched µop, charging the window budget.
    /// Past the budget (or with tracing off) this is a no-op.
    #[inline]
    pub fn trace_fetch(&mut self, op: &MicroOp, cycle: u64) {
        let Some(t) = &mut self.trace else { return };
        if t.remaining == 0 {
            return;
        }
        t.remaining -= 1;
        t.records.insert(
            op.seq,
            TraceRecord {
                pc: op.pc,
                class: op.class,
                mem_addr: op.mem_addr,
                fetch: cycle,
                dispatch: None,
                issue: None,
                complete: None,
                handoff: None,
            },
        );
    }

    /// Stamps `stage` for a traced µop at `cycle`. The first stamp per
    /// stage wins (a long-latency load issues once in the Cache Processor
    /// even though the Address Processor finishes it). Untracked µops —
    /// tracing off or past the window budget — are no-ops.
    #[inline]
    pub fn trace_stage(&mut self, seq: u64, stage: Stage, cycle: u64) {
        let Some(t) = &mut self.trace else { return };
        let Some(r) = t.records.get_mut(&seq) else {
            return;
        };
        let slot = match stage {
            Stage::Dispatch => &mut r.dispatch,
            Stage::Issue => &mut r.issue,
            Stage::Complete => &mut r.complete,
            Stage::MpHandoff => &mut r.handoff,
        };
        if slot.is_none() {
            *slot = Some(cycle);
        }
    }

    /// Closes a traced µop at commit and emits its O3PipeView block.
    ///
    /// Missing intermediate stamps inherit the previous stage's timestamp
    /// and every stage is clamped non-decreasing, so emitted blocks are
    /// monotone by construction — `trace_check` re-validates this from the
    /// file.
    #[inline]
    pub fn trace_commit(&mut self, seq: u64, cycle: u64) {
        let Some(t) = &mut self.trace else { return };
        let Some(r) = t.records.remove(&seq) else {
            return;
        };
        let dispatch = r.dispatch.unwrap_or(r.fetch).max(r.fetch);
        let issue = r.issue.unwrap_or(dispatch).max(dispatch);
        let complete = r.complete.unwrap_or(issue).max(issue);
        let retire = cycle.max(complete);
        let _ = write!(
            t.out,
            "O3PipeView:fetch:{}:0x{:016x}:0:{}:{:?}",
            r.fetch, r.pc, seq, r.class
        );
        if let Some(addr) = r.mem_addr {
            let _ = write!(t.out, " @0x{addr:x}");
        }
        if let Some(h) = r.handoff {
            let _ = write!(t.out, " mp@{h}");
        }
        let _ = writeln!(t.out);
        let _ = writeln!(t.out, "O3PipeView:decode:{dispatch}");
        let _ = writeln!(t.out, "O3PipeView:rename:{dispatch}");
        let _ = writeln!(t.out, "O3PipeView:dispatch:{dispatch}");
        let _ = writeln!(t.out, "O3PipeView:issue:{issue}");
        let _ = writeln!(t.out, "O3PipeView:complete:{complete}");
        let _ = writeln!(t.out, "O3PipeView:retire:{retire}:store:0");
        t.retired += 1;
    }

    /// Number of metrics rows emitted so far.
    #[must_use]
    pub fn metrics_rows(&self) -> u64 {
        self.metrics.as_ref().map_or(0, |m| m.rows)
    }

    /// Number of µop blocks emitted (committed traced µops).
    #[must_use]
    pub fn trace_retired(&self) -> u64 {
        self.trace.as_ref().map_or(0, |t| t.retired)
    }

    /// Whether the trace window budget was exhausted before the run ended.
    #[must_use]
    pub fn trace_budget_exhausted(&self) -> bool {
        self.trace.as_ref().is_some_and(|t| t.remaining == 0)
    }

    /// The buffered metrics output (CSV or JSON-lines).
    #[must_use]
    pub fn metrics_text(&self) -> &str {
        self.metrics.as_ref().map_or("", |m| m.out.as_str())
    }

    /// The buffered O3PipeView trace output.
    #[must_use]
    pub fn trace_text(&self) -> &str {
        self.trace.as_ref().map_or("", |t| t.out.as_str())
    }

    /// Writes each backend's buffered output to its configured path (a
    /// no-op for backends without one, e.g. [`Telemetry::buffered`]).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error of a failed write.
    pub fn write_files(&self) -> std::io::Result<()> {
        if let Some(m) = &self.metrics {
            if let Some(path) = &m.path {
                std::fs::write(path, &m.out)?;
            }
        }
        if let Some(t) = &self.trace {
            if let Some(path) = &t.path {
                std::fs::write(path, &t.out)?;
            }
        }
        Ok(())
    }
}

/// `num / den` as a float, 0 when the denominator is 0 (an interval with
/// no branches has no meaningful mispredict rate; report a stable 0).
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_config_parses_strictly() {
        let cfg = MetricsConfig::parse("out/m.csv:500").unwrap();
        assert_eq!(cfg.path, "out/m.csv");
        assert_eq!(cfg.interval, 500);
        assert_eq!(cfg.to_string(), "out/m.csv:500");
        assert!(MetricsConfig::parse("out.csv").is_err(), "missing interval");
        assert!(MetricsConfig::parse(":500").is_err(), "empty path");
        assert!(MetricsConfig::parse("out.csv:0").is_err(), "zero interval");
        assert!(MetricsConfig::parse("out.csv:fast").is_err());
        assert!(MetricsConfig::parse("").is_err());
    }

    #[test]
    fn trace_config_parses_path_and_optional_budget() {
        let t = TraceConfig::parse("run.trace").unwrap();
        assert_eq!(t.path, "run.trace");
        assert_eq!(t.ops, DEFAULT_TRACE_OPS);
        let t = TraceConfig::parse("run.trace:2000").unwrap();
        assert_eq!(t.path, "run.trace");
        assert_eq!(t.ops, 2000);
        assert!(TraceConfig::parse("").is_err());
        assert!(TraceConfig::parse("run.trace:0").is_err(), "zero budget");
        assert!(TraceConfig::parse(":7").is_err(), "empty path");
        // A non-numeric suffix is part of the path, not a malformed budget.
        let t = TraceConfig::parse("dir:a/run").unwrap();
        assert_eq!(t.path, "dir:a/run");
    }

    #[test]
    fn per_job_paths_keep_the_extension_and_sanitise_the_tag() {
        let cfg = MetricsConfig::parse("runs/m.csv:100").unwrap();
        assert_eq!(cfg.for_job("dkip gcc/8").path, "runs/m.dkip_gcc_8.csv");
        let bare = MetricsConfig::parse("metrics:100").unwrap();
        assert_eq!(bare.for_job("a").path, "metrics.a");
        // A dot inside a directory name is not an extension.
        let dir = MetricsConfig::parse("a.b/metrics:100").unwrap();
        assert_eq!(dir.for_job("x").path, "a.b/metrics.x");
    }

    fn frame(cycle: u64, committed: u64) -> MetricsFrame {
        MetricsFrame {
            cycle,
            committed,
            rob: 3,
            iq: 2,
            lsq: 1,
            llib: 0,
            llbv: 0,
            l1_hits: committed / 2,
            l2_hits: committed / 4,
            mem_accesses: committed / 8,
            cond_branches: committed / 5,
            branch_mispredicts: committed / 50,
            ticks_executed: cycle,
            cycles_skipped: 0,
        }
    }

    #[test]
    fn metrics_rows_are_deterministic_and_interval_based() {
        let run = || {
            let mut t = Telemetry::buffered(Some(100), None);
            for committed in [100, 200, 300] {
                assert!(t.metrics_due(committed));
                t.record_metrics(&frame(committed * 3, committed));
            }
            assert!(!t.metrics_due(399));
            t.metrics_text().to_owned()
        };
        let a = run();
        assert_eq!(a, run(), "byte-identical across repeated runs");
        assert_eq!(a.lines().count(), 4, "header + three rows");
        assert!(a.starts_with("interval,cycle,committed,ipc,"));
        let row: Vec<&str> = a.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(row.len(), METRICS_COLUMNS.len());
        assert_eq!(row[1], "300");
        assert_eq!(row[2], "100");
        assert_eq!(row[3], "0.333333", "interval IPC with fixed precision");
    }

    #[test]
    fn a_boundary_overshoot_advances_past_the_committed_count() {
        let mut t = Telemetry::buffered(Some(100), None);
        assert!(t.metrics_due(250), "several boundaries crossed at once");
        t.record_metrics(&frame(500, 250));
        assert!(!t.metrics_due(299));
        assert!(t.metrics_due(300), "next boundary is the next multiple");
    }

    fn op(seq: u64) -> MicroOp {
        MicroOp::new(seq, 0x40_0000 + seq * 4, OpClass::Nop)
    }

    #[test]
    fn trace_blocks_are_monotone_o3pipeview() {
        let mut t = Telemetry::buffered(None, Some(10));
        t.trace_fetch(&op(7), 5);
        t.trace_stage(7, Stage::Dispatch, 6);
        t.trace_stage(7, Stage::Issue, 8);
        t.trace_stage(7, Stage::Issue, 99); // later duplicate must lose
        t.trace_stage(7, Stage::Complete, 9);
        t.trace_commit(7, 12);
        let text = t.trace_text();
        assert!(text.starts_with("O3PipeView:fetch:5:0x"));
        assert!(text.contains(":0:7:Nop\n"), "seq and disasm label: {text}");
        assert!(text.contains("O3PipeView:dispatch:6\n"));
        assert!(text.contains("O3PipeView:issue:8\n"));
        assert!(text.contains("O3PipeView:complete:9\n"));
        assert!(text.contains("O3PipeView:retire:12:store:0\n"));
        assert_eq!(t.trace_retired(), 1);
    }

    #[test]
    fn missing_stage_stamps_inherit_the_previous_stage() {
        let mut t = Telemetry::buffered(None, Some(10));
        t.trace_fetch(&op(1), 3);
        t.trace_commit(1, 10);
        let text = t.trace_text();
        assert!(text.contains("O3PipeView:dispatch:3\n"));
        assert!(text.contains("O3PipeView:issue:3\n"));
        assert!(text.contains("O3PipeView:complete:3\n"));
        assert!(text.contains("O3PipeView:retire:10:store:0\n"));
    }

    #[test]
    fn the_window_budget_caps_recorded_ops() {
        let mut t = Telemetry::buffered(None, Some(2));
        for seq in 0..5 {
            t.trace_fetch(&op(seq), seq);
            t.trace_commit(seq, seq + 10);
        }
        assert_eq!(t.trace_retired(), 2);
        assert!(t.trace_budget_exhausted());
    }

    #[test]
    fn handoff_is_recorded_in_the_fetch_label() {
        let mut t = Telemetry::buffered(None, Some(4));
        t.trace_fetch(&op(3), 1);
        t.trace_stage(3, Stage::Dispatch, 2);
        t.trace_stage(3, Stage::MpHandoff, 40);
        t.trace_stage(3, Stage::Issue, 45);
        t.trace_stage(3, Stage::Complete, 50);
        t.trace_commit(3, 50);
        assert!(t.trace_text().contains(" mp@40\n"), "{}", t.trace_text());
    }

    #[test]
    fn disabled_backends_are_inert() {
        let mut t = Telemetry::buffered(None, None);
        assert!(!t.metrics_enabled() && !t.trace_enabled());
        assert!(!t.metrics_due(1_000_000));
        t.trace_fetch(&op(0), 1);
        t.trace_commit(0, 2);
        assert_eq!(t.trace_text(), "");
        assert_eq!(t.metrics_text(), "");
        assert!(t.write_files().is_ok(), "no paths, nothing to write");
    }
}
