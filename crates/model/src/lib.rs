//! Common model types for the Decoupled KILO-Instruction Processor (D-KIP)
//! reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`reg`] — architectural and physical register identifiers,
//! * [`op`] — micro-operation classes, functional-unit pools and latencies,
//! * [`instr`] — the trace-level [`instr::MicroOp`] record produced by the
//!   workload generators and consumed by every core model,
//! * [`config`] — configuration structures for the memory hierarchy, the
//!   baseline out-of-order cores, the traditional KILO processor and the
//!   D-KIP itself, including the presets of Tables 1, 2 and 3 of the paper,
//! * [`stats`] — counters, histograms and the aggregate [`stats::SimStats`]
//!   record reported by every simulation,
//! * [`collections`] — deterministic, allocation-conscious containers for
//!   the per-cycle hot path of the core models,
//! * [`telemetry`] — the optional intra-run probe sink (interval
//!   time-series metrics and Konata/O3PipeView pipeline traces) the cores
//!   drive from inside their cycle loops,
//! * [`error`] — configuration validation errors.
//!
//! # Example
//!
//! ```
//! use dkip_model::config::{DkipConfig, MemoryHierarchyConfig};
//!
//! let dkip = DkipConfig::paper_default();
//! let mem = MemoryHierarchyConfig::mem_400();
//! assert_eq!(dkip.cache_processor.rob_capacity, 64);
//! assert_eq!(mem.memory_latency, 400);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collections;
pub mod config;
pub mod error;
pub mod instr;
pub mod key;
pub mod op;
pub mod reg;
pub mod stats;
pub mod telemetry;

pub use collections::{
    fast_map_with_capacity, fast_set_with_capacity, ConsumerTable, DepList, FastHashMap,
    FastHashSet, LastWriters, MAX_SOURCES,
};
pub use config::{
    event_clock_enabled, BaselineConfig, CacheProcessorConfig, DkipConfig, KiloConfig,
    MemoryHierarchyConfig, MemoryProcessorConfig, SampleConfig, SchedPolicy, NO_SKIP_ENV,
    SAMPLE_ENV,
};
pub use error::ConfigError;
pub use instr::{BranchInfo, BranchKind, MicroOp};
pub use key::{fnv1a_128, key_digest, KeyWriter, StableKey};
pub use op::{FuPool, OpClass};
pub use reg::{ArchReg, PhysReg, RegClass, FP_ARCH_REGS, INT_ARCH_REGS, TOTAL_ARCH_REGS};
pub use stats::{Histogram, IpcEstimate, SampleEstimator, SimStats, WindowSample};
pub use telemetry::{MetricsConfig, MetricsFrame, Stage, Telemetry, TraceConfig, METRICS_ENV};
