//! `dkip-sim` — the sweep service CLI.
//!
//! Three subcommands around the content-addressed result store
//! (`dkip_sim::store`):
//!
//! * `sweep <suite> [budget=N] [threads=N] [cache=DIR] [shard=I/N]
//!   [expect=cold|warm] [retries=N]` — run a golden suite, serving cached
//!   jobs from `cache=DIR` (or `DKIP_CACHE`) and checkpointing per-shard
//!   progress so an interrupted sweep resumes. Failed jobs (an isolated
//!   panic, a metrics-write error) are retried for up to `retries=N`
//!   extra rounds (default 2) with bounded backoff; jobs still failing
//!   are summarised on stderr and the sweep exits 1 — without discarding
//!   the completed work, which is checkpointed and cached. `expect=`
//!   turns the run into an assertion: `cold` fails (exit 1) if anything
//!   hit, `warm` fails if anything recomputed — CI's cache-check contract.
//! * `serve socket=PATH | listen=ADDR [cache=DIR] [threads=N]
//!   [deadline=MS]` — answer sweep/figure queries over a unix or TCP
//!   socket (protocol and limits in `dkip_sim::service`), computing only
//!   cache misses. `deadline=MS` overrides the per-request deadline
//!   (`0` disables it); the server drains gracefully on the `shutdown`
//!   verb.
//! * `query socket=PATH | connect=ADDR <request words…>` — one-shot
//!   client: sends a request line, prints the status line to stderr and
//!   the body to stdout, exits non-zero on an `err` response.
//!
//! Malformed arguments exit 2 with a usage message, like the figure
//! binaries' `threads=` contract.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Duration;

use dkip_sim::runner::{results_to_kv, JobFailure};
use dkip_sim::service::{run_server, ServeOptions, SweepService};
use dkip_sim::store::{ResultStore, ShardSpec, SweepCheckpoint};
use dkip_sim::suites::golden_suite_jobs;
use dkip_sim::{Job, JobResult, SweepRunner};

const USAGE: &str = "usage: dkip-sim <subcommand>
  sweep <suite> [budget=N] [threads=N] [cache=DIR] [shard=I/N] [expect=cold|warm] [retries=N]
      suites: baseline | kilo | dkip | riscv | all
  serve (socket=PATH | listen=ADDR) [cache=DIR] [threads=N] [deadline=MS]
  query (socket=PATH | connect=ADDR) <request words...>
environment: DKIP_CACHE (default store), DKIP_THREADS, DKIP_CACHE_SALT, DKIP_FAULTS";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some(other) => usage_error(&format!("unknown subcommand {other:?}")),
        None => usage_error("missing subcommand"),
    }
}

/// Shared `threads=` / `cache=` resolution: an explicit `cache=` wins over
/// `DKIP_CACHE`; an explicit `threads=` still picks up the environment
/// store, mirroring the figure binaries.
fn build_runner(threads: Option<usize>, cache: Option<&str>) -> Result<SweepRunner, String> {
    let runner = match threads {
        Some(n) => SweepRunner::new(n).with_store_opt(ResultStore::from_env()),
        None => SweepRunner::from_env(),
    };
    match cache {
        None => Ok(runner),
        Some(dir) => match ResultStore::open(dir) {
            Ok(store) => Ok(runner.with_store(store)),
            Err(e) => Err(format!("invalid cache={dir:?}: cannot open store: {e}")),
        },
    }
}

fn parse_positive(value: &str, what: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("invalid {what} {value:?}: expected a positive integer"))
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let Some(suite) = args.first() else {
        return usage_error("sweep requires a suite name");
    };
    let mut budget = None;
    let mut threads = None;
    let mut cache = None;
    let mut shard = None;
    let mut expect = None;
    let mut retries = 2usize;
    for arg in &args[1..] {
        let Some((key, value)) = arg.split_once('=') else {
            return usage_error(&format!("malformed sweep argument {arg:?}"));
        };
        let outcome = match key {
            "budget" => parse_positive(value, "budget").map(|b| budget = Some(b)),
            "threads" => parse_positive(value, "threads").map(|n| threads = Some(n as usize)),
            "cache" => {
                if value.trim().is_empty() {
                    Err("invalid cache=: expected a directory".to_owned())
                } else {
                    cache = Some(value.trim().to_owned());
                    Ok(())
                }
            }
            "shard" => ShardSpec::parse(value).map(|s| shard = Some(s)),
            "expect" => match value {
                "cold" | "warm" => {
                    expect = Some(value.to_owned());
                    Ok(())
                }
                _ => Err(format!("invalid expect={value:?}: expected cold or warm")),
            },
            "retries" => value
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("invalid retries {value:?}: expected an integer >= 0"))
                .map(|n| retries = n),
            _ => Err(format!("unknown sweep argument {key}=")),
        };
        if let Err(message) = outcome {
            return usage_error(&message);
        }
    }
    let jobs = match golden_suite_jobs(suite, budget) {
        Ok(jobs) => jobs,
        Err(message) => return usage_error(&message),
    };
    let runner = match build_runner(threads, cache.as_deref()) {
        Ok(runner) => runner,
        Err(message) => return usage_error(&message),
    };
    if runner.store().is_none() {
        if expect.is_some() {
            return usage_error("expect= requires cache= or DKIP_CACHE");
        }
        if shard.is_some() {
            return usage_error(
                "shard= requires cache= or DKIP_CACHE (progress lives in the store)",
            );
        }
    }
    // Shard selection keeps the original job indices so every shard's
    // progress file refers to the same global numbering.
    let indices: Vec<usize> = match shard {
        None => (0..jobs.len()).collect(),
        Some(spec) => (0..jobs.len()).filter(|&idx| spec.owns(idx)).collect(),
    };
    let shard_jobs: Vec<_> = indices.iter().map(|&idx| jobs[idx].clone()).collect();
    let checkpoint = match (shard, runner.store()) {
        (Some(spec), Some(store)) => match SweepCheckpoint::open(store, suite, spec) {
            Ok(ckpt) => Some(Mutex::new(ckpt)),
            Err(e) => return usage_error(&format!("cannot open progress file: {e}")),
        },
        _ => None,
    };
    let resumed = checkpoint
        .as_ref()
        .map_or(0, |ckpt| ckpt.lock().expect("checkpoint poisoned").len());
    // Retry loop: round 0 runs everything, later rounds re-run only the
    // jobs that failed, with bounded backoff between rounds. Results land
    // in per-shard-position slots so the final output is in job order no
    // matter which round produced each result; the checkpoint observer
    // only ever sees successes, so failed jobs are never marked done.
    let mut slots: Vec<Option<JobResult>> = vec![None; shard_jobs.len()];
    let mut pending: Vec<usize> = (0..shard_jobs.len()).collect();
    let mut failures: Vec<JobFailure> = Vec::new();
    let (mut hits, mut misses, mut uncacheable) = (0u64, 0u64, 0u64);
    let mut backoff = Duration::from_millis(200);
    for round in 0..=retries {
        if pending.is_empty() {
            break;
        }
        if round > 0 {
            eprintln!(
                "# sweep {suite}: retrying {} failed job(s), round {round}/{retries} \
                 (backoff {}ms)",
                pending.len(),
                backoff.as_millis()
            );
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_secs(2));
        }
        let round_jobs: Vec<Job> = pending.iter().map(|&pos| shard_jobs[pos].clone()).collect();
        // Global job indices of this round's jobs, for checkpointing.
        let global: Vec<usize> = pending.iter().map(|&pos| indices[pos]).collect();
        let observe = checkpoint.as_ref().map(|ckpt| {
            let global = &global;
            move |pos: usize, _result: &JobResult| {
                ckpt.lock().expect("checkpoint poisoned").mark(global[pos]);
            }
        });
        let report = runner.run_report_observed(
            &round_jobs,
            observe
                .as_ref()
                .map(|f| f as &(dyn Fn(usize, &JobResult) + Sync)),
        );
        hits += report.hits;
        misses += report.misses;
        uncacheable += report.uncacheable;
        let failed: std::collections::BTreeSet<usize> =
            report.failures.iter().map(|f| f.index).collect();
        let mut results = report.results.into_iter();
        let mut still_pending = Vec::new();
        for (round_pos, &shard_pos) in pending.iter().enumerate() {
            if failed.contains(&round_pos) {
                still_pending.push(shard_pos);
            } else {
                slots[shard_pos] = Some(results.next().expect("one result per succeeded job"));
            }
        }
        failures = report
            .failures
            .into_iter()
            .map(|mut failure| {
                failure.index = indices[pending[failure.index]];
                failure
            })
            .collect();
        pending = still_pending;
    }
    let results: Vec<JobResult> = slots.into_iter().flatten().collect();
    print!("{}", results_to_kv(&results));
    eprintln!(
        "# sweep {suite}: jobs={} hits={hits} misses={misses} uncacheable={uncacheable} \
         resumed={resumed} failures={}",
        results.len(),
        failures.len(),
    );
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("# sweep failure: {}", failure.render());
        }
        eprintln!(
            "error: {} job(s) still failing after {retries} retry round(s)",
            failures.len()
        );
        return ExitCode::FAILURE;
    }
    match expect.as_deref() {
        Some("cold") if hits > 0 => {
            eprintln!("error: expected a cold sweep but {hits} jobs hit the cache");
            ExitCode::FAILURE
        }
        Some("warm") if misses > 0 => {
            eprintln!("error: expected a warm sweep but {misses} jobs were recomputed");
            ExitCode::FAILURE
        }
        _ => ExitCode::SUCCESS,
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut socket = None;
    let mut listen = None;
    let mut cache = None;
    let mut threads = None;
    let mut opts = ServeOptions::default();
    for arg in args {
        let Some((key, value)) = arg.split_once('=') else {
            return usage_error(&format!("malformed serve argument {arg:?}"));
        };
        match key {
            "socket" => socket = Some(value.to_owned()),
            "listen" => listen = Some(value.to_owned()),
            "cache" => {
                if value.trim().is_empty() {
                    return usage_error("invalid cache=: expected a directory");
                }
                cache = Some(value.trim().to_owned());
            }
            "threads" => match parse_positive(value, "threads") {
                Ok(n) => threads = Some(n as usize),
                Err(message) => return usage_error(&message),
            },
            "deadline" => match value.trim().parse::<u64>() {
                Ok(0) => opts.deadline = None,
                Ok(ms) => opts.deadline = Some(Duration::from_millis(ms)),
                Err(_) => {
                    return usage_error(&format!(
                        "invalid deadline {value:?}: expected milliseconds (0 disables)"
                    ))
                }
            },
            _ => return usage_error(&format!("unknown serve argument {key}=")),
        }
    }
    let runner = match build_runner(threads, cache.as_deref()) {
        Ok(runner) => runner,
        Err(message) => return usage_error(&message),
    };
    let service = SweepService::new(runner);
    let served = match (socket, listen) {
        (Some(path), None) => {
            let _ = std::fs::remove_file(&path);
            let listener = match UnixListener::bind(&path) {
                Ok(listener) => listener,
                Err(e) => return usage_error(&format!("cannot bind socket={path:?}: {e}")),
            };
            eprintln!("# dkip-sim serve: listening on unix socket {path}");
            let served = run_server(&listener, service, &opts);
            let _ = std::fs::remove_file(&path);
            served
        }
        (None, Some(addr)) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(listener) => listener,
                Err(e) => return usage_error(&format!("cannot bind listen={addr:?}: {e}")),
            };
            eprintln!(
                "# dkip-sim serve: listening on {}",
                listener.local_addr().map_or(addr, |a| a.to_string())
            );
            run_server(&listener, service, &opts)
        }
        _ => return usage_error("serve requires exactly one of socket=PATH or listen=ADDR"),
    };
    match served {
        Ok(()) => {
            eprintln!("# dkip-sim serve: drained, shutting down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: server failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_query(args: &[String]) -> ExitCode {
    let Some(target) = args.first() else {
        return usage_error("query requires socket=PATH or connect=ADDR");
    };
    let request = args[1..].join(" ");
    if request.trim().is_empty() {
        return usage_error("query requires a request (e.g. suite kilo budget=1000)");
    }
    let stream: Box<dyn ReadWrite> = match target.split_once('=') {
        Some(("socket", path)) => match UnixStream::connect(path) {
            Ok(stream) => Box::new(stream),
            Err(e) => return usage_error(&format!("cannot connect to socket={path:?}: {e}")),
        },
        Some(("connect", addr)) => match TcpStream::connect(addr) {
            Ok(stream) => Box::new(stream),
            Err(e) => return usage_error(&format!("cannot connect to {addr:?}: {e}")),
        },
        _ => return usage_error(&format!("malformed query target {target:?}")),
    };
    run_query(stream, &request)
}

trait ReadWrite: Read + Write {}
impl<T: Read + Write> ReadWrite for T {}

/// Sends one request, streams the response: status to stderr, body to
/// stdout, exit code from the status verb.
fn run_query(mut stream: Box<dyn ReadWrite>, request: &str) -> ExitCode {
    if let Err(e) = stream
        .write_all(format!("{request}\n").as_bytes())
        .and_then(|()| stream.flush())
    {
        eprintln!("error: cannot send request: {e}");
        return ExitCode::FAILURE;
    }
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    if reader.read_line(&mut status).is_err() || status.is_empty() {
        eprintln!("error: connection closed before a status line");
        return ExitCode::FAILURE;
    }
    let status = status.trim_end();
    eprintln!("{status}");
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                eprintln!("error: connection closed before the '.' terminator");
                return ExitCode::FAILURE;
            }
            Ok(_) => {}
        }
        if line.trim_end() == "." {
            break;
        }
        print!("{line}");
    }
    if status.starts_with("ok") {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
