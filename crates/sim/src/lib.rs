//! Experiment harness for the D-KIP reproduction.
//!
//! This crate knows how to run every experiment of the paper's evaluation
//! section and print the same rows/series the paper reports:
//!
//! * [`run_baseline`], [`run_kilo`] and [`run_dkip`] — one-call wrappers for
//!   the three processor families (re-exported from the core crates),
//! * [`suite_mean_ipc`] — arithmetic-mean IPC over a benchmark list, the
//!   metric of Figures 1, 2, 9, 10, 11 and 12,
//! * [`experiments`] — one driver function per paper figure/table, each
//!   returning a structured [`report::Series`] collection,
//! * [`workload`] — the [`Workload`] abstraction: a job runs either a
//!   synthetic benchmark or an execution-driven RISC-V kernel from
//!   `dkip-riscv`, both through one `Iterator<Item = MicroOp>` path,
//! * [`runner`] — the parallel sweep runner: an explicit job list fanned out
//!   over a `std::thread::scope` worker pool with deterministic result
//!   ordering (`DKIP_THREADS` selects the pool size),
//! * [`fuzz`] — the differential-fuzzing oracle: checks that a random
//!   RV64IM program commits the same architectural state on the functional
//!   emulator and all three core families, plus the shrinking-lite
//!   minimisers used by `tests/fuzz_differential.rs`,
//! * [`sampled`] — the sampled-simulation mode: checkpointed detailed
//!   windows separated by functional fast-forward, estimating whole-run
//!   IPC with a confidence interval (opt-in per [`Job`] or via the
//!   `DKIP_SAMPLE` environment variable; exact mode stays the golden
//!   reference),
//! * [`store`] — the persistent content-addressed result store: every
//!   cacheable [`Job`] derives a stable config key, and the runner serves
//!   hits byte-identically instead of re-simulating (`DKIP_CACHE` or the
//!   `cache=` knob selects the store directory),
//! * [`service`] — the sweep service behind `dkip-sim serve`: a line
//!   protocol answering suite/job queries from the store and computing
//!   only the misses,
//! * [`chaos`] — deterministic fault injection (`DKIP_FAULTS`): named
//!   fault points on the store/runner/service I/O paths that chaos
//!   campaigns arm to exercise the failure handling, and that cost one
//!   disarmed branch otherwise,
//! * [`golden`] — golden-snapshot comparison for the regression tests under
//!   `tests/golden/`, with a `DKIP_BLESS=1` regeneration path,
//! * [`suites`] — the pinned job lists behind those snapshots, shared by the
//!   golden-stats and perf-invariance tests,
//! * [`report`] — plain-text table rendering used by the `fig*` binaries in
//!   `dkip-bench` and by `EXPERIMENTS.md`.
//!
//! The instruction budget per benchmark is a parameter everywhere: the
//! paper simulates 200M instructions per SimPoint, which is far more than
//! needed for the synthetic workloads to reach steady state; the defaults
//! used by the benches are tens of thousands of instructions so that the
//! whole figure set regenerates in minutes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod experiments;
pub mod fuzz;
pub mod golden;
pub mod report;
pub mod runner;
pub mod sampled;
pub mod service;
pub mod store;
pub mod suites;
pub mod workload;

pub use dkip_core::{run_dkip, run_dkip_stream};
pub use dkip_kilo::{run_kilo, run_kilo_stream};
pub use dkip_ooo::{run_baseline, run_baseline_stream};
pub use runner::{Job, JobFailure, JobResult, Machine, SweepReport, SweepRunner};
pub use sampled::{run_sampled, SampledRun};
pub use store::{ResultStore, ShardSpec, StoredResult, SweepCheckpoint, CACHE_ENV};
pub use workload::{Workload, WorkloadStream};

use dkip_model::config::MemoryHierarchyConfig;
use dkip_model::stats::MeanIpc;
use dkip_model::SimStats;
use dkip_trace::Benchmark;

/// How many instructions each benchmark runs for in an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrBudget(pub u64);

impl Default for InstrBudget {
    fn default() -> Self {
        InstrBudget(20_000)
    }
}

/// A closure-friendly alias for "run this benchmark and give me its stats".
pub type BenchRunner<'a> = dyn Fn(Benchmark) -> SimStats + 'a;

/// Arithmetic-mean IPC over `benchmarks`, running each through `runner`.
///
/// This is the "Average IPC (Arith. Mean)" metric used on the y-axis of the
/// paper's figures.
pub fn suite_mean_ipc(benchmarks: &[Benchmark], runner: &BenchRunner<'_>) -> f64 {
    let mut mean = MeanIpc::new();
    for &bench in benchmarks {
        mean.add(runner(bench).ipc());
    }
    mean.mean()
}

/// The L2 cache sizes (in KB) swept by Figures 11 and 12.
#[must_use]
pub fn figure11_l2_sizes_kb() -> Vec<usize> {
    vec![64, 128, 256, 512, 1024, 2048, 4096]
}

/// Convenience: the default memory hierarchy of Tables 2/3.
#[must_use]
pub fn default_memory() -> MemoryHierarchyConfig {
    MemoryHierarchyConfig::paper_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkip_model::config::BaselineConfig;

    #[test]
    fn suite_mean_ipc_averages_over_benchmarks() {
        let benches = [Benchmark::Mesa, Benchmark::Crafty];
        let mean = suite_mean_ipc(&benches, &|b| {
            run_baseline(
                &BaselineConfig::r10_64(),
                &MemoryHierarchyConfig::l1_2(),
                b,
                3_000,
                1,
            )
        });
        assert!(mean > 0.0 && mean <= 4.0);
    }

    #[test]
    fn l2_sweep_matches_the_paper_range() {
        let sizes = figure11_l2_sizes_kb();
        assert_eq!(sizes.first(), Some(&64));
        assert_eq!(sizes.last(), Some(&4096));
        assert_eq!(sizes.len(), 7);
    }

    #[test]
    fn default_budget_is_reasonable() {
        assert!(InstrBudget::default().0 >= 10_000);
    }
}
