//! The sweep service: answering simulation queries from the result store.
//!
//! `dkip-sim serve` (see `crates/sim/src/bin/dkip_sim.rs`) listens on a
//! unix or TCP socket and answers sweep/figure queries, serving everything
//! it can from the content-addressed [`crate::store::ResultStore`] and
//! computing only the misses. This module is the transport-independent
//! core: a line-oriented request grammar, the preset name resolvers, and
//! [`SweepService::answer`], which maps one request line to one response.
//!
//! # Protocol
//!
//! Requests are a single line:
//!
//! * `ping` — liveness check,
//! * `suite <name> [budget=N]` — run a golden suite (`baseline`, `kilo`,
//!   `dkip`, `riscv`, `all`, see [`crate::suites::golden_suite_jobs`]),
//! * `job machine=<preset> mem=<preset> bench=<workload> budget=N`
//!   `[seed=N] [sample=P:U:W]` — run one simulation point. Machine presets
//!   are resolved by [`machine_preset`], memory presets by [`mem_preset`],
//!   workloads by [`crate::Workload::parse`].
//!
//! Responses are a status line, a body, then a lone `.` terminator line:
//!
//! ```text
//! ok jobs=<N> hits=<H> misses=<M>
//! <results_to_kv document>
//! .
//! ```
//!
//! or `err <message>` followed by `.`. The `hits=`/`misses=` counts are
//! per-request, so a client can assert "answered from cache" exactly —
//! `make cache-check` does.

use crate::runner::{results_to_kv, Job, Machine, SweepRunner};
use crate::suites::golden_suite_jobs;
use crate::workload::Workload;
use dkip_model::config::{
    BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig, SampleConfig,
};

/// Resolves a machine preset name: `R10-64`, `R10-256`, `R10-768`,
/// `UNBOUNDED`, `KILO-1024`, `D-KIP-2048` (the paper default) or
/// `D-KIP-<n>` for a D-KIP with an `n`-entry LLIB.
///
/// # Errors
///
/// Returns a human-readable message naming the unknown preset.
pub fn machine_preset(name: &str) -> Result<Machine, String> {
    match name {
        "R10-64" => Ok(Machine::Baseline(BaselineConfig::r10_64())),
        "R10-256" => Ok(Machine::Baseline(BaselineConfig::r10_256())),
        "R10-768" => Ok(Machine::Baseline(BaselineConfig::r10_768())),
        "UNBOUNDED" => Ok(Machine::Baseline(BaselineConfig::unbounded())),
        "KILO-1024" => Ok(Machine::Kilo(KiloConfig::kilo_1024())),
        "D-KIP-2048" => Ok(Machine::Dkip(DkipConfig::paper_default())),
        _ => {
            if let Some(n) = name.strip_prefix("D-KIP-") {
                let capacity = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&c| c > 0)
                    .ok_or_else(|| format!("invalid D-KIP LLIB capacity in {name:?}"))?;
                return Ok(Machine::Dkip(
                    DkipConfig::paper_default().with_llib_capacity(capacity),
                ));
            }
            Err(format!(
                "unknown machine preset {name:?}: expected R10-64, R10-256, R10-768, \
                 UNBOUNDED, KILO-1024 or D-KIP-<llib entries>"
            ))
        }
    }
}

/// Resolves a Table 1 memory preset name (`L1-2`, `L2-11`, `L2-21`,
/// `MEM-100`, `MEM-400`, `MEM-1000`).
///
/// # Errors
///
/// Returns a human-readable message naming the unknown preset.
pub fn mem_preset(name: &str) -> Result<MemoryHierarchyConfig, String> {
    MemoryHierarchyConfig::table1_presets()
        .into_iter()
        .find(|preset| preset.name == name)
        .ok_or_else(|| {
            format!("unknown memory preset {name:?}: expected a Table 1 row name (e.g. MEM-400)")
        })
}

/// One parsed request (see the module docs for the grammar).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// A golden-suite sweep with an optional budget override.
    Suite {
        /// Suite name for [`golden_suite_jobs`].
        name: String,
        /// Per-job budget override.
        budget: Option<u64>,
    },
    /// A single simulation point.
    Job(Box<Job>),
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for anything outside the grammar.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut words = line.split_whitespace();
        match words.next() {
            None => Err("empty request".to_owned()),
            Some("ping") => match words.next() {
                None => Ok(Request::Ping),
                Some(extra) => Err(format!("unexpected argument {extra:?} after ping")),
            },
            Some("suite") => {
                let name = words.next().ok_or("suite requires a name")?.to_owned();
                let mut budget = None;
                for word in words {
                    let value = word
                        .strip_prefix("budget=")
                        .ok_or_else(|| format!("unexpected suite argument {word:?}"))?;
                    let parsed = value
                        .parse::<u64>()
                        .ok()
                        .filter(|&b| b > 0)
                        .ok_or_else(|| format!("invalid budget {value:?}"))?;
                    if budget.replace(parsed).is_some() {
                        return Err("duplicate budget= argument".to_owned());
                    }
                }
                // Resolve eagerly so unknown suites fail at parse time.
                golden_suite_jobs(&name, None)?;
                Ok(Request::Suite { name, budget })
            }
            Some("job") => {
                let mut machine = None;
                let mut mem = None;
                let mut bench = None;
                let mut budget = None;
                let mut seed = None;
                let mut sample = None;
                for word in words {
                    let (key, value) = word
                        .split_once('=')
                        .ok_or_else(|| format!("malformed job argument {word:?}"))?;
                    let duplicate = || format!("duplicate job argument {key}=");
                    match key {
                        "machine" => {
                            if machine.replace(machine_preset(value)?).is_some() {
                                return Err(duplicate());
                            }
                        }
                        "mem" => {
                            if mem.replace(mem_preset(value)?).is_some() {
                                return Err(duplicate());
                            }
                        }
                        "bench" => {
                            if bench.replace(Workload::parse(value)?).is_some() {
                                return Err(duplicate());
                            }
                        }
                        "budget" => {
                            let parsed = value
                                .parse::<u64>()
                                .ok()
                                .filter(|&b| b > 0)
                                .ok_or_else(|| format!("invalid budget {value:?}"))?;
                            if budget.replace(parsed).is_some() {
                                return Err(duplicate());
                            }
                        }
                        "seed" => {
                            let parsed = value
                                .parse::<u64>()
                                .map_err(|_| format!("invalid seed {value:?}"))?;
                            if seed.replace(parsed).is_some() {
                                return Err(duplicate());
                            }
                        }
                        "sample" => {
                            let parsed = SampleConfig::parse(value).map_err(|e| e.to_string())?;
                            if sample.replace(parsed).is_some() {
                                return Err(duplicate());
                            }
                        }
                        _ => return Err(format!("unknown job argument {key}=")),
                    }
                }
                let machine = machine.ok_or("job requires machine=")?;
                let mem = mem.ok_or("job requires mem=")?;
                let bench = bench.ok_or("job requires bench=")?;
                let budget = budget.ok_or("job requires budget=")?;
                let mut job = Job::new("query", machine, mem, bench, budget)
                    .exact()
                    .unprobed();
                if let Some(seed) = seed {
                    job = job.with_seed(seed);
                }
                if let Some(sample) = sample {
                    job = job.with_sample(sample);
                }
                Ok(Request::Job(Box::new(job)))
            }
            Some(verb) => Err(format!(
                "unknown request {verb:?}: expected ping, suite or job"
            )),
        }
    }
}

/// One rendered response: a status line plus an optional body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The `ok …` / `err …` status line (no trailing newline).
    pub status: String,
    /// The response body (already newline-terminated when non-empty).
    pub body: String,
}

impl Response {
    /// Whether the status line reports success.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.status.starts_with("ok")
    }

    /// Renders the full wire form: status line, body, `.` terminator.
    #[must_use]
    pub fn render(&self) -> String {
        format!("{}\n{}.\n", self.status, self.body)
    }
}

/// The query-answering core shared by every `dkip-sim serve` connection.
#[derive(Debug, Clone)]
pub struct SweepService {
    runner: SweepRunner,
}

impl SweepService {
    /// Creates a service that runs queries through `runner` (whose attached
    /// store, if any, makes repeated queries near-free).
    #[must_use]
    pub fn new(runner: SweepRunner) -> Self {
        SweepService { runner }
    }

    /// Answers one request line (see the module docs for the protocol).
    /// Never panics on malformed input — errors become `err …` responses.
    #[must_use]
    pub fn answer(&self, line: &str) -> Response {
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(message) => {
                return Response {
                    status: format!("err {message}"),
                    body: String::new(),
                }
            }
        };
        let jobs = match request {
            Request::Ping => {
                return Response {
                    status: "ok pong".to_owned(),
                    body: String::new(),
                }
            }
            Request::Suite { name, budget } => {
                golden_suite_jobs(&name, budget).expect("suite name validated at parse time")
            }
            Request::Job(job) => vec![*job],
        };
        let report = self.runner.run_report(&jobs);
        Response {
            status: format!(
                "ok jobs={} hits={} misses={}",
                report.results.len(),
                report.hits,
                report.misses
            ),
            body: results_to_kv(&report.results),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ResultStore;

    fn scratch_store(tag: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("dkip-service-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::open(dir).unwrap()
    }

    #[test]
    fn presets_resolve_and_reject() {
        assert_eq!(machine_preset("R10-64").unwrap().name(), "R10-64");
        assert_eq!(machine_preset("KILO-1024").unwrap().name(), "KILO-1024");
        assert_eq!(machine_preset("D-KIP-2048").unwrap().name(), "D-KIP-2048");
        assert_eq!(machine_preset("D-KIP-512").unwrap().name(), "D-KIP-512");
        assert!(machine_preset("D-KIP-0").is_err());
        assert!(machine_preset("R10-99").is_err());
        assert_eq!(mem_preset("MEM-400").unwrap().name, "MEM-400");
        assert_eq!(mem_preset("L1-2").unwrap().name, "L1-2");
        assert!(mem_preset("MEM-9").is_err());
    }

    #[test]
    fn request_grammar_is_strict() {
        assert_eq!(Request::parse("ping"), Ok(Request::Ping));
        assert!(Request::parse("ping extra").is_err());
        assert!(Request::parse("").is_err());
        assert!(Request::parse("reboot").is_err());
        assert!(matches!(
            Request::parse("suite kilo budget=1000"),
            Ok(Request::Suite {
                budget: Some(1000),
                ..
            })
        ));
        assert!(Request::parse("suite bogus").is_err());
        assert!(Request::parse("suite kilo budget=0").is_err());
        assert!(Request::parse("suite kilo budget=1 budget=2").is_err());
        let job =
            Request::parse("job machine=R10-64 mem=MEM-400 bench=gcc budget=1000 seed=7").unwrap();
        match job {
            Request::Job(job) => {
                assert_eq!(job.seed, 7);
                assert_eq!(job.budget, 1_000);
                assert!(job.sample.is_none());
            }
            other => panic!("expected a job request, got {other:?}"),
        }
        assert!(Request::parse("job machine=R10-64 mem=MEM-400 bench=gcc").is_err());
        assert!(Request::parse("job machine=R10-64 machine=R10-64").is_err());
        assert!(Request::parse("job frobnicate=1").is_err());
    }

    #[test]
    fn repeated_suite_queries_are_answered_from_the_cache() {
        let service = SweepService::new(SweepRunner::new(2).with_store(scratch_store("repeat")));
        let cold = service.answer("suite kilo budget=1500");
        assert_eq!(cold.status, "ok jobs=3 hits=0 misses=3");
        let warm = service.answer("suite kilo budget=1500");
        assert_eq!(
            warm.status, "ok jobs=3 hits=3 misses=0",
            "the repeat must not re-simulate"
        );
        assert_eq!(warm.body, cold.body, "cached answers are byte-identical");
        assert!(warm.render().ends_with("\n.\n"));
    }

    #[test]
    fn job_queries_and_errors_render() {
        let service = SweepService::new(SweepRunner::serial().with_store(scratch_store("job")));
        let first = service.answer("job machine=D-KIP-2048 mem=MEM-400 bench=gcc budget=1500");
        assert_eq!(first.status, "ok jobs=1 hits=0 misses=1");
        assert!(first
            .body
            .contains("[dkip D-KIP-2048 mem=MEM-400 bench=gcc"));
        let again = service.answer("job machine=D-KIP-2048 mem=MEM-400 bench=gcc budget=1500");
        assert_eq!(again.status, "ok jobs=1 hits=1 misses=0");
        assert_eq!(again.body, first.body);
        let err = service.answer("job machine=WARP-9 mem=MEM-400 bench=gcc budget=10");
        assert!(!err.is_ok());
        assert!(err.status.starts_with("err "));
        assert!(err.body.is_empty());
        assert_eq!(service.answer("ping").status, "ok pong");
    }
}
