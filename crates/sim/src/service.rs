//! The sweep service: answering simulation queries from the result store.
//!
//! `dkip-sim serve` (see `crates/sim/src/bin/dkip_sim.rs`) listens on a
//! unix or TCP socket and answers sweep/figure queries, serving everything
//! it can from the content-addressed [`crate::store::ResultStore`] and
//! computing only the misses. This module is the transport-independent
//! core: a line-oriented request grammar, the preset name resolvers, and
//! [`SweepService::answer`], which maps one request line to one response.
//!
//! # Protocol
//!
//! Requests are a single line:
//!
//! * `ping` — liveness check,
//! * `status` — health endpoint: uptime and the per-process counters
//!   (requests, errors, panics caught, cache hits/misses),
//! * `suite <name> [budget=N]` — run a golden suite (`baseline`, `kilo`,
//!   `dkip`, `riscv`, `all`, see [`crate::suites::golden_suite_jobs`]),
//! * `job machine=<preset> mem=<preset> bench=<workload> budget=N`
//!   `[seed=N] [sample=P:U:W]` — run one simulation point. Machine presets
//!   are resolved by [`machine_preset`], memory presets by [`mem_preset`],
//!   workloads by [`crate::Workload::parse`].
//! * `shutdown` — transport-level verb, handled by [`run_server`] rather
//!   than the request core: replies `ok draining`, stops accepting new
//!   connections and drains in-flight ones (bounded by
//!   [`ServeOptions::drain`]).
//!
//! Responses are a status line, a body, then a lone `.` terminator line:
//!
//! ```text
//! ok jobs=<N> hits=<H> misses=<M>
//! <results_to_kv document>
//! .
//! ```
//!
//! or `err <message>` followed by `.`. The `hits=`/`misses=` counts are
//! per-request, so a client can assert "answered from cache" exactly —
//! `make cache-check` does.
//!
//! # Limits and failure isolation
//!
//! The server core ([`run_server`] / [`handle_connection`]) enforces:
//!
//! * **Request-line cap** — a request line longer than
//!   [`ServeOptions::max_line`] bytes ([`MAX_REQUEST_LINE`] by default) is
//!   answered with `err request too long (max N bytes)`; the oversized
//!   line is discarded and the connection stays usable. The line never
//!   accumulates in memory past the cap.
//! * **Per-request deadline** — a request that outlives
//!   [`ServeOptions::deadline`] is answered with `err timeout …`; the
//!   abandoned worker thread finishes (and populates the cache) in the
//!   background, it just no longer owns the connection's answer.
//! * **Panic isolation** — [`SweepService::answer_caught`] wraps each
//!   request in `catch_unwind`, so one poisoned query becomes an
//!   `err internal: request panicked: …` response (and a bumped `panics`
//!   counter) instead of a dead server. Job-level panics never even reach
//!   that: the runner records them and the service reports
//!   `err N of M jobs failed: …`.
//! * **Graceful drain** — after `shutdown`, accepting stops and in-flight
//!   connections get [`ServeOptions::drain`] to finish before the server
//!   returns; idle keep-alive connections are abandoned.
//!
//! The [`crate::chaos`] fault points `service.answer` (injected handler
//! panic) and `service.stall` (injected slow request) exercise the panic
//! and deadline paths under `make chaos-check`.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::chaos::{self, FaultPoint};
use crate::runner::{results_to_kv, Job, Machine, SweepRunner};
use crate::suites::golden_suite_jobs;
use crate::workload::Workload;
use dkip_model::config::{
    BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig, SampleConfig,
};

/// Resolves a machine preset name: `R10-64`, `R10-256`, `R10-768`,
/// `UNBOUNDED`, `KILO-1024`, `D-KIP-2048` (the paper default) or
/// `D-KIP-<n>` for a D-KIP with an `n`-entry LLIB.
///
/// # Errors
///
/// Returns a human-readable message naming the unknown preset.
pub fn machine_preset(name: &str) -> Result<Machine, String> {
    match name {
        "R10-64" => Ok(Machine::Baseline(BaselineConfig::r10_64())),
        "R10-256" => Ok(Machine::Baseline(BaselineConfig::r10_256())),
        "R10-768" => Ok(Machine::Baseline(BaselineConfig::r10_768())),
        "UNBOUNDED" => Ok(Machine::Baseline(BaselineConfig::unbounded())),
        "KILO-1024" => Ok(Machine::Kilo(KiloConfig::kilo_1024())),
        "D-KIP-2048" => Ok(Machine::Dkip(DkipConfig::paper_default())),
        _ => {
            if let Some(n) = name.strip_prefix("D-KIP-") {
                let capacity = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&c| c > 0)
                    .ok_or_else(|| format!("invalid D-KIP LLIB capacity in {name:?}"))?;
                return Ok(Machine::Dkip(
                    DkipConfig::paper_default().with_llib_capacity(capacity),
                ));
            }
            Err(format!(
                "unknown machine preset {name:?}: expected R10-64, R10-256, R10-768, \
                 UNBOUNDED, KILO-1024 or D-KIP-<llib entries>"
            ))
        }
    }
}

/// Resolves a Table 1 memory preset name (`L1-2`, `L2-11`, `L2-21`,
/// `MEM-100`, `MEM-400`, `MEM-1000`).
///
/// # Errors
///
/// Returns a human-readable message naming the unknown preset.
pub fn mem_preset(name: &str) -> Result<MemoryHierarchyConfig, String> {
    MemoryHierarchyConfig::table1_presets()
        .into_iter()
        .find(|preset| preset.name == name)
        .ok_or_else(|| {
            format!("unknown memory preset {name:?}: expected a Table 1 row name (e.g. MEM-400)")
        })
}

/// One parsed request (see the module docs for the grammar).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Health endpoint: uptime and per-process counters.
    Status,
    /// A golden-suite sweep with an optional budget override.
    Suite {
        /// Suite name for [`golden_suite_jobs`].
        name: String,
        /// Per-job budget override.
        budget: Option<u64>,
    },
    /// A single simulation point.
    Job(Box<Job>),
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for anything outside the grammar.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut words = line.split_whitespace();
        match words.next() {
            None => Err("empty request".to_owned()),
            Some("ping") => match words.next() {
                None => Ok(Request::Ping),
                Some(extra) => Err(format!("unexpected argument {extra:?} after ping")),
            },
            Some("status") => match words.next() {
                None => Ok(Request::Status),
                Some(extra) => Err(format!("unexpected argument {extra:?} after status")),
            },
            Some("suite") => {
                let name = words.next().ok_or("suite requires a name")?.to_owned();
                let mut budget = None;
                for word in words {
                    let value = word
                        .strip_prefix("budget=")
                        .ok_or_else(|| format!("unexpected suite argument {word:?}"))?;
                    let parsed = value
                        .parse::<u64>()
                        .ok()
                        .filter(|&b| b > 0)
                        .ok_or_else(|| format!("invalid budget {value:?}"))?;
                    if budget.replace(parsed).is_some() {
                        return Err("duplicate budget= argument".to_owned());
                    }
                }
                // Resolve eagerly so unknown suites fail at parse time.
                golden_suite_jobs(&name, None)?;
                Ok(Request::Suite { name, budget })
            }
            Some("job") => {
                let mut machine = None;
                let mut mem = None;
                let mut bench = None;
                let mut budget = None;
                let mut seed = None;
                let mut sample = None;
                for word in words {
                    let (key, value) = word
                        .split_once('=')
                        .ok_or_else(|| format!("malformed job argument {word:?}"))?;
                    let duplicate = || format!("duplicate job argument {key}=");
                    match key {
                        "machine" => {
                            if machine.replace(machine_preset(value)?).is_some() {
                                return Err(duplicate());
                            }
                        }
                        "mem" => {
                            if mem.replace(mem_preset(value)?).is_some() {
                                return Err(duplicate());
                            }
                        }
                        "bench" => {
                            if bench.replace(Workload::parse(value)?).is_some() {
                                return Err(duplicate());
                            }
                        }
                        "budget" => {
                            let parsed = value
                                .parse::<u64>()
                                .ok()
                                .filter(|&b| b > 0)
                                .ok_or_else(|| format!("invalid budget {value:?}"))?;
                            if budget.replace(parsed).is_some() {
                                return Err(duplicate());
                            }
                        }
                        "seed" => {
                            let parsed = value
                                .parse::<u64>()
                                .map_err(|_| format!("invalid seed {value:?}"))?;
                            if seed.replace(parsed).is_some() {
                                return Err(duplicate());
                            }
                        }
                        "sample" => {
                            let parsed = SampleConfig::parse(value).map_err(|e| e.to_string())?;
                            if sample.replace(parsed).is_some() {
                                return Err(duplicate());
                            }
                        }
                        _ => return Err(format!("unknown job argument {key}=")),
                    }
                }
                let machine = machine.ok_or("job requires machine=")?;
                let mem = mem.ok_or("job requires mem=")?;
                let bench = bench.ok_or("job requires bench=")?;
                let budget = budget.ok_or("job requires budget=")?;
                let mut job = Job::new("query", machine, mem, bench, budget)
                    .exact()
                    .unprobed();
                if let Some(seed) = seed {
                    job = job.with_seed(seed);
                }
                if let Some(sample) = sample {
                    job = job.with_sample(sample);
                }
                Ok(Request::Job(Box::new(job)))
            }
            Some(verb) => Err(format!(
                "unknown request {verb:?}: expected ping, status, suite or job"
            )),
        }
    }
}

/// One rendered response: a status line plus an optional body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The `ok …` / `err …` status line (no trailing newline).
    pub status: String,
    /// The response body (already newline-terminated when non-empty).
    pub body: String,
}

impl Response {
    /// Whether the status line reports success.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.status.starts_with("ok")
    }

    /// Renders the full wire form: status line, body, `.` terminator.
    #[must_use]
    pub fn render(&self) -> String {
        format!("{}\n{}.\n", self.status, self.body)
    }
}

/// Uptime counters behind the `status` verb, shared by every clone of one
/// [`SweepService`] (and therefore by every connection of one server).
#[derive(Debug)]
struct ServiceCounters {
    start: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
}

/// The query-answering core shared by every `dkip-sim serve` connection.
///
/// Cloning is cheap and shares the uptime counters, so per-connection
/// clones still report per-process totals through the `status` verb.
#[derive(Debug, Clone)]
pub struct SweepService {
    runner: SweepRunner,
    counters: Arc<ServiceCounters>,
}

impl SweepService {
    /// Creates a service that runs queries through `runner` (whose attached
    /// store, if any, makes repeated queries near-free).
    #[must_use]
    pub fn new(runner: SweepRunner) -> Self {
        SweepService {
            runner,
            counters: Arc::new(ServiceCounters {
                start: Instant::now(),
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                panics: AtomicU64::new(0),
            }),
        }
    }

    /// Requests answered (ok or err) since the service was created.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.counters.requests.load(Ordering::Relaxed)
    }

    /// `err …` responses issued since the service was created (including
    /// timeouts and caught panics).
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.counters.errors.load(Ordering::Relaxed)
    }

    /// Request panics caught by [`SweepService::answer_caught`].
    #[must_use]
    pub fn panics_caught(&self) -> u64 {
        self.counters.panics.load(Ordering::Relaxed)
    }

    /// Answers one request line (see the module docs for the protocol).
    /// Never panics on malformed input — errors become `err …` responses.
    /// (A *bug* — or the `service.answer` chaos fault — can still panic;
    /// server transports go through [`SweepService::answer_caught`].)
    #[must_use]
    pub fn answer(&self, line: &str) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        if chaos::should_fire(FaultPoint::ServiceStall) {
            // An injected slow request, for exercising the per-request
            // deadline: long enough to blow a test's short deadline,
            // short enough not to stall a default-configured server.
            std::thread::sleep(Duration::from_millis(250));
        }
        if chaos::should_fire(FaultPoint::ServiceAnswer) {
            panic!("{}: injected service.answer fault", chaos::CHAOS_TAG);
        }
        let response = self.answer_request(line);
        if !response.is_ok() {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        response
    }

    /// [`SweepService::answer`] wrapped in `catch_unwind`: a panicking
    /// request becomes an `err internal: request panicked: …` response
    /// and a bumped `panics` counter instead of a dead connection thread.
    #[must_use]
    pub fn answer_caught(&self, line: &str) -> Response {
        match catch_unwind(AssertUnwindSafe(|| self.answer(line))) {
            Ok(response) => response,
            Err(payload) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                let message = chaos::panic_message(payload.as_ref()).replace('\n', "; ");
                Response {
                    status: format!("err internal: request panicked: {message}"),
                    body: String::new(),
                }
            }
        }
    }

    /// The un-instrumented request dispatch behind [`SweepService::answer`].
    fn answer_request(&self, line: &str) -> Response {
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(message) => {
                return Response {
                    status: format!("err {message}"),
                    body: String::new(),
                }
            }
        };
        let jobs = match request {
            Request::Ping => {
                return Response {
                    status: "ok pong".to_owned(),
                    body: String::new(),
                }
            }
            Request::Status => return self.status_response(),
            Request::Suite { name, budget } => {
                golden_suite_jobs(&name, budget).expect("suite name validated at parse time")
            }
            Request::Job(job) => vec![*job],
        };
        let report = self.runner.run_report(&jobs);
        if !report.failures.is_empty() {
            // Job panics and recoverable job errors were already isolated
            // by the runner; report them without pretending partial
            // results are the answer.
            let first = report.failures[0].render().replace('\n', "; ");
            return Response {
                status: format!(
                    "err {} of {} jobs failed: {first}",
                    report.failures.len(),
                    jobs.len()
                ),
                body: String::new(),
            };
        }
        Response {
            status: format!(
                "ok jobs={} hits={} misses={}",
                report.results.len(),
                report.hits,
                report.misses
            ),
            body: results_to_kv(&report.results),
        }
    }

    /// Renders the `status` health response. The request counter includes
    /// the `status` request itself.
    fn status_response(&self) -> Response {
        let (cache_hits, cache_misses) = self
            .runner
            .store()
            .map_or((0, 0), |store| (store.hits(), store.misses()));
        Response {
            status: format!(
                "ok uptime_ms={} requests={} errors={} panics={} \
                 cache_hits={cache_hits} cache_misses={cache_misses}",
                self.counters.start.elapsed().as_millis(),
                self.requests(),
                self.errors(),
                self.panics_caught(),
            ),
            body: String::new(),
        }
    }
}

/// Default cap on one request line, in bytes excluding the newline
/// (see [`ServeOptions::max_line`]). Generous next to the longest legal
/// request (~a hundred bytes), tiny next to the unbounded `read_line`
/// it replaces.
pub const MAX_REQUEST_LINE: usize = 8192;

/// Server tuning knobs for [`run_server`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Longest accepted request line in bytes (newline excluded); longer
    /// lines are answered `err request too long …` and discarded.
    pub max_line: usize,
    /// Per-request wall-clock deadline: a slower answer is replaced by
    /// `err timeout …` and the worker is abandoned to finish in the
    /// background. `None` disables the deadline (and the per-request
    /// worker thread it requires).
    pub deadline: Option<Duration>,
    /// How long `shutdown` waits for in-flight connections before the
    /// server returns anyway.
    pub drain: Duration,
}

impl Default for ServeOptions {
    /// 8 KiB lines, a 10-minute request deadline (a paper-scale suite at
    /// CI budgets answers in seconds; ten minutes only reaps the
    /// genuinely wedged), a 5-second drain.
    fn default() -> Self {
        ServeOptions {
            max_line: MAX_REQUEST_LINE,
            deadline: Some(Duration::from_secs(600)),
            drain: Duration::from_secs(5),
        }
    }
}

/// A non-blocking connection acceptor: the transport half of
/// [`run_server`], implemented for [`TcpListener`] and [`UnixListener`].
pub trait Acceptor {
    /// One accepted connection.
    type Conn: Read + Write + Send + 'static;

    /// Switches the listener between blocking and polling mode.
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;

    /// Accepts one pending connection; `Ok(None)` when none is waiting
    /// (the listener is non-blocking).
    ///
    /// # Errors
    ///
    /// Returns accept errors other than `WouldBlock`.
    fn try_accept(&self) -> io::Result<Option<Self::Conn>>;
}

impl Acceptor for TcpListener {
    type Conn = TcpStream;

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        TcpListener::set_nonblocking(self, nonblocking)
    }

    fn try_accept(&self) -> io::Result<Option<TcpStream>> {
        match self.accept() {
            Ok((stream, _peer)) => Ok(Some(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl Acceptor for UnixListener {
    type Conn = UnixStream;

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        UnixListener::set_nonblocking(self, nonblocking)
    }

    fn try_accept(&self) -> io::Result<Option<UnixStream>> {
        match self.accept() {
            Ok((stream, _peer)) => Ok(Some(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Decrements the active-connection count when a handler thread exits,
/// however it exits.
struct ActiveGuard(Arc<AtomicUsize>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Accepts connections until a client sends `shutdown`, then drains.
///
/// One detached handler thread per connection (so drain can time out on
/// idle keep-alive peers instead of joining them forever); each handler
/// answers through [`SweepService::answer_caught`] under the limits in
/// `opts`. Accept errors are logged and the loop continues — a transient
/// `EMFILE` must not kill a server holding a warm cache.
///
/// # Errors
///
/// Returns the socket error when the listener cannot be switched to
/// non-blocking mode — before any request is served.
pub fn run_server<A: Acceptor>(
    listener: &A,
    service: SweepService,
    opts: &ServeOptions,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let service = Arc::new(service);
    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    while !shutdown.load(Ordering::Acquire) {
        match listener.try_accept() {
            Ok(Some(conn)) => {
                active.fetch_add(1, Ordering::AcqRel);
                let guard = ActiveGuard(Arc::clone(&active));
                let service = Arc::clone(&service);
                let shutdown = Arc::clone(&shutdown);
                let opts = opts.clone();
                std::thread::spawn(move || {
                    let _guard = guard;
                    handle_connection(conn, &service, &opts, &shutdown);
                });
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => {
                eprintln!("# dkip-sim serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    let drain_until = Instant::now() + opts.drain;
    while active.load(Ordering::Acquire) > 0 && Instant::now() < drain_until {
        std::thread::sleep(Duration::from_millis(10));
    }
    let abandoned = active.load(Ordering::Acquire);
    if abandoned > 0 {
        eprintln!("# dkip-sim serve: drain timed out, abandoning {abandoned} connection(s)");
    }
    Ok(())
}

/// One `read_request_line` outcome.
enum LineOutcome {
    /// A complete request line (terminator stripped).
    Line(String),
    /// The line exceeded the cap; the remainder was discarded and the
    /// connection is resynchronised on the next line.
    TooLong,
    /// Peer closed the connection (including mid-line) or the read
    /// failed: drop the connection.
    Closed,
}

/// Reads one newline-terminated request line without ever buffering more
/// than `max` bytes of it.
fn read_request_line<R: BufRead>(reader: &mut R, max: usize) -> LineOutcome {
    let mut line = String::new();
    match reader.take(max as u64 + 1).read_line(&mut line) {
        Err(_) | Ok(0) => LineOutcome::Closed,
        Ok(n) => {
            if line.ends_with('\n') {
                LineOutcome::Line(line.trim_end_matches(['\r', '\n']).to_owned())
            } else if n > max {
                // Over the cap with no newline in sight: flush the rest of
                // the oversized line so the next request parses cleanly.
                if discard_to_newline(reader) {
                    LineOutcome::TooLong
                } else {
                    LineOutcome::Closed
                }
            } else {
                // EOF mid-line: the peer disconnected mid-request.
                LineOutcome::Closed
            }
        }
    }
}

/// Consumes input up to and including the next newline; `false` on EOF or
/// error (nothing left to resynchronise on).
fn discard_to_newline<R: BufRead>(reader: &mut R) -> bool {
    loop {
        let (consumed, done) = match reader.fill_buf() {
            Err(_) => return false,
            Ok([]) => return false,
            Ok(buf) => match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => (pos + 1, true),
                None => (buf.len(), false),
            },
        };
        reader.consume(consumed);
        if done {
            return true;
        }
    }
}

/// Answers request lines until the peer closes the connection or sends
/// `shutdown`. I/O errors drop the connection; they never take the server
/// down. See the module docs for the limits enforced here.
pub fn handle_connection<C: Read + Write>(
    conn: C,
    service: &SweepService,
    opts: &ServeOptions,
    shutdown: &AtomicBool,
) {
    let mut reader = BufReader::new(conn);
    loop {
        let response = match read_request_line(&mut reader, opts.max_line) {
            LineOutcome::Closed => return,
            LineOutcome::TooLong => Response {
                status: format!("err request too long (max {} bytes)", opts.max_line),
                body: String::new(),
            },
            LineOutcome::Line(line) if line.is_empty() => continue,
            LineOutcome::Line(line) if line == "shutdown" => {
                shutdown.store(true, Ordering::Release);
                let reply = Response {
                    status: "ok draining".to_owned(),
                    body: String::new(),
                };
                let _ = reader
                    .get_mut()
                    .write_all(reply.render().as_bytes())
                    .and_then(|()| reader.get_mut().flush());
                return;
            }
            LineOutcome::Line(line) => answer_with_deadline(service, &line, opts.deadline),
        };
        if reader
            .get_mut()
            .write_all(response.render().as_bytes())
            .and_then(|()| reader.get_mut().flush())
            .is_err()
        {
            return;
        }
    }
}

/// Runs one request under the optional deadline: on time-out the worker
/// thread is abandoned (it finishes — and warms the cache — in the
/// background) and the connection gets `err timeout …` instead.
fn answer_with_deadline(
    service: &SweepService,
    line: &str,
    deadline: Option<Duration>,
) -> Response {
    let Some(deadline) = deadline else {
        return service.answer_caught(line);
    };
    let (send, recv) = mpsc::channel();
    let worker_service = service.clone();
    let request = line.to_owned();
    std::thread::spawn(move || {
        let _ = send.send(worker_service.answer_caught(&request));
    });
    match recv.recv_timeout(deadline) {
        Ok(response) => response,
        Err(_) => {
            service.counters.errors.fetch_add(1, Ordering::Relaxed);
            Response {
                status: format!(
                    "err timeout: request exceeded {} ms (abandoned)",
                    deadline.as_millis()
                ),
                body: String::new(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ResultStore;

    fn scratch_store(tag: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("dkip-service-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::open(dir).unwrap()
    }

    #[test]
    fn presets_resolve_and_reject() {
        assert_eq!(machine_preset("R10-64").unwrap().name(), "R10-64");
        assert_eq!(machine_preset("KILO-1024").unwrap().name(), "KILO-1024");
        assert_eq!(machine_preset("D-KIP-2048").unwrap().name(), "D-KIP-2048");
        assert_eq!(machine_preset("D-KIP-512").unwrap().name(), "D-KIP-512");
        assert!(machine_preset("D-KIP-0").is_err());
        assert!(machine_preset("R10-99").is_err());
        assert_eq!(mem_preset("MEM-400").unwrap().name, "MEM-400");
        assert_eq!(mem_preset("L1-2").unwrap().name, "L1-2");
        assert!(mem_preset("MEM-9").is_err());
    }

    #[test]
    fn request_grammar_is_strict() {
        assert_eq!(Request::parse("ping"), Ok(Request::Ping));
        assert!(Request::parse("ping extra").is_err());
        assert!(Request::parse("").is_err());
        assert!(Request::parse("reboot").is_err());
        assert!(matches!(
            Request::parse("suite kilo budget=1000"),
            Ok(Request::Suite {
                budget: Some(1000),
                ..
            })
        ));
        assert!(Request::parse("suite bogus").is_err());
        assert!(Request::parse("suite kilo budget=0").is_err());
        assert!(Request::parse("suite kilo budget=1 budget=2").is_err());
        let job =
            Request::parse("job machine=R10-64 mem=MEM-400 bench=gcc budget=1000 seed=7").unwrap();
        match job {
            Request::Job(job) => {
                assert_eq!(job.seed, 7);
                assert_eq!(job.budget, 1_000);
                assert!(job.sample.is_none());
            }
            other => panic!("expected a job request, got {other:?}"),
        }
        assert!(Request::parse("job machine=R10-64 mem=MEM-400 bench=gcc").is_err());
        assert!(Request::parse("job machine=R10-64 machine=R10-64").is_err());
        assert!(Request::parse("job frobnicate=1").is_err());
    }

    #[test]
    fn repeated_suite_queries_are_answered_from_the_cache() {
        let service = SweepService::new(SweepRunner::new(2).with_store(scratch_store("repeat")));
        let cold = service.answer("suite kilo budget=1500");
        assert_eq!(cold.status, "ok jobs=3 hits=0 misses=3");
        let warm = service.answer("suite kilo budget=1500");
        assert_eq!(
            warm.status, "ok jobs=3 hits=3 misses=0",
            "the repeat must not re-simulate"
        );
        assert_eq!(warm.body, cold.body, "cached answers are byte-identical");
        assert!(warm.render().ends_with("\n.\n"));
    }

    #[test]
    fn job_queries_and_errors_render() {
        let service = SweepService::new(SweepRunner::serial().with_store(scratch_store("job")));
        let first = service.answer("job machine=D-KIP-2048 mem=MEM-400 bench=gcc budget=1500");
        assert_eq!(first.status, "ok jobs=1 hits=0 misses=1");
        assert!(first
            .body
            .contains("[dkip D-KIP-2048 mem=MEM-400 bench=gcc"));
        let again = service.answer("job machine=D-KIP-2048 mem=MEM-400 bench=gcc budget=1500");
        assert_eq!(again.status, "ok jobs=1 hits=1 misses=0");
        assert_eq!(again.body, first.body);
        let err = service.answer("job machine=WARP-9 mem=MEM-400 bench=gcc budget=10");
        assert!(!err.is_ok());
        assert!(err.status.starts_with("err "));
        assert!(err.body.is_empty());
        assert_eq!(service.answer("ping").status, "ok pong");
    }

    #[test]
    fn status_reports_the_shared_counters() {
        let service = SweepService::new(SweepRunner::serial());
        assert_eq!(service.answer("ping").status, "ok pong");
        assert!(!service.answer("reboot").is_ok());
        // Per-connection clones share the counters, like server threads do.
        let status = service.clone().answer("status");
        assert!(status.is_ok(), "status: {}", status.status);
        for field in [
            "requests=3",
            "errors=1",
            "panics=0",
            "cache_hits=0",
            "cache_misses=0",
        ] {
            assert!(
                status.status.contains(field),
                "missing {field} in {}",
                status.status
            );
        }
        assert!(status.status.contains("uptime_ms="));
        assert!(status.body.is_empty());
        assert!(Request::parse("status extra").is_err());
    }

    #[test]
    fn request_lines_are_capped_and_the_stream_resyncs() {
        let mut input = std::io::Cursor::new(format!("{}\nping\n", "x".repeat(100)).into_bytes());
        assert!(matches!(
            read_request_line(&mut input, 16),
            LineOutcome::TooLong
        ));
        match read_request_line(&mut input, 16) {
            LineOutcome::Line(line) => assert_eq!(line, "ping"),
            _ => panic!("the connection must resync on the next line"),
        }
        assert!(matches!(
            read_request_line(&mut input, 16),
            LineOutcome::Closed
        ));
        // A line of exactly max bytes passes; EOF mid-line is a disconnect.
        let mut exact = std::io::Cursor::new(b"ping\npar".to_vec());
        assert!(matches!(
            read_request_line(&mut exact, 4),
            LineOutcome::Line(line) if line == "ping"
        ));
        assert!(matches!(
            read_request_line(&mut exact, 4),
            LineOutcome::Closed
        ));
    }
}
