//! Plain-text rendering of experiment results.

use std::fmt::Write as _;

/// One labelled series of (x, y) points — a line of one of the paper's
/// figures.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label ("MEM-400", "R10-256", "MP INO", …).
    pub label: String,
    /// Points as (x label, value).
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }

    /// The y value for a given x label, if present.
    #[must_use]
    pub fn value_at(&self, x: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|(label, _)| label == x)
            .map(|(_, v)| *v)
    }
}

/// A complete figure: a title, the x-axis labels and one or more series.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure title (e.g. "Figure 9: IPC comparison").
    pub title: String,
    /// Name of the x axis.
    pub x_label: String,
    /// Name of the y axis.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Renders the figure as an aligned text table (x labels as rows,
    /// series as columns) suitable for the terminal and for
    /// `EXPERIMENTS.md`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "# y = {}", self.y_label);
        let x_labels: Vec<&str> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| x.as_str()).collect())
            .unwrap_or_default();
        let _ = write!(out, "{:>14}", self.x_label);
        for series in &self.series {
            let _ = write!(out, "{:>14}", series.label);
        }
        let _ = writeln!(out);
        for x in x_labels {
            let _ = write!(out, "{x:>14}");
            for series in &self.series {
                match series.value_at(x) {
                    Some(v) => {
                        let _ = write!(out, "{v:>14.3}");
                    }
                    None => {
                        let _ = write!(out, "{:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup_by_label() {
        let mut s = Series::new("MEM-400");
        s.push("32", 1.0);
        s.push("64", 1.5);
        assert_eq!(s.value_at("64"), Some(1.5));
        assert_eq!(s.value_at("128"), None);
    }

    #[test]
    fn figure_renders_aligned_rows() {
        let mut fig = Figure::new("Figure X", "window", "IPC");
        let mut a = Series::new("A");
        a.push("32", 1.0);
        a.push("64", 2.0);
        let mut b = Series::new("B");
        b.push("32", 0.5);
        b.push("64", 0.75);
        fig.series = vec![a, b];
        let text = fig.render();
        assert!(text.contains("Figure X"));
        assert!(text.contains("window"));
        assert!(text.lines().count() >= 5);
        assert!(text.contains("2.000"));
        assert!(text.contains("0.750"));
    }

    #[test]
    fn missing_points_render_as_dashes() {
        let mut fig = Figure::new("F", "x", "y");
        let mut a = Series::new("A");
        a.push("1", 1.0);
        let b = Series::new("B");
        fig.series = vec![a, b];
        assert!(fig.render().contains('-'));
    }
}
