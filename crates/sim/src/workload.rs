//! The workload abstraction: what a simulation job actually runs.
//!
//! Historically every job named a synthetic SPEC-like [`Benchmark`] from
//! `dkip-trace`. Since the `dkip-riscv` frontend landed, a job can instead
//! run a real RV64IM kernel ([`KernelRun`]) execution-driven. Both sources
//! satisfy the same `Iterator<Item = MicroOp>` contract, so
//! [`Workload::stream`] is the single point every core family consumes a
//! workload through (see [`crate::runner::Machine::simulate`]).
//!
//! `From` conversions keep call sites terse: anywhere a [`crate::Job`] is
//! built, a bare `Benchmark`, [`Kernel`] or [`KernelRun`] coerces into a
//! `Workload`.

use dkip_model::MicroOp;
use dkip_riscv::{Kernel, KernelRun, RiscvStream};
use dkip_trace::{Benchmark, TraceGenerator};

/// A simulation workload: a synthetic statistical benchmark or an
/// execution-driven RISC-V kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// A synthetic SPEC CPU2000-like workload from `dkip-trace`.
    Spec(Benchmark),
    /// An RV64IM kernel executed by the `dkip-riscv` emulator.
    Riscv(KernelRun),
}

impl Workload {
    /// The stable display name used in labels and golden-snapshot headers:
    /// the SPEC name (`gcc`, `swim`, …) or `riscv:<kernel>/<size>`.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Workload::Spec(benchmark) => benchmark.name().to_owned(),
            Workload::Riscv(run) => format!("riscv:{}", run.name()),
        }
    }

    /// Whether the workload is a finite execution-driven stream (it ends on
    /// its own) rather than an endless synthetic generator.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        matches!(self, Workload::Riscv(_))
    }

    /// Parses a display name back into a workload — the inverse of
    /// [`Workload::name`]: a SPEC name (`gcc`), `riscv:<kernel>` (the
    /// kernel's default size) or `riscv:<kernel>/<size>`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the unknown benchmark,
    /// kernel or malformed size.
    pub fn parse(name: &str) -> Result<Workload, String> {
        if let Some(spec) = name.strip_prefix("riscv:") {
            let (kernel_name, size) = match spec.split_once('/') {
                None => (spec, None),
                Some((kernel_name, size)) => {
                    let parsed = size
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid kernel size {size:?} in {name:?}"))?;
                    (kernel_name, Some(parsed))
                }
            };
            let kernel = Kernel::ALL
                .into_iter()
                .find(|k| k.name() == kernel_name)
                .ok_or_else(|| {
                    format!(
                        "unknown kernel {kernel_name:?}: expected one of {}",
                        Kernel::ALL.map(Kernel::name).join(", ")
                    )
                })?;
            Ok(Workload::Riscv(match size {
                None => kernel.default_run(),
                Some(size) => KernelRun::new(kernel, size),
            }))
        } else {
            Benchmark::all()
                .into_iter()
                .find(|b| b.name() == name)
                .map(Workload::Spec)
                .ok_or_else(|| {
                    format!("unknown workload {name:?}: expected a SPEC name or riscv:<kernel>[/<size>]")
                })
        }
    }

    /// Opens the dynamic correct-path [`MicroOp`] stream.
    ///
    /// The `seed` steers the synthetic trace generators; execution-driven
    /// RISC-V kernels are architecturally deterministic and ignore it.
    #[must_use]
    pub fn stream(&self, seed: u64) -> WorkloadStream {
        match self {
            Workload::Spec(benchmark) => {
                WorkloadStream::Spec(TraceGenerator::new(*benchmark, seed))
            }
            Workload::Riscv(run) => WorkloadStream::Riscv(RiscvStream::new(run)),
        }
    }
}

impl From<Benchmark> for Workload {
    fn from(benchmark: Benchmark) -> Self {
        Workload::Spec(benchmark)
    }
}

impl From<KernelRun> for Workload {
    fn from(run: KernelRun) -> Self {
        Workload::Riscv(run)
    }
}

impl From<Kernel> for Workload {
    fn from(kernel: Kernel) -> Self {
        Workload::Riscv(kernel.default_run())
    }
}

/// An open [`MicroOp`] stream for one workload (see [`Workload::stream`]).
///
/// The stream is `Clone`: pairing a core checkpoint
/// ([`dkip_ooo::CoreSnapshot`] / [`dkip_core::DkipSnapshot`]) with a clone
/// of the stream it was consuming checkpoints the complete simulation
/// state, since a core snapshot deliberately excludes its input iterator.
#[derive(Debug, Clone)]
pub enum WorkloadStream {
    /// Stream from a synthetic trace generator (endless).
    Spec(TraceGenerator),
    /// Stream from the RISC-V emulator (ends when the kernel halts).
    Riscv(RiscvStream),
}

impl WorkloadStream {
    /// Functionally fast-forwards up to `n` instructions without building
    /// micro-ops, returning how many were actually skipped (fewer only when
    /// a finite RISC-V kernel halts first).
    ///
    /// Both sources keep their position bit-identical to consuming the ops
    /// through [`Iterator::next`] — the emulator executes the skipped
    /// instructions architecturally, the synthetic generator advances its
    /// template walk and RNG — so the ops emitted after the gap (sequence
    /// numbers included) match an uninterrupted stream. This is the cheap
    /// inter-window path of the sampled-simulation mode.
    pub fn fast_forward(&mut self, n: u64) -> u64 {
        match self {
            WorkloadStream::Spec(generator) => generator.fast_forward(n),
            WorkloadStream::Riscv(stream) => stream.fast_forward(n),
        }
    }
}

impl Iterator for WorkloadStream {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        match self {
            WorkloadStream::Spec(generator) => generator.next(),
            WorkloadStream::Riscv(stream) => stream.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_distinguish_the_sources() {
        assert_eq!(Workload::from(Benchmark::Gcc).name(), "gcc");
        assert_eq!(Workload::from(Kernel::Matmul).name(), "riscv:matmul/8");
        assert_eq!(
            Workload::from(KernelRun::new(Kernel::Sieve, 64)).name(),
            "riscv:sieve/64"
        );
    }

    #[test]
    fn parse_inverts_name() {
        for workload in [
            Workload::from(Benchmark::Gcc),
            Workload::from(Kernel::Matmul),
            Workload::from(KernelRun::new(Kernel::Sieve, 64)),
        ] {
            assert_eq!(Workload::parse(&workload.name()), Ok(workload));
        }
        assert_eq!(
            Workload::parse("riscv:matmul"),
            Ok(Workload::from(Kernel::Matmul)),
            "a bare kernel name takes its default size"
        );
        assert!(Workload::parse("gccc").unwrap_err().contains("gccc"));
        assert!(Workload::parse("riscv:qsort")
            .unwrap_err()
            .contains("qsort"));
        assert!(Workload::parse("riscv:matmul/0").is_err());
        assert!(Workload::parse("riscv:matmul/big").is_err());
    }

    #[test]
    fn spec_streams_honour_the_seed() {
        let a: Vec<_> = Workload::from(Benchmark::Mcf).stream(1).take(200).collect();
        let b: Vec<_> = Workload::from(Benchmark::Mcf).stream(1).take(200).collect();
        let c: Vec<_> = Workload::from(Benchmark::Mcf).stream(2).take(200).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn riscv_streams_are_finite_and_seed_independent() {
        let workload = Workload::from(Kernel::FibRec);
        assert!(workload.is_finite());
        assert!(!Workload::from(Benchmark::Gcc).is_finite());
        let a: Vec<_> = workload.stream(1).collect();
        let b: Vec<_> = workload.stream(99).collect();
        assert_eq!(a, b, "kernel execution ignores the seed");
        assert!(a.len() > 1_000);
    }
}
