//! Differential fuzzing: random RV64IM programs × three core families ×
//! emulator oracle.
//!
//! The correctness story of every frontend change is one invariant: for any
//! valid terminating program, the functional emulator (the oracle) and all
//! three core families — baseline, KILO and D-KIP, each consuming the
//! program through [`dkip_riscv::RiscvStream`] — must commit the **same
//! architectural state**: final register file, final (touched) memory and
//! dynamic instruction count. This module provides the checked form of that
//! invariant plus the shrinking-lite machinery the fuzz harness
//! (`tests/fuzz_differential.rs`) uses to minimise a failure into a
//! corpus-style reproduction (`tests/corpus/*.asm`).
//!
//! [`check_source`] is the single entry point: it assembles a program,
//! runs the oracle, replays the program through every family via
//! [`Machine::simulate_stream`] (the same dispatch the `Workload::Riscv`
//! sweep path uses), and compares state. It also re-runs D-KIP and the
//! baseline under a perfect L2 and asserts the D-KIP degenerates to its
//! Cache Processor (the `tests/differential.rs` envelope): nothing may be
//! extracted to the LLIB and — for programs long enough for IPC to be
//! meaningful — the IPC ratio must stay inside a fixed band.
//!
//! Because all four executions share one `Emulator` implementation, the
//! register/memory comparison primarily proves the *cores drain finite
//! streams exactly*: a core that stalls, drops micro-ops, or stops early
//! leaves its stream's emulator short of `ecall` and the comparison fails
//! (`Mismatch::Incomplete` / `Mismatch::Committed`). The dynamic
//! instruction count cross-checks each family's `committed` statistic
//! against the oracle's retired count.

use std::fmt;

use crate::runner::Machine;
use crate::sampled::{run_sampled, SampledRun};
use crate::workload::WorkloadStream;
use dkip_model::config::{BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig};
use dkip_model::{SampleConfig, SimStats, Telemetry};
use dkip_riscv::{assemble, Emulator, GenConfig, Program, RiscvStream, CODE_BASE};

/// Budget slack granted on top of the oracle's dynamic instruction count,
/// so a correct core always drains the stream instead of stopping at the
/// budget boundary.
const BUDGET_SLACK: u64 = 64;

/// Minimum dynamic instructions before the perfect-L2 IPC-ratio envelope
/// is enforced; below this, pipeline fill/drain dominates and the ratio of
/// two correct machines legitimately diverges.
pub const ENVELOPE_MIN_INSTRS: u64 = 5_000;

/// Allowed D-KIP/baseline IPC ratio under a perfect L2 (the structural
/// assertions — empty LLIB/LLRF, zero memory accesses — hold regardless).
pub const ENVELOPE_IPC_BAND: (f64, f64) = (0.85, 1.18);

/// Sampling rate used by the sampled-mode differential pass. Generated
/// programs are short, so the period is much denser than the
/// [`SampleConfig::default_rate`] production rate — most fuzz programs
/// still span several windows and at least one fast-forward gap.
#[must_use]
pub fn fuzz_sample_rate() -> SampleConfig {
    SampleConfig {
        period: 400,
        warmup: 50,
        window: 50,
    }
}

/// Options for one differential check.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Memory hierarchy for the three-family differential run.
    pub mem: MemoryHierarchyConfig,
    /// Oracle step backstop: the program must reach `ecall` within this
    /// many retired instructions or the check fails as non-terminating.
    pub step_limit: u64,
    /// Whether to run the perfect-L2 D-KIP envelope check.
    pub envelope: bool,
    /// Whether to re-run every family under sampled simulation
    /// ([`fuzz_sample_rate`]) and hold the final architectural state to the
    /// same oracle.
    pub sampled: bool,
    /// Whether the exact three-family pass runs with an in-memory telemetry
    /// sink attached (both backends: interval metrics and the pipeline
    /// trace). The architectural state and statistics must be identical
    /// either way — probing is observationally pure — so a `true` here
    /// turns every differential check into a telemetry-invariance check.
    pub probed: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            mem: MemoryHierarchyConfig::mem_400(),
            step_limit: 2_000_000,
            envelope: true,
            sampled: true,
            probed: false,
        }
    }
}

/// The three core families at their paper-default configurations — the
/// machines every generated program is differentially checked against.
#[must_use]
pub fn fuzz_machines() -> [Machine; 3] {
    [
        Machine::Baseline(BaselineConfig::r10_64()),
        Machine::Kilo(KiloConfig::kilo_1024()),
        Machine::Dkip(DkipConfig::paper_default()),
    ]
}

/// Successful-check summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Agreement {
    /// Dynamic instructions the program retires (oracle == every family).
    pub dynamic_len: u64,
}

/// How a differential check failed.
#[derive(Debug, Clone, PartialEq)]
pub enum Mismatch {
    /// The source does not assemble (only possible for corpus files edited
    /// by hand; the generator's output assembles by construction).
    Assemble(String),
    /// The oracle hit the step backstop before `ecall`.
    NoTermination {
        /// The backstop that was exceeded.
        step_limit: u64,
    },
    /// A family finished simulating without draining the program: its
    /// stream's emulator never reached `ecall`.
    Incomplete {
        /// The family tag ("baseline" / "kilo" / "dkip").
        family: &'static str,
        /// Instructions that family's emulator retired.
        retired: u64,
        /// Instructions the oracle retired.
        expected: u64,
    },
    /// A family's committed-instruction count disagrees with the oracle's
    /// dynamic instruction count.
    Committed {
        /// The family tag.
        family: &'static str,
        /// The oracle's dynamic instruction count.
        expected: u64,
        /// The family's `SimStats::committed`.
        actual: u64,
    },
    /// A register differs between the oracle and a family's final state.
    Register {
        /// The family tag.
        family: &'static str,
        /// Register index (0–31).
        index: usize,
        /// The oracle's value.
        oracle: u64,
        /// The family's value.
        actual: u64,
    },
    /// A memory byte differs between the oracle and a family's final state.
    Memory {
        /// The family tag.
        family: &'static str,
        /// Address of the first differing byte.
        addr: u64,
        /// The oracle's byte.
        oracle: u8,
        /// The family's byte.
        actual: u8,
    },
    /// The perfect-L2 D-KIP escaped its baseline envelope.
    Envelope(String),
    /// The sampled-mode run misaccounted its stream coverage (register and
    /// memory divergence under sampling is reported through the ordinary
    /// [`Mismatch::Register`] / [`Mismatch::Memory`] variants with a
    /// `*-sampled` family tag).
    SampledCoverage {
        /// The `*-sampled` family tag.
        family: &'static str,
        /// Instructions the sampled run reported covering.
        covered: u64,
        /// The oracle's dynamic instruction count.
        expected: u64,
    },
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mismatch::Assemble(err) => write!(f, "program does not assemble: {err}"),
            Mismatch::NoTermination { step_limit } => {
                write!(f, "program did not reach ecall within {step_limit} steps")
            }
            Mismatch::Incomplete {
                family,
                retired,
                expected,
            } => write!(
                f,
                "{family}: core finished without draining the stream \
                 ({retired}/{expected} instructions executed)"
            ),
            Mismatch::Committed {
                family,
                expected,
                actual,
            } => write!(
                f,
                "{family}: committed {actual} instructions, oracle retired {expected}"
            ),
            Mismatch::Register {
                family,
                index,
                oracle,
                actual,
            } => write!(
                f,
                "{family}: x{index} = {actual:#x}, oracle has {oracle:#x}"
            ),
            Mismatch::Memory {
                family,
                addr,
                oracle,
                actual,
            } => write!(
                f,
                "{family}: memory[{addr:#x}] = {actual:#04x}, oracle has {oracle:#04x}"
            ),
            Mismatch::Envelope(msg) => write!(f, "perfect-L2 envelope violated: {msg}"),
            Mismatch::SampledCoverage {
                family,
                covered,
                expected,
            } => write!(
                f,
                "{family}: sampled run covered {covered} of {expected} instructions"
            ),
        }
    }
}

/// Runs the functional emulator on `program` to completion.
fn run_oracle(program: &Program, step_limit: u64) -> Result<Emulator, Mismatch> {
    let mut emu = Emulator::new(program);
    emu.set_step_limit(step_limit);
    emu.run_to_halt();
    if emu.ran_to_completion() {
        Ok(emu)
    } else {
        Err(Mismatch::NoTermination { step_limit })
    }
}

/// Runs one family on `program` and returns its statistics plus the final
/// emulator state of the stream it consumed.
fn run_family(
    machine: &Machine,
    mem: &MemoryHierarchyConfig,
    program: &Program,
    step_limit: u64,
    budget: u64,
    probed: bool,
) -> (SimStats, Emulator) {
    let mut emu = Emulator::new(program);
    emu.set_step_limit(step_limit);
    let mut stream = RiscvStream::from_emulator(emu);
    let stats = if probed {
        // Both backends live, buffered in memory: a dense metrics interval
        // plus an uncapped-in-practice trace window for fuzz-sized programs.
        let mut telemetry = Telemetry::buffered(Some(256), Some(1 << 20));
        machine.simulate_stream_probed(mem, &mut stream, budget, Some(&mut telemetry))
    } else {
        machine.simulate_stream(mem, &mut stream, budget)
    };
    (stats, stream.emulator().clone())
}

/// The `*-sampled` family tag used when a sampled-mode run diverges.
fn sampled_tag(machine: &Machine) -> &'static str {
    match machine {
        Machine::Baseline(_) => "baseline-sampled",
        Machine::Kilo(_) => "kilo-sampled",
        Machine::Dkip(_) => "dkip-sampled",
    }
}

/// Runs one family on `program` under sampled simulation and returns the
/// run summary plus the final emulator state of the consumed stream.
///
/// The budget exceeds the program's dynamic length, so the sampling loop
/// itself must drain the stream — nothing is drained afterwards, which
/// means a sampled-mode bug that stops early surfaces as
/// [`Mismatch::Incomplete`] rather than being papered over.
fn run_family_sampled(
    machine: &Machine,
    mem: &MemoryHierarchyConfig,
    program: &Program,
    step_limit: u64,
    budget: u64,
    sample: &SampleConfig,
) -> (SampledRun, Emulator) {
    let mut emu = Emulator::new(program);
    emu.set_step_limit(step_limit);
    let mut stream = WorkloadStream::Riscv(RiscvStream::from_emulator(emu));
    let run = run_sampled(machine, mem, &mut stream, budget, sample);
    let WorkloadStream::Riscv(stream) = stream else {
        unreachable!("a Riscv stream stays a Riscv stream");
    };
    (run, stream.emulator().clone())
}

/// Compares a family's final emulator state against the oracle's.
fn compare_state(
    family: &'static str,
    oracle: &Emulator,
    actual: &Emulator,
) -> Result<(), Mismatch> {
    if !actual.ran_to_completion() {
        return Err(Mismatch::Incomplete {
            family,
            retired: actual.retired(),
            expected: oracle.retired(),
        });
    }
    for (index, (o, a)) in oracle.regs().iter().zip(actual.regs()).enumerate() {
        if o != a {
            return Err(Mismatch::Register {
                family,
                index,
                oracle: *o,
                actual: *a,
            });
        }
    }
    if oracle.memory() != actual.memory() {
        let (addr, (o, a)) = oracle
            .memory()
            .iter()
            .zip(actual.memory())
            .enumerate()
            .find(|(_, (o, a))| o != a)
            .expect("memories differ");
        return Err(Mismatch::Memory {
            family,
            addr: addr as u64,
            oracle: *o,
            actual: *a,
        });
    }
    Ok(())
}

/// The `tests/differential.rs` invariant, applied per program: under a
/// perfect L2 no load ever reaches memory, so the D-KIP's Analyze stage
/// must extract nothing and the machine must track the R10-64 baseline.
fn check_envelope(program: &Program, step_limit: u64, dynamic_len: u64) -> Result<(), Mismatch> {
    let perfect = MemoryHierarchyConfig::l2_11();
    let budget = dynamic_len + BUDGET_SLACK;
    let machines = fuzz_machines();
    let (dkip, _) = run_family(&machines[2], &perfect, program, step_limit, budget, false);
    let err = |msg: String| Err(Mismatch::Envelope(msg));
    if dkip.low_locality_instrs != 0 {
        return err(format!(
            "{} instructions extracted to the LLIB under a perfect L2",
            dkip.low_locality_instrs
        ));
    }
    if dkip.llib_int_peak_instrs != 0 || dkip.llib_fp_peak_instrs != 0 {
        return err("LLIB occupancy nonzero under a perfect L2".to_owned());
    }
    if dkip.llrf_int_peak_regs != 0 || dkip.llrf_fp_peak_regs != 0 {
        return err("LLRF occupancy nonzero under a perfect L2".to_owned());
    }
    if dkip.mem_accesses != 0 {
        return err(format!(
            "{} main-memory accesses under a perfect L2",
            dkip.mem_accesses
        ));
    }
    if dynamic_len >= ENVELOPE_MIN_INSTRS {
        let (base, _) = run_family(&machines[0], &perfect, program, step_limit, budget, false);
        let ratio = dkip.ipc() / base.ipc();
        let (lo, hi) = ENVELOPE_IPC_BAND;
        if !(lo..=hi).contains(&ratio) {
            return err(format!(
                "IPC ratio {ratio:.3} outside [{lo}, {hi}] \
                 (dkip={:.3}, baseline={:.3}, {dynamic_len} instructions)",
                dkip.ipc(),
                base.ipc()
            ));
        }
    }
    Ok(())
}

/// Differentially checks one assembly source: emulator oracle versus all
/// three core families, plus (optionally) the perfect-L2 D-KIP envelope.
///
/// # Errors
///
/// Returns the first [`Mismatch`] found; `Ok` carries the agreed dynamic
/// instruction count.
pub fn check_source(src: &str, opts: &FuzzOptions) -> Result<Agreement, Mismatch> {
    let program = assemble(src, CODE_BASE).map_err(|err| Mismatch::Assemble(err.to_string()))?;
    let oracle = run_oracle(&program, opts.step_limit)?;
    let dynamic_len = oracle.retired();
    let budget = dynamic_len + BUDGET_SLACK;
    for machine in &fuzz_machines() {
        let family = machine.family();
        let (stats, emu) = run_family(
            machine,
            &opts.mem,
            &program,
            opts.step_limit,
            budget,
            opts.probed,
        );
        compare_state(family, &oracle, &emu)?;
        if stats.committed != dynamic_len {
            return Err(Mismatch::Committed {
                family,
                expected: dynamic_len,
                actual: stats.committed,
            });
        }
    }
    if opts.sampled {
        let sample = fuzz_sample_rate();
        for machine in &fuzz_machines() {
            let family = sampled_tag(machine);
            let (run, emu) = run_family_sampled(
                machine,
                &opts.mem,
                &program,
                opts.step_limit,
                budget,
                &sample,
            );
            compare_state(family, &oracle, &emu)?;
            if run.consumed() != dynamic_len {
                return Err(Mismatch::SampledCoverage {
                    family,
                    covered: run.consumed(),
                    expected: dynamic_len,
                });
            }
        }
    }
    if opts.envelope {
        check_envelope(&program, opts.step_limit, dynamic_len)?;
    }
    Ok(Agreement { dynamic_len })
}

/// Differentially checks a generated program (the oracle backstop comes
/// from the generator's termination bound, so a termination-invariant bug
/// in the generator surfaces as [`Mismatch::NoTermination`]).
///
/// # Errors
///
/// See [`check_source`].
pub fn check_config(cfg: &GenConfig, opts: &FuzzOptions) -> Result<Agreement, Mismatch> {
    let gen = cfg.generate();
    let opts = FuzzOptions {
        step_limit: gen.dynamic_bound,
        ..opts.clone()
    };
    check_source(&gen.source, &opts)
}

/// Shrinking-lite over the generator's shape parameters: repeatedly lowers
/// `blocks`, `block_len`, `max_trip` and `leaves` (halving first, then
/// decrementing) while `still_fails` keeps returning `true`, and returns
/// the smallest failing configuration found.
///
/// The vendored proptest shim has no integrated shrinking, so this lives
/// here: because generation is deterministic in `(seed, shape)`, lowering a
/// knob regenerates a smaller program of the same character, and the
/// fixpoint of this descent is a minimal-ish reproduction suitable for the
/// corpus. `still_fails(&start)` must be `true` on entry.
pub fn minimize_config<F>(start: GenConfig, still_fails: F) -> GenConfig
where
    F: Fn(&GenConfig) -> bool,
{
    debug_assert!(still_fails(&start), "minimize_config needs a failing start");
    type Get = fn(&GenConfig) -> u32;
    type Set = fn(&mut GenConfig, u32);
    let fields: [(Get, Set); 4] = [
        (|c| c.blocks, |c, v| c.blocks = v),
        (|c| c.block_len, |c, v| c.block_len = v),
        (|c| c.max_trip, |c, v| c.max_trip = v),
        (|c| c.leaves, |c, v| c.leaves = v),
    ];
    let mut best = start;
    let mut changed = true;
    while changed {
        changed = false;
        for (get, set) in fields {
            loop {
                let cur = get(&best);
                if cur == 0 {
                    break;
                }
                let mut candidate = best;
                set(&mut candidate, cur / 2);
                if still_fails(&candidate) {
                    best = candidate;
                    changed = true;
                    continue;
                }
                let mut candidate = best;
                set(&mut candidate, cur - 1);
                if still_fails(&candidate) {
                    best = candidate;
                    changed = true;
                    continue;
                }
                break;
            }
        }
    }
    best
}

/// Budget bisection: the smallest committed-instruction budget in
/// `1..=hi` at which `still_fails` holds, assuming failure is monotone in
/// the budget (a failure at budget `b` persists for `b' > b`) and that
/// `still_fails(hi)` is `true`. Pins *where* in a long program a
/// divergence first becomes observable.
pub fn minimize_budget<F>(hi: u64, still_fails: F) -> u64
where
    F: Fn(u64) -> bool,
{
    debug_assert!(still_fails(hi), "minimize_budget needs a failing start");
    let (mut lo, mut hi) = (1, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if still_fails(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_trivial_program_agrees_everywhere() {
        let agreement = check_source(
            "li a0, 6\nli a1, 7\nmul a0, a0, a1\necall",
            &FuzzOptions::default(),
        )
        .expect("trivial program must agree");
        assert_eq!(agreement.dynamic_len, 4);
    }

    #[test]
    fn the_bare_ecall_program_drains_all_three_families() {
        // PR 5 regression: an exhausted MicroOp stream must keep returning
        // None across skipped cycles; the shortest possible stream (one
        // ecall, cracked to a Nop) exercises the drain path of every core.
        let agreement =
            check_source("ecall", &FuzzOptions::default()).expect("empty program must agree");
        assert_eq!(agreement.dynamic_len, 1);
    }

    #[test]
    fn an_unassemblable_source_is_reported_not_panicked() {
        let err = check_source("frobnicate a0, a1", &FuzzOptions::default()).unwrap_err();
        assert!(matches!(err, Mismatch::Assemble(_)), "{err}");
    }

    #[test]
    fn a_runaway_program_is_reported_as_non_terminating() {
        let opts = FuzzOptions {
            step_limit: 1_000,
            ..FuzzOptions::default()
        };
        let err = check_source("spin:\n  j spin", &opts).unwrap_err();
        assert_eq!(err, Mismatch::NoTermination { step_limit: 1_000 });
    }

    #[test]
    fn generated_configs_check_end_to_end() {
        for seed in 0..8 {
            let cfg = GenConfig::new(seed);
            if let Err(mismatch) = check_config(&cfg, &FuzzOptions::default()) {
                panic!("seed {seed}: {mismatch}");
            }
        }
    }

    #[test]
    fn minimize_config_descends_to_the_smallest_failing_shape() {
        // Synthetic failure predicate: "fails whenever blocks >= 3 or
        // max_trip >= 5" — the minimizer must land exactly on the boundary.
        let start = GenConfig::new(1); // blocks=8, max_trip=24
        let min = minimize_config(start, |c| c.blocks >= 3 || c.max_trip >= 5);
        assert!(min.blocks >= 3 || min.max_trip >= 5, "still fails");
        assert!(
            (min.blocks <= 3 && min.max_trip == 0) || (min.blocks == 0 && min.max_trip <= 5),
            "not minimal: {min:?}"
        );
        assert_eq!(min.block_len, 0);
        assert_eq!(min.leaves, 0);
    }

    #[test]
    fn minimize_budget_bisects_to_the_threshold() {
        assert_eq!(minimize_budget(1_000, |b| b >= 137), 137);
        assert_eq!(minimize_budget(8, |b| b >= 1), 1);
    }

    #[test]
    fn a_multi_window_program_survives_the_sampled_pass() {
        // ~18k dynamic instructions: with the 400:50:50 fuzz rate the
        // sampled pass runs dozens of windows separated by fast-forward
        // gaps, and must still leave every family's emulator at the exact
        // oracle state.
        let src = "li t0, 6000\nli t1, 0\nloop:\n  addi t1, t1, 3\n  addi t0, t0, -1\n  bnez t0, loop\necall";
        let agreement =
            check_source(src, &FuzzOptions::default()).expect("loop program must agree");
        // li t0, 6000 expands to two instructions (the constant exceeds a
        // 12-bit immediate), so the prologue is 3 instructions + ecall.
        assert_eq!(agreement.dynamic_len, 4 + 3 * 6_000);
    }

    #[test]
    fn the_probed_pass_is_observationally_pure() {
        // Same program, with and without the in-memory telemetry sink: the
        // differential machinery itself asserts architectural agreement, so
        // it only remains to check the dynamic length matches.
        let src = "li t0, 40\nloop:\n  addi t0, t0, -1\n  bnez t0, loop\necall";
        let plain = check_source(src, &FuzzOptions::default()).expect("unprobed check agrees");
        let probed = check_source(
            src,
            &FuzzOptions {
                probed: true,
                ..FuzzOptions::default()
            },
        )
        .expect("probed check agrees");
        assert_eq!(plain, probed);
    }

    #[test]
    fn the_sampled_pass_is_skippable() {
        let opts = FuzzOptions {
            sampled: false,
            ..FuzzOptions::default()
        };
        check_source("li a0, 1\necall", &opts).expect("exact-only check must agree");
    }

    #[test]
    fn mismatch_displays_are_informative() {
        let text = Mismatch::Register {
            family: "kilo",
            index: 10,
            oracle: 42,
            actual: 41,
        }
        .to_string();
        assert!(text.contains("kilo") && text.contains("x10"), "{text}");
    }
}
