//! Deterministic fault injection for chaos-hardening the sweep stack.
//!
//! Production sweeps fail in boring, predictable ways — a disk fills up, a
//! cache directory turns read-only, one job in ten thousand trips a panic —
//! and the hardening that survives them (per-job panic isolation in
//! [`crate::runner`], write retry/degrade in [`crate::store`], per-request
//! isolation in [`crate::service`]) only stays honest if something
//! exercises those paths continuously. This module is that something: a
//! registry of **named fault points** that the robustness-critical code
//! consults, armed from the `DKIP_FAULTS` environment variable (or
//! in-process via [`arm`]) and *disarmed by default*.
//!
//! # Fault points
//!
//! | point            | consulted by                               | armed effect                         |
//! |------------------|--------------------------------------------|--------------------------------------|
//! | `store.read`     | [`crate::store::ResultStore::lookup`]      | lookup reports a miss (recompute)    |
//! | `store.write`    | [`crate::store::ResultStore::insert`]      | the write attempt fails with an I/O error (ENOSPC-like) |
//! | `metrics.write`  | [`crate::runner::Job::try_run`]            | the per-job metrics write fails      |
//! | `job.panic`      | [`crate::runner::Job::try_run`]            | the job panics before simulating     |
//! | `service.answer` | [`crate::service::SweepService::answer`]   | the request handler panics           |
//! | `service.stall`  | [`crate::service::SweepService::answer`]   | the request sleeps past a short per-request deadline |
//!
//! # Arming grammar
//!
//! `DKIP_FAULTS` holds one or more comma-separated specs, each
//! `<point>:<rate>:<seed>`:
//!
//! * `<point>` — a fault-point name from the table above,
//! * `<rate>` — either a probability in `[0, 1]` (`0.25`, `1`) or
//!   `firstK` (`first2`): the first `K` consultations fire, the rest never
//!   do — the deterministic shape retry tests need,
//! * `<seed>` — the PRNG seed for probabilistic rates (ignored by
//!   `firstK`, but still required: the grammar is strict like every other
//!   knob in this repository).
//!
//! For example `DKIP_FAULTS=job.panic:0.5:7,store.write:1:11` panics every
//! other job (in consultation order) and fails every store write.
//!
//! # Determinism
//!
//! Each armed point carries an atomic consultation counter `n`; the
//! decision for consultation `n` is a pure function of `(seed, n)`
//! (SplitMix64, like the trace generators and the fuzzer). A
//! single-threaded run therefore fires on exactly the same consultations
//! every time; a multi-threaded run fires on the same *counter indices*,
//! though which job draws which index depends on scheduling. Either way
//! the campaign is reproducible in aggregate: same spec, same number of
//! consultations, same number of faults.
//!
//! # Cost when disarmed
//!
//! Mirroring the telemetry zero-cost contract, a disarmed fault point is
//! one relaxed atomic load and a predictable branch — and every point
//! sits on an I/O or per-job slow path, never in the per-cycle simulation
//! loop, so `DKIP_FAULTS`-unset runs are observationally and (to
//! measurement noise) temporally identical to builds without the hooks.
//! Simulated statistics are *never* touched: an armed fault can lose a
//! cache entry, a metrics file or a whole job, but any result that is
//! produced at all is byte-identical to a fault-free run.

use std::any::Any;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

/// Environment variable arming fault injection (see the module docs for
/// the `<point>:<rate>:<seed>[,…]` grammar). Unset or empty means no
/// faults. A malformed value panics on first consultation — an explicitly
/// requested chaos campaign must not silently run fault-free.
pub const FAULTS_ENV: &str = "DKIP_FAULTS";

/// The prefix every injected panic message and I/O error carries, so test
/// assertions (and humans reading a failure summary) can tell injected
/// faults from organic ones.
pub const CHAOS_TAG: &str = "dkip-chaos";

/// One named fault point (see the module docs for who consults what).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// A result-store lookup: firing turns it into a miss.
    StoreRead,
    /// A result-store write attempt: firing fails it with an I/O error.
    StoreWrite,
    /// A per-job interval-metrics file write: firing fails it.
    MetricsWrite,
    /// A sweep job: firing panics it before it simulates.
    JobPanic,
    /// A service request: firing panics the handler mid-answer.
    ServiceAnswer,
    /// A service request: firing stalls the handler past a short deadline.
    ServiceStall,
}

impl FaultPoint {
    /// Every fault point, in registry order.
    pub const ALL: [FaultPoint; 6] = [
        FaultPoint::StoreRead,
        FaultPoint::StoreWrite,
        FaultPoint::MetricsWrite,
        FaultPoint::JobPanic,
        FaultPoint::ServiceAnswer,
        FaultPoint::ServiceStall,
    ];

    /// The registry name used in `DKIP_FAULTS` specs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::StoreRead => "store.read",
            FaultPoint::StoreWrite => "store.write",
            FaultPoint::MetricsWrite => "metrics.write",
            FaultPoint::JobPanic => "job.panic",
            FaultPoint::ServiceAnswer => "service.answer",
            FaultPoint::ServiceStall => "service.stall",
        }
    }

    fn parse(name: &str) -> Option<FaultPoint> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&p| p == self)
            .expect("every point is in ALL")
    }
}

/// How often an armed point fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Rate {
    /// Fire each consultation independently with this probability.
    Prob(f64),
    /// Fire the first `K` consultations, then never again.
    First(u64),
}

#[derive(Debug)]
struct ArmedPoint {
    rate: Rate,
    seed: u64,
    counter: AtomicU64,
}

impl ArmedPoint {
    /// Decides consultation `n = counter++` deterministically from
    /// `(seed, n)`.
    fn fire(&self) -> bool {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        match self.rate {
            Rate::First(k) => n < k,
            Rate::Prob(p) => {
                // 53 uniform bits against a 53-bit threshold: p = 1.0 always
                // fires, p = 0.0 never does.
                let threshold = (p * (1u64 << 53) as f64) as u64;
                (splitmix64(self.seed ^ splitmix64(n)) >> 11) < threshold
            }
        }
    }
}

#[derive(Debug)]
struct ChaosState {
    points: [Option<ArmedPoint>; FaultPoint::ALL.len()],
}

static INIT: Once = Once::new();
static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Arc<ChaosState>>> = Mutex::new(None);

/// The SplitMix64 mixing function (same generator family as the vendored
/// `rand` shim and the trace generators).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Arms the registry from `DKIP_FAULTS` exactly once per process; explicit
/// [`arm`] / [`disarm`] calls also claim the `Once`, so an in-process
/// decision always wins over a late environment read.
fn ensure_init() {
    INIT.call_once(|| {
        if let Ok(value) = std::env::var(FAULTS_ENV) {
            if !value.trim().is_empty() {
                set_state(parse_spec(&value).unwrap_or_else(|e| {
                    panic!("invalid {FAULTS_ENV}={value:?}: {e}");
                }));
            }
        }
    });
}

fn set_state(state: ChaosState) {
    *STATE.lock().expect("chaos registry poisoned") = Some(Arc::new(state));
    ARMED.store(true, Ordering::Release);
}

/// Parses a full `DKIP_FAULTS` value (comma-separated specs).
fn parse_spec(value: &str) -> Result<ChaosState, String> {
    let mut points: [Option<ArmedPoint>; FaultPoint::ALL.len()] = Default::default();
    for part in value.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err("empty fault spec (stray comma?)".to_owned());
        }
        let fields: Vec<&str> = part.split(':').collect();
        let [name, rate, seed] = fields.as_slice() else {
            return Err(format!(
                "malformed fault spec {part:?}: expected <point>:<rate>:<seed>"
            ));
        };
        let point = FaultPoint::parse(name.trim()).ok_or_else(|| {
            let known: Vec<&str> = FaultPoint::ALL.iter().map(|p| p.name()).collect();
            format!(
                "unknown fault point {name:?}: expected one of {}",
                known.join(", ")
            )
        })?;
        let rate = parse_rate(rate.trim())?;
        let seed = seed
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("invalid fault seed {seed:?}: expected an unsigned integer"))?;
        let slot = &mut points[point.index()];
        if slot.is_some() {
            return Err(format!("duplicate fault point {:?}", point.name()));
        }
        *slot = Some(ArmedPoint {
            rate,
            seed,
            counter: AtomicU64::new(0),
        });
    }
    Ok(ChaosState { points })
}

fn parse_rate(text: &str) -> Result<Rate, String> {
    if let Some(k) = text.strip_prefix("first") {
        let k = k
            .parse::<u64>()
            .map_err(|_| format!("invalid fault rate {text:?}: expected firstK with integer K"))?;
        return Ok(Rate::First(k));
    }
    let p = text
        .parse::<f64>()
        .map_err(|_| format!("invalid fault rate {text:?}: expected a probability or firstK"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("fault rate {p} out of range: expected [0, 1]"));
    }
    Ok(Rate::Prob(p))
}

/// Whether any fault point is armed. One relaxed load when disarmed.
#[must_use]
pub fn armed() -> bool {
    ensure_init();
    ARMED.load(Ordering::Acquire)
}

/// Consults a fault point: `true` means "inject the fault now".
///
/// Disarmed (the default), this is a `Once` fast-path check plus one
/// relaxed atomic load — cheap enough for any I/O or per-job path, and
/// deliberately kept off the per-cycle simulation loop.
#[must_use]
pub fn should_fire(point: FaultPoint) -> bool {
    if !armed() {
        return false;
    }
    let state = STATE.lock().expect("chaos registry poisoned").clone();
    state
        .and_then(|s| s.points[point.index()].as_ref().map(ArmedPoint::fire))
        .unwrap_or(false)
}

/// Consults a fault point and renders a firing as an injected I/O error
/// (an `ENOSPC`-like "device out of space"), for the store/metrics write
/// paths. `None` means "proceed normally".
#[must_use]
pub fn fail_io(point: FaultPoint) -> Option<io::Error> {
    should_fire(point).then(|| {
        io::Error::other(format!(
            "{CHAOS_TAG}: injected {} fault (device out of space)",
            point.name()
        ))
    })
}

/// Arms the registry in-process, replacing any previous arming (and
/// pre-empting any later `DKIP_FAULTS` read). `spec` uses the
/// `DKIP_FAULTS` grammar. Tests use this because the registry is read
/// lazily and process-wide; operators use `DKIP_FAULTS`.
///
/// # Errors
///
/// Returns a human-readable message for a malformed spec (and leaves the
/// previous arming in place).
pub fn arm(spec: &str) -> Result<(), String> {
    INIT.call_once(|| {});
    set_state(parse_spec(spec)?);
    Ok(())
}

/// Disarms every fault point (and pre-empts any later `DKIP_FAULTS` read).
pub fn disarm() {
    INIT.call_once(|| {});
    ARMED.store(false, Ordering::Release);
    *STATE.lock().expect("chaos registry poisoned") = None;
}

/// Renders a caught panic payload as a human-readable message — the
/// `&str`/`String` payloads `panic!` produces, or a placeholder for
/// anything else. Shared by the runner's per-job isolation and the
/// service's per-request isolation.
#[must_use]
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These unit tests deliberately never call `arm`: the registry is
    // process-global and the test harness runs the other modules' unit
    // tests concurrently in this same process, so arming here would make
    // an unrelated runner/store test trip an injected fault. Decision
    // logic is tested on `ArmedPoint` directly; the armed end-to-end
    // behaviour lives in `tests/chaos.rs`, where every test serialises on
    // one lock.
    fn armed(spec: &str, point: FaultPoint) -> ArmedPoint {
        let mut state = parse_spec(spec).expect("valid spec");
        state.points[point.index()].take().expect("point armed")
    }

    #[test]
    fn disarmed_points_never_fire() {
        for point in FaultPoint::ALL {
            assert!(!should_fire(point));
            assert!(fail_io(point).is_none());
        }
        assert!(!super::armed());
    }

    #[test]
    fn rate_one_always_fires_and_rate_zero_never_does() {
        let always = armed("job.panic:1:7", FaultPoint::JobPanic);
        let never = armed("store.read:0:7", FaultPoint::StoreRead);
        for _ in 0..64 {
            assert!(always.fire());
            assert!(!never.fire());
        }
    }

    #[test]
    fn first_k_rates_fire_exactly_k_times() {
        let point = armed("store.write:first2:0", FaultPoint::StoreWrite);
        let fired: Vec<bool> = (0..5).map(|_| point.fire()).collect();
        assert_eq!(fired, vec![true, true, false, false, false]);
    }

    #[test]
    fn probabilistic_rates_are_seed_deterministic_and_roughly_calibrated() {
        let a: Vec<bool> = {
            let p = armed("job.panic:0.5:42", FaultPoint::JobPanic);
            (0..256).map(|_| p.fire()).collect()
        };
        let b: Vec<bool> = {
            let p = armed("job.panic:0.5:42", FaultPoint::JobPanic);
            (0..256).map(|_| p.fire()).collect()
        };
        assert_eq!(a, b, "same seed, same consultation order, same decisions");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((64..192).contains(&fired), "p=0.5 fired {fired}/256");
        let c: Vec<bool> = {
            let p = armed("job.panic:0.5:43", FaultPoint::JobPanic);
            (0..256).map(|_| p.fire()).collect()
        };
        assert_ne!(a, c, "a different seed draws a different pattern");
    }

    #[test]
    fn specs_parse_strictly() {
        assert!(parse_spec("job.panic:1:0").is_ok());
        assert!(parse_spec("job.panic:first3:0,store.read:0.25:9").is_ok());
        assert!(parse_spec("").is_err());
        assert!(parse_spec("job.panic:1").is_err(), "seed is mandatory");
        assert!(parse_spec("job.panic:1:0:9").is_err());
        assert!(parse_spec("job.reboot:1:0").is_err(), "unknown point");
        assert!(parse_spec("job.panic:1.5:0").is_err(), "rate > 1");
        assert!(parse_spec("job.panic:-0.1:0").is_err());
        assert!(parse_spec("job.panic:firstx:0").is_err());
        assert!(parse_spec("job.panic:1:zebra").is_err());
        assert!(
            parse_spec("job.panic:1:0,job.panic:1:1").is_err(),
            "duplicate point"
        );
        assert!(parse_spec("job.panic:1:0,").is_err(), "stray comma");
    }

    #[test]
    fn every_point_name_round_trips() {
        for point in FaultPoint::ALL {
            assert_eq!(FaultPoint::parse(point.name()), Some(point));
            assert!(parse_spec(&format!("{}:1:0", point.name())).is_ok());
        }
        assert_eq!(FaultPoint::parse("store.reboot"), None);
    }

    #[test]
    fn panic_messages_render_str_string_and_other() {
        let a: Box<dyn Any + Send> = Box::new("static message");
        let b: Box<dyn Any + Send> = Box::new("owned".to_owned());
        let c: Box<dyn Any + Send> = Box::new(42_u32);
        assert_eq!(panic_message(a.as_ref()), "static message");
        assert_eq!(panic_message(b.as_ref()), "owned");
        assert_eq!(panic_message(c.as_ref()), "<non-string panic payload>");
    }
}
