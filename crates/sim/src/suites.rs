//! The pinned golden-suite job lists.
//!
//! `tests/golden_stats.rs` and `tests/perf_invariance.rs` both regenerate
//! these exact sweeps — the former to diff them against the snapshots in
//! `tests/golden/`, the latter to prove hot-path optimizations are
//! observationally pure at 1 and 8 runner threads. Defining the job lists
//! here (instead of inline in each test) guarantees the two tests can never
//! drift apart, and gives the figure binaries access to the same matrices.
//!
//! Changing anything here changes what the snapshots pin — regenerate them
//! with `make bless` and review the diff.

use crate::experiments::{riscv_kernel_runs, riscv_machines, RISCV_BUDGET};
use crate::runner::{Job, Machine};
use dkip_model::config::{BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig};
use dkip_trace::Benchmark;

/// Instruction budget shared by the synthetic golden jobs.
pub const GOLDEN_BUDGET: u64 = 4_000;

/// The baseline-family golden sweep (`tests/golden/baseline.golden`): the
/// small and large R10000-style cores over representative benchmarks, one
/// perfect-L1 point, and the unbounded characterisation core (which
/// exercises the issue-latency histogram serialisation).
#[must_use]
pub fn golden_baseline_jobs() -> Vec<Job> {
    let mem = MemoryHierarchyConfig::mem_400();
    vec![
        Job::new(
            "r10-64/gcc",
            Machine::Baseline(BaselineConfig::r10_64()),
            mem.clone(),
            Benchmark::Gcc,
            GOLDEN_BUDGET,
        ),
        Job::new(
            "r10-64/mcf",
            Machine::Baseline(BaselineConfig::r10_64()),
            mem.clone(),
            Benchmark::Mcf,
            GOLDEN_BUDGET,
        ),
        Job::new(
            "r10-256/swim",
            Machine::Baseline(BaselineConfig::r10_256()),
            mem.clone(),
            Benchmark::Swim,
            GOLDEN_BUDGET,
        ),
        Job::new(
            "r10-64/l1-2/crafty",
            Machine::Baseline(BaselineConfig::r10_64()),
            MemoryHierarchyConfig::l1_2(),
            Benchmark::Crafty,
            GOLDEN_BUDGET,
        ),
        Job::new(
            "unbounded/mesa",
            Machine::Baseline(BaselineConfig::unbounded()),
            mem,
            Benchmark::Mesa,
            2_000,
        ),
    ]
}

/// The KILO-family golden sweep (`tests/golden/kilo.golden`).
#[must_use]
pub fn golden_kilo_jobs() -> Vec<Job> {
    let mem = MemoryHierarchyConfig::mem_400();
    vec![
        Job::new(
            "kilo-1024/gcc",
            Machine::Kilo(KiloConfig::kilo_1024()),
            mem.clone(),
            Benchmark::Gcc,
            GOLDEN_BUDGET,
        ),
        Job::new(
            "kilo-1024/mcf",
            Machine::Kilo(KiloConfig::kilo_1024()),
            mem.clone(),
            Benchmark::Mcf,
            GOLDEN_BUDGET,
        ),
        Job::new(
            "kilo-1024/swim",
            Machine::Kilo(KiloConfig::kilo_1024()),
            mem,
            Benchmark::Swim,
            GOLDEN_BUDGET,
        ),
    ]
}

/// The D-KIP-family golden sweep (`tests/golden/dkip.golden`).
#[must_use]
pub fn golden_dkip_jobs() -> Vec<Job> {
    let mem = MemoryHierarchyConfig::mem_400();
    let small_l2 = MemoryHierarchyConfig::mem_400().with_l2_kb(64);
    vec![
        Job::new(
            "dkip-2048/gcc",
            Machine::Dkip(DkipConfig::paper_default()),
            mem.clone(),
            Benchmark::Gcc,
            GOLDEN_BUDGET,
        ),
        Job::new(
            "dkip-2048/mcf",
            Machine::Dkip(DkipConfig::paper_default()),
            mem.clone(),
            Benchmark::Mcf,
            GOLDEN_BUDGET,
        ),
        Job::new(
            "dkip-2048/swim",
            Machine::Dkip(DkipConfig::paper_default()),
            mem.clone(),
            Benchmark::Swim,
            GOLDEN_BUDGET,
        ),
        Job::new(
            "dkip-512/applu",
            Machine::Dkip(DkipConfig::paper_default().with_llib_capacity(512)),
            mem,
            Benchmark::Applu,
            GOLDEN_BUDGET,
        ),
        Job::new(
            "dkip-2048/64kb-l2/equake",
            Machine::Dkip(DkipConfig::paper_default()),
            small_l2,
            Benchmark::Equake,
            GOLDEN_BUDGET,
        ),
    ]
}

/// The RISC-V golden sweep (`tests/golden/riscv.golden`): every shipped
/// RV64IM kernel run to completion on all three core families over the
/// paper-default memory hierarchy — the exact matrix of `fig_riscv_ipc`
/// (6 kernels × 3 families = 18 jobs).
#[must_use]
pub fn golden_riscv_jobs() -> Vec<Job> {
    let mem = MemoryHierarchyConfig::paper_default();
    let mut jobs = Vec::new();
    for (tag, machine) in riscv_machines() {
        for run in riscv_kernel_runs() {
            jobs.push(Job::new(
                format!("{}/{}", tag.to_lowercase(), run.name()),
                machine.clone(),
                mem.clone(),
                run,
                RISCV_BUDGET,
            ));
        }
    }
    jobs
}

/// Every golden sweep, keyed by its snapshot file name under
/// `tests/golden/`.
#[must_use]
pub fn golden_suites() -> Vec<(&'static str, Vec<Job>)> {
    vec![
        ("baseline.golden", golden_baseline_jobs()),
        ("kilo.golden", golden_kilo_jobs()),
        ("dkip.golden", golden_dkip_jobs()),
        ("riscv.golden", golden_riscv_jobs()),
    ]
}

/// Resolves a sweep name as used by `dkip-sim sweep` and the serve
/// protocol: one of the golden suites (`baseline`, `kilo`, `dkip`,
/// `riscv`) or `all` (every suite concatenated in snapshot order). An
/// optional `budget` overrides every job's instruction budget, so clients
/// can scale the same matrix up or down without a new job list.
///
/// # Errors
///
/// Returns a human-readable message naming the unknown suite.
pub fn golden_suite_jobs(name: &str, budget: Option<u64>) -> Result<Vec<Job>, String> {
    let mut jobs = match name {
        "baseline" => golden_baseline_jobs(),
        "kilo" => golden_kilo_jobs(),
        "dkip" => golden_dkip_jobs(),
        "riscv" => golden_riscv_jobs(),
        "all" => golden_suites()
            .into_iter()
            .flat_map(|(_, jobs)| jobs)
            .collect(),
        _ => {
            return Err(format!(
                "unknown suite {name:?}: expected baseline, kilo, dkip, riscv or all"
            ))
        }
    };
    if let Some(budget) = budget {
        for job in &mut jobs {
            job.budget = budget;
        }
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn riscv_suite_is_the_full_18_job_matrix() {
        let jobs = golden_riscv_jobs();
        assert_eq!(jobs.len(), 18, "6 kernels x 3 families");
        for family in ["baseline", "kilo", "dkip"] {
            assert_eq!(
                jobs.iter().filter(|j| j.machine.family() == family).count(),
                6
            );
        }
        assert!(jobs.iter().all(|j| j.workload.is_finite()));
    }

    #[test]
    fn suites_cover_all_four_snapshots() {
        let suites = golden_suites();
        let names: Vec<&str> = suites.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "baseline.golden",
                "kilo.golden",
                "dkip.golden",
                "riscv.golden"
            ]
        );
        assert!(suites.iter().all(|(_, jobs)| !jobs.is_empty()));
    }

    #[test]
    fn suite_names_resolve_and_budgets_override() {
        assert_eq!(golden_suite_jobs("kilo", None).unwrap().len(), 3);
        let all = golden_suite_jobs("all", None).unwrap();
        assert_eq!(all.len(), 5 + 3 + 5 + 18);
        let scaled = golden_suite_jobs("baseline", Some(1_000)).unwrap();
        assert!(scaled.iter().all(|j| j.budget == 1_000));
        assert!(golden_suite_jobs("bogus", None)
            .unwrap_err()
            .contains("bogus"));
    }

    #[test]
    fn spec_suites_pin_every_family_name() {
        assert!(golden_baseline_jobs()
            .iter()
            .all(|j| j.machine.family() == "baseline"));
        assert!(golden_kilo_jobs()
            .iter()
            .all(|j| j.machine.family() == "kilo"));
        assert!(golden_dkip_jobs()
            .iter()
            .all(|j| j.machine.family() == "dkip"));
    }
}
