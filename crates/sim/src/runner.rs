//! Parallel sweep runner for the experiment harness.
//!
//! Every paper artefact is a sweep over independent, fully deterministic
//! simulation points. This module turns such a sweep into an explicit job
//! list — one [`Job`] per `(machine, memory, benchmark, seed, budget)`
//! point — and fans it out over a [`SweepRunner`] worker pool built on
//! `std::thread::scope`, so figure regeneration scales with the host's
//! cores while the results stay byte-identical to a serial run:
//!
//! * jobs are claimed from a shared atomic cursor, so scheduling is dynamic,
//! * results are written back into the slot of the job that produced them,
//!   so the output order is the input order regardless of which worker
//!   finished first,
//! * each [`JobResult`] carries the job's wall-clock time so throughput can
//!   be reported without affecting the simulated statistics.
//!
//! The thread count comes from [`SweepRunner::from_env`] (the `DKIP_THREADS`
//! environment variable, defaulting to the available parallelism) or is set
//! explicitly with [`SweepRunner::new`]; `SweepRunner::new(1)` degrades to a
//! plain serial loop on the caller's thread.
//!
//! Jobs are failure-isolated: each one runs under `catch_unwind`, so a
//! panicking simulation point becomes a recorded [`JobFailure`] in the
//! [`SweepReport`] instead of aborting the whole sweep (see the
//! [`crate::chaos`] fault points that exercise this continuously).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::chaos::{self, FaultPoint};
use crate::store::{ResultStore, StoredResult};
use crate::workload::Workload;
use dkip_core::run_dkip_stream_probed;
use dkip_kilo::run_kilo_stream_probed;
use dkip_model::config::{
    event_clock_enabled, BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig,
};
use dkip_model::{KeyWriter, MetricsConfig, SampleConfig, SimStats, StableKey, Telemetry};
use dkip_ooo::run_baseline_stream_probed;

/// Environment variable overriding the worker-pool size.
pub const THREADS_ENV: &str = "DKIP_THREADS";

/// One of the three simulated processor families, with its configuration.
///
/// A `Machine` is the "what to simulate" half of a [`Job`]; it dispatches to
/// the matching `run_*` entry point of the owning crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Machine {
    /// An R10000-style out-of-order baseline (`dkip_ooo::run_baseline`).
    Baseline(BaselineConfig),
    /// The traditional KILO-instruction processor (`dkip_kilo::run_kilo`).
    Kilo(KiloConfig),
    /// The Decoupled KILO-Instruction Processor (`dkip_core::run_dkip`).
    Dkip(DkipConfig),
}

impl Machine {
    /// The human-readable configuration name ("R10-64", "KILO-1024", …).
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Machine::Baseline(cfg) => &cfg.name,
            Machine::Kilo(cfg) => &cfg.name,
            Machine::Dkip(cfg) => &cfg.name,
        }
    }

    /// Short family tag used in golden-file headers.
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            Machine::Baseline(_) => "baseline",
            Machine::Kilo(_) => "kilo",
            Machine::Dkip(_) => "dkip",
        }
    }

    /// Runs this machine on one workload and returns its statistics.
    ///
    /// This is the single path every (family × workload) combination runs
    /// through: the workload opens its [`dkip_model::MicroOp`] stream and
    /// [`Machine::simulate_stream`] dispatches it to the matching
    /// `run_*_stream` entry point. Synthetic benchmarks run for `budget`
    /// committed instructions; finite execution-driven kernels run to
    /// completion (bounded by `budget`).
    #[must_use]
    pub fn simulate(
        &self,
        mem: &MemoryHierarchyConfig,
        workload: &Workload,
        budget: u64,
        seed: u64,
    ) -> SimStats {
        let mut stream = workload.stream(seed);
        self.simulate_stream(mem, &mut stream, budget)
    }

    /// Runs this machine on an already-open [`dkip_model::MicroOp`] stream.
    ///
    /// This is the family dispatch [`Machine::simulate`] funnels through;
    /// the differential-fuzz harness ([`crate::fuzz`]) calls it directly so
    /// a generated program's [`dkip_riscv::RiscvStream`] can be inspected
    /// (final emulator state) after the core drains it.
    #[must_use]
    pub fn simulate_stream(
        &self,
        mem: &MemoryHierarchyConfig,
        stream: &mut dyn Iterator<Item = dkip_model::MicroOp>,
        budget: u64,
    ) -> SimStats {
        self.simulate_stream_probed(mem, stream, budget, None)
    }

    /// [`Machine::simulate_stream`] with an optional telemetry sink
    /// attached. `None` is the exact entry point the plain dispatch takes,
    /// so a detached probe is bit-identical to not probing at all; a sink
    /// collects interval metrics and/or a Konata/O3PipeView pipeline trace
    /// without perturbing the simulated statistics.
    #[must_use]
    pub fn simulate_stream_probed(
        &self,
        mem: &MemoryHierarchyConfig,
        stream: &mut dyn Iterator<Item = dkip_model::MicroOp>,
        budget: u64,
        probe: Option<&mut Telemetry>,
    ) -> SimStats {
        match self {
            Machine::Baseline(cfg) => run_baseline_stream_probed(cfg, mem, stream, budget, probe),
            Machine::Kilo(cfg) => run_kilo_stream_probed(cfg, mem, stream, budget, probe),
            Machine::Dkip(cfg) => run_dkip_stream_probed(cfg, mem, stream, budget, probe),
        }
    }
}

/// One simulation point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Caller-chosen grouping key; [`mean_ipc_by_label`] averages over equal
    /// labels and the figure drivers use it as "series × x" coordinates.
    pub label: String,
    /// The processor to simulate.
    pub machine: Machine,
    /// The memory hierarchy to attach.
    pub mem: MemoryHierarchyConfig,
    /// The workload (synthetic benchmark or RISC-V kernel).
    pub workload: Workload,
    /// Instructions to simulate (finite workloads may end earlier).
    pub budget: u64,
    /// Trace-generator seed (ignored by execution-driven workloads).
    pub seed: u64,
    /// Sampled-simulation rate, or `None` for exact (cycle-by-cycle)
    /// simulation. Defaults from the `DKIP_SAMPLE` environment variable in
    /// [`Job::new`]; exact mode is the golden reference and stays the
    /// default when the variable is unset.
    pub sample: Option<SampleConfig>,
    /// Interval-metrics collection, or `None` for an unprobed run (the
    /// golden reference path). Defaults from the `DKIP_METRICS` environment
    /// variable in [`Job::new`]. Each job writes to its own file — the
    /// configured path with a sanitised job tag inserted before the
    /// extension ([`MetricsConfig::for_job`]) — so sweep outputs never
    /// collide across workers.
    pub metrics: Option<MetricsConfig>,
}

impl Job {
    /// Creates a job with the default experiment seed
    /// ([`crate::experiments::SEED`]). `workload` accepts a
    /// [`dkip_trace::Benchmark`], a [`dkip_riscv::Kernel`] or a
    /// [`dkip_riscv::KernelRun`] as well as a [`Workload`].
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        machine: Machine,
        mem: MemoryHierarchyConfig,
        workload: impl Into<Workload>,
        budget: u64,
    ) -> Self {
        Job {
            label: label.into(),
            machine,
            mem,
            workload: workload.into(),
            budget,
            seed: crate::experiments::SEED,
            sample: SampleConfig::from_env(),
            metrics: MetricsConfig::from_env(),
        }
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy running under sampled simulation at the given rate
    /// (see [`crate::sampled`]), overriding the `DKIP_SAMPLE` default.
    #[must_use]
    pub fn with_sample(mut self, sample: SampleConfig) -> Self {
        self.sample = Some(sample);
        self
    }

    /// Returns a copy forced to exact (cycle-by-cycle) simulation.
    #[must_use]
    pub fn exact(mut self) -> Self {
        self.sample = None;
        self
    }

    /// Returns a copy with interval-metrics collection enabled, overriding
    /// the `DKIP_METRICS` default.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Returns a copy with interval-metrics collection disabled.
    #[must_use]
    pub fn unprobed(mut self) -> Self {
        self.metrics = None;
        self
    }

    /// The sanitised tag identifying this job in per-job metrics file
    /// names (see [`MetricsConfig::for_job`]).
    #[must_use]
    pub fn metrics_tag(&self) -> String {
        format!(
            "{} {} {} {} {}",
            self.label,
            self.machine.family(),
            self.mem.name,
            self.workload.name(),
            self.seed,
        )
    }

    /// Renders the canonical key text identifying this simulation point for
    /// the content-addressed result store (see [`crate::store`]).
    ///
    /// The text covers *everything* that determines the statistics: the
    /// machine family and full configuration, the memory hierarchy, the
    /// workload name (which fully determines the workload — see
    /// [`Workload::parse`]), the budget, the seed, the sampling knob and
    /// the clock mode (`DKIP_NO_SKIP` changes scheduling granularity, so
    /// event- and step-clock results must never share an entry). The
    /// `label` is presentation-only and the `metrics` probe makes a job
    /// uncacheable ([`Job::cacheable`]) rather than part of the key.
    #[must_use]
    pub fn key_text(&self) -> String {
        let mut w = KeyWriter::new();
        w.field("family", self.machine.family());
        match &self.machine {
            Machine::Baseline(cfg) => w.scoped("machine", |w| cfg.write_key(w)),
            Machine::Kilo(cfg) => w.scoped("machine", |w| cfg.write_key(w)),
            Machine::Dkip(cfg) => w.scoped("machine", |w| cfg.write_key(w)),
        }
        w.scoped("mem", |w| self.mem.write_key(w));
        w.field("workload", self.workload.name());
        w.field("budget", self.budget);
        w.field("seed", self.seed);
        match &self.sample {
            None => w.field("sample", "none"),
            Some(sample) => w.scoped("sample", |w| sample.write_key(w)),
        }
        w.field(
            "clock",
            if event_clock_enabled() {
                "event"
            } else {
                "step"
            },
        );
        w.finish()
    }

    /// Whether this job's result may be served from / written to the result
    /// store. Metrics-probed jobs are excluded: their purpose is the
    /// telemetry files they write as a side effect, which a cache hit would
    /// silently skip.
    #[must_use]
    pub fn cacheable(&self) -> bool {
        self.metrics.is_none()
    }

    /// Builds the [`JobResult`] for a cache hit. The statistics are the
    /// verified stored document; `wall` is zero because no simulation
    /// happened (it is metadata, excluded from every serialisation).
    #[must_use]
    fn result_from_cache(&self, stored: StoredResult) -> JobResult {
        JobResult {
            label: self.label.clone(),
            machine_name: self.machine.name().to_owned(),
            family: self.machine.family(),
            mem_name: self.mem.name.clone(),
            workload: self.workload,
            seed: self.seed,
            budget: self.budget,
            sample: self.sample,
            stats: stored.stats,
            covered: stored.covered,
            wall: Duration::ZERO,
        }
    }

    /// One-line human description of the simulation point (family,
    /// machine, memory, workload, seed, budget) used in failure reports.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "{} {} mem={} bench={} seed={} budget={}",
            self.machine.family(),
            self.machine.name(),
            self.mem.name,
            self.workload.name(),
            self.seed,
            self.budget,
        )
    }

    /// Runs the job on the calling thread.
    ///
    /// Exact jobs simulate every instruction; sampled jobs run through
    /// [`crate::sampled::run_sampled`] and report the window-aggregate
    /// statistics (so `stats.ipc()` is the sampled estimate).
    ///
    /// # Panics
    ///
    /// Panics on any [`Job::try_run`] error — a metrics file that cannot
    /// be written, in practice. Sweep callers go through the runner, which
    /// records failures instead (see [`SweepReport::failures`]).
    #[must_use]
    pub fn run(&self) -> JobResult {
        self.try_run()
            .unwrap_or_else(|e| panic!("job {:?} failed: {e}", self.label))
    }

    /// Runs the job on the calling thread, reporting recoverable failures
    /// as an error message instead of panicking.
    ///
    /// Today the only recoverable failure is a per-job metrics file that
    /// cannot be written: the simulation itself is deterministic and
    /// in-memory. The [`chaos`] fault points `job.panic` (an injected
    /// panic, exercising the runner's `catch_unwind` isolation) and
    /// `metrics.write` (an injected write error) both land here.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the per-job metrics file
    /// cannot be written; the simulated statistics are discarded because
    /// the job's purpose — the telemetry side effect — did not happen.
    ///
    /// # Panics
    ///
    /// Panics when both sampling and interval metrics are requested (the
    /// fast-forwarded gaps of a sampled run have no cycle-accurate state to
    /// report): that is a configuration error, not a runtime fault.
    pub fn try_run(&self) -> Result<JobResult, String> {
        let start = Instant::now();
        assert!(
            self.sample.is_none() || self.metrics.is_none(),
            "interval metrics require exact simulation: unset DKIP_SAMPLE or DKIP_METRICS"
        );
        if chaos::should_fire(FaultPoint::JobPanic) {
            panic!(
                "{}: injected job.panic fault ({})",
                chaos::CHAOS_TAG,
                self.label
            );
        }
        let (stats, covered) = match &self.sample {
            None => {
                let stats = match &self.metrics {
                    None => {
                        self.machine
                            .simulate(&self.mem, &self.workload, self.budget, self.seed)
                    }
                    Some(metrics) => {
                        let per_job = metrics.for_job(&self.metrics_tag());
                        let mut telemetry = Telemetry::from_configs(Some(&per_job), None);
                        let mut stream = self.workload.stream(self.seed);
                        let stats = self.machine.simulate_stream_probed(
                            &self.mem,
                            &mut stream,
                            self.budget,
                            Some(&mut telemetry),
                        );
                        match chaos::fail_io(FaultPoint::MetricsWrite) {
                            Some(injected) => Err(injected),
                            None => telemetry.write_files(),
                        }
                        .map_err(|e| format!("cannot write {per_job}: {e}"))?;
                        stats
                    }
                };
                let covered = stats.committed;
                (stats, covered)
            }
            Some(sample) => {
                let mut stream = self.workload.stream(self.seed);
                let run = crate::sampled::run_sampled(
                    &self.machine,
                    &self.mem,
                    &mut stream,
                    self.budget,
                    sample,
                );
                (run.to_stats(), run.consumed())
            }
        };
        Ok(JobResult {
            label: self.label.clone(),
            machine_name: self.machine.name().to_owned(),
            family: self.machine.family(),
            mem_name: self.mem.name.clone(),
            workload: self.workload,
            seed: self.seed,
            budget: self.budget,
            sample: self.sample,
            stats,
            covered,
            wall: start.elapsed(),
        })
    }
}

/// One job that did not produce a result: an isolated panic
/// (`catch_unwind` around the job, so one poisoned simulation point cannot
/// abort a thousand-job sweep) or a recoverable [`Job::try_run`] error.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// The failed job's index in the sweep's job list — the position its
    /// result would have occupied in [`SweepReport::results`] (later
    /// results shift up to fill the gap). `dkip-sim sweep` uses it to
    /// retry exactly the failed points.
    pub index: usize,
    /// The failed job's grouping label.
    pub label: String,
    /// The failed job's simulation point ([`Job::describe`]).
    pub job: String,
    /// What went wrong: the panic payload (rendered via
    /// [`chaos::panic_message`]) or the [`Job::try_run`] error.
    pub message: String,
}

impl JobFailure {
    /// One-line rendering for failure summaries and `err` responses.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "job {} ({}: {}): {}",
            self.index, self.label, self.job, self.message
        )
    }
}

/// The outcome of one [`Job`], in the position of the job that produced it.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's grouping label.
    pub label: String,
    /// The machine configuration name.
    pub machine_name: String,
    /// The machine family tag ("baseline" / "kilo" / "dkip").
    pub family: &'static str,
    /// The memory-hierarchy configuration name ("MEM-400", "L2-11", …).
    pub mem_name: String,
    /// The workload that ran.
    pub workload: Workload,
    /// The seed that was used.
    pub seed: u64,
    /// The instruction budget that was used.
    pub budget: u64,
    /// The sampling rate, or `None` for an exact run.
    pub sample: Option<SampleConfig>,
    /// The simulated statistics.
    pub stats: SimStats,
    /// Instructions the run covered. Equal to `stats.committed` for exact
    /// runs; for sampled runs the full simulated span (detailed windows
    /// plus functionally fast-forwarded gaps), which is the meaningful
    /// numerator for host-throughput metrics. Metadata only, like `wall`:
    /// excluded from [`JobResult::to_kv`].
    pub covered: u64,
    /// Host wall-clock time spent simulating this job. Metadata only: it is
    /// deliberately excluded from [`JobResult::to_kv`] so snapshots stay
    /// machine-independent.
    pub wall: Duration,
}

impl JobResult {
    /// Serialises the result (header + [`SimStats::to_kv`] body) in the
    /// stable format stored in golden snapshot files. Wall-clock time is
    /// excluded.
    #[must_use]
    pub fn to_kv(&self) -> String {
        // The `sample=` field only appears for sampled runs, so exact-mode
        // golden snapshots are byte-identical to the pre-sampling format.
        let sample = self
            .sample
            .map_or(String::new(), |rate| format!(" sample={rate}"));
        format!(
            "[{} {} mem={} bench={} seed={} budget={}{}]\n{}",
            self.family,
            self.machine_name,
            self.mem_name,
            self.workload.name(),
            self.seed,
            self.budget,
            sample,
            self.stats.to_kv()
        )
    }
}

/// Serialises an ordered result list into one stable snapshot document.
#[must_use]
pub fn results_to_kv(results: &[JobResult]) -> String {
    let mut out = String::new();
    for (idx, result) in results.iter().enumerate() {
        out.push_str(&format!("# job {idx}: {}\n", result.label));
        out.push_str(&result.to_kv());
        out.push('\n');
    }
    out
}

/// Arithmetic-mean IPC per label, preserving first-occurrence order.
///
/// The figure drivers encode "series × x-coordinate" into [`Job::label`] and
/// use this to collapse per-benchmark results into the per-point suite means
/// the paper plots.
#[must_use]
pub fn mean_ipc_by_label(results: &[JobResult]) -> Vec<(String, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut sums: Vec<(f64, u64)> = Vec::new();
    for result in results {
        match order.iter().position(|l| l == &result.label) {
            Some(idx) => {
                sums[idx].0 += result.stats.ipc();
                sums[idx].1 += 1;
            }
            None => {
                order.push(result.label.clone());
                sums.push((result.stats.ipc(), 1));
            }
        }
    }
    order
        .into_iter()
        .zip(sums)
        .map(|(label, (sum, count))| (label, sum / count as f64))
        .collect()
}

/// One sweep's results plus its cache accounting (see
/// [`SweepRunner::run_report`]).
#[derive(Debug)]
pub struct SweepReport {
    /// The per-job results, in job order. Failed jobs are *omitted* (their
    /// positions are in [`SweepReport::failures`]), so a fully green sweep
    /// has one result per job and a degraded one has fewer.
    pub results: Vec<JobResult>,
    /// Jobs served from the result store without simulating.
    pub hits: u64,
    /// Jobs that were simulated: cache misses (recomputed and written back)
    /// when a store is attached, every job otherwise.
    pub misses: u64,
    /// Jobs excluded from caching (metrics-probed, see [`Job::cacheable`]).
    pub uncacheable: u64,
    /// Jobs that panicked or failed recoverably, sorted by job index.
    /// Empty on a healthy sweep.
    pub failures: Vec<JobFailure>,
}

impl SweepReport {
    /// Whether every job produced a result.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Unwraps a sweep that must be fully green: returns the ordered
    /// results, or — when any job failed — prints a per-failure summary to
    /// stderr and panics with the failure count. This is the exit path of
    /// the figure binaries (via [`SweepRunner::run`]): a partial figure is
    /// worse than no figure, but the operator still gets told exactly
    /// which simulation points died and why.
    ///
    /// # Panics
    ///
    /// Panics when [`SweepReport::failures`] is non-empty.
    #[must_use]
    pub fn expect_complete(self) -> Vec<JobResult> {
        if self.failures.is_empty() {
            return self.results;
        }
        for failure in &self.failures {
            eprintln!("# dkip-sweep failure: {}", failure.render());
        }
        panic!(
            "{} of {} sweep jobs failed (summary above)",
            self.failures.len(),
            self.failures.len() + self.results.len(),
        );
    }
}

/// Per-job completion callback for [`SweepRunner::run_report_observed`]:
/// invoked with `(job index, result)` from whichever worker finished the
/// job, possibly concurrently.
pub type JobObserver<'a> = &'a (dyn Fn(usize, &JobResult) + Sync);

/// A fixed-size worker pool that runs a [`Job`] list to completion.
///
/// Scheduling is dynamic (workers claim the next unstarted job), but the
/// result vector is ordered by job index, so the output — and therefore any
/// golden serialisation derived from it — is identical for every thread
/// count. When a [`ResultStore`] is attached ([`SweepRunner::with_store`] or
/// the `DKIP_CACHE` environment variable via [`SweepRunner::from_env`]),
/// each cacheable job is looked up before simulating and written back on a
/// miss; because stored entries are verified byte-for-byte on load, a hit
/// is byte-identical to a recompute, preserving the thread-count invariant.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    store: Option<ResultStore>,
}

impl SweepRunner {
    /// Creates a runner with exactly `threads` workers (clamped to ≥ 1) and
    /// no result store.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
            store: None,
        }
    }

    /// A single-threaded runner (the serial reference).
    #[must_use]
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Reads the thread count from the `DKIP_THREADS` environment variable,
    /// falling back to the host's available parallelism when it is unset,
    /// and attaches the result store named by `DKIP_CACHE` (if any).
    ///
    /// # Panics
    ///
    /// Panics when `DKIP_THREADS` is set but not a positive integer, or
    /// when `DKIP_CACHE` names a directory that cannot be created. Like the
    /// `threads=N` CLI argument, an explicitly stated knob must not fall
    /// back silently — a CI job pinning the pool size or cache would
    /// otherwise run with whatever the host happens to have.
    #[must_use]
    pub fn from_env() -> Self {
        let runner = match std::env::var(THREADS_ENV) {
            Err(_) => Self::new(std::thread::available_parallelism().map_or(1, usize::from)),
            Ok(value) => match Self::parse_threads(&value) {
                Some(n) => Self::new(n),
                None => panic!("invalid {THREADS_ENV}={value:?}: expected a positive integer"),
            },
        };
        runner.with_store_opt(ResultStore::from_env())
    }

    /// Parses an explicit thread-count string (whitespace-tolerant).
    fn parse_threads(value: &str) -> Option<usize> {
        value.trim().parse::<usize>().ok().filter(|&n| n > 0)
    }

    /// The number of worker threads this runner uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns a copy with the given result store attached.
    #[must_use]
    pub fn with_store(mut self, store: ResultStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Returns a copy with the given (optional) store attached — `None`
    /// detaches, like [`SweepRunner::without_store`].
    #[must_use]
    pub fn with_store_opt(mut self, store: Option<ResultStore>) -> Self {
        self.store = store;
        self
    }

    /// Returns a copy with no result store (every job simulates).
    #[must_use]
    pub fn without_store(mut self) -> Self {
        self.store = None;
        self
    }

    /// The attached result store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// Runs every job and returns the results in job order.
    ///
    /// # Panics
    ///
    /// Panics (after printing a per-job failure summary to stderr) when any
    /// job fails — see [`SweepReport::expect_complete`]. Callers that want
    /// to survive partial failure use [`SweepRunner::run_report`] and
    /// inspect [`SweepReport::failures`] themselves.
    #[must_use]
    pub fn run(&self, jobs: &[Job]) -> Vec<JobResult> {
        self.run_report(jobs).expect_complete()
    }

    /// Runs every job and returns the results together with the sweep's
    /// cache accounting and failure list.
    ///
    /// Each job runs under `catch_unwind`: a panicking simulation point
    /// (or a recoverable [`Job::try_run`] error) becomes a recorded
    /// [`JobFailure`] and the sweep carries on, instead of one bad job
    /// aborting hours of completed shard work.
    #[must_use]
    pub fn run_report(&self, jobs: &[Job]) -> SweepReport {
        self.run_report_observed(jobs, None)
    }

    /// [`SweepRunner::run_report`] with an optional per-job completion
    /// callback, invoked with `(job index, result)` from whichever worker
    /// finished the job (concurrently — the callback must synchronise its
    /// own state), and only for jobs that *succeeded* — so `dkip-sim
    /// sweep`'s checkpoints never mark a failed job done.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the callback. Job panics do not propagate:
    /// they are caught and recorded in [`SweepReport::failures`] (the
    /// default panic hook still prints the usual trace to stderr first).
    #[must_use]
    pub fn run_report_observed(
        &self,
        jobs: &[Job],
        on_done: Option<JobObserver<'_>>,
    ) -> SweepReport {
        let hits = AtomicU64::new(0);
        let misses = AtomicU64::new(0);
        let uncacheable = AtomicU64::new(0);
        let failures: Mutex<Vec<JobFailure>> = Mutex::new(Vec::new());
        let execute = |idx: usize, job: &Job| -> Option<JobResult> {
            let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<JobResult, String> {
                match (&self.store, job.cacheable()) {
                    (Some(store), true) => {
                        let key = store.key_for_text(&job.key_text());
                        match store.lookup(&key) {
                            Some(stored) => {
                                hits.fetch_add(1, Ordering::Relaxed);
                                Ok(job.result_from_cache(stored))
                            }
                            None => {
                                misses.fetch_add(1, Ordering::Relaxed);
                                let result = job.try_run()?;
                                // A failed write is not a job failure: the
                                // result is correct, only uncached. The
                                // store retries, then logs its own
                                // degradation notice once.
                                let _ = store.insert(&key, &result.stats, result.covered);
                                Ok(result)
                            }
                        }
                    }
                    (store, _) => {
                        if store.is_some() {
                            uncacheable.fetch_add(1, Ordering::Relaxed);
                        } else {
                            misses.fetch_add(1, Ordering::Relaxed);
                        }
                        job.try_run()
                    }
                }
            }));
            let message = match attempt {
                Ok(Ok(result)) => {
                    if let Some(observe) = on_done {
                        observe(idx, &result);
                    }
                    return Some(result);
                }
                Ok(Err(message)) => message,
                Err(payload) => format!("panicked: {}", chaos::panic_message(payload.as_ref())),
            };
            failures.lock().expect("runner poisoned").push(JobFailure {
                index: idx,
                label: job.label.clone(),
                job: job.describe(),
                message,
            });
            None
        };
        let results = if jobs.is_empty() {
            Vec::new()
        } else if self.threads == 1 || jobs.len() == 1 {
            jobs.iter()
                .enumerate()
                .filter_map(|(idx, job)| execute(idx, job))
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let slots: Mutex<Vec<Option<JobResult>>> =
                Mutex::new((0..jobs.len()).map(|_| None).collect());
            std::thread::scope(|scope| {
                for _ in 0..self.threads.min(jobs.len()) {
                    scope.spawn(|| loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(idx) else { break };
                        let result = execute(idx, job);
                        slots.lock().expect("runner poisoned")[idx] = result;
                    });
                }
            });
            slots
                .into_inner()
                .expect("runner poisoned")
                .into_iter()
                .flatten()
                .collect()
        };
        let mut failures = failures.into_inner().expect("runner poisoned");
        failures.sort_by_key(|f| f.index);
        SweepReport {
            results,
            hits: hits.into_inner(),
            misses: misses.into_inner(),
            uncacheable: uncacheable.into_inner(),
            failures,
        }
    }

    /// Convenience: runs the jobs and returns only the ordered statistics.
    #[must_use]
    pub fn run_stats(&self, jobs: &[Job]) -> Vec<SimStats> {
        self.run(jobs).into_iter().map(|r| r.stats).collect()
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkip_riscv::Kernel;
    use dkip_trace::Benchmark;

    fn smoke_jobs() -> Vec<Job> {
        let mem = MemoryHierarchyConfig::mem_400();
        vec![
            Job::new(
                "base",
                Machine::Baseline(BaselineConfig::r10_64()),
                mem.clone(),
                Benchmark::Gcc,
                1_500,
            ),
            Job::new(
                "kilo",
                Machine::Kilo(KiloConfig::kilo_1024()),
                mem.clone(),
                Benchmark::Mesa,
                1_500,
            ),
            Job::new(
                "dkip",
                Machine::Dkip(DkipConfig::paper_default()),
                mem,
                Benchmark::Swim,
                1_500,
            ),
        ]
    }

    #[test]
    fn results_preserve_job_order() {
        let jobs = smoke_jobs();
        let results = SweepRunner::new(3).run(&jobs);
        assert_eq!(results.len(), jobs.len());
        for (job, result) in jobs.iter().zip(&results) {
            assert_eq!(job.label, result.label);
            assert_eq!(job.workload, result.workload);
            assert!(result.stats.committed > 0);
        }
    }

    #[test]
    fn riscv_workloads_run_through_the_same_path() {
        let mem = MemoryHierarchyConfig::mem_400();
        let jobs = vec![
            Job::new(
                "rv-base",
                Machine::Baseline(BaselineConfig::r10_64()),
                mem.clone(),
                Kernel::FibRec,
                100_000,
            ),
            Job::new(
                "rv-dkip",
                Machine::Dkip(DkipConfig::paper_default()),
                mem,
                Kernel::FibRec,
                100_000,
            ),
        ];
        let results = SweepRunner::new(2).run(&jobs);
        let dynamic_len = Workload::from(Kernel::FibRec).stream(1).count() as u64;
        for result in &results {
            assert_eq!(
                result.stats.committed, dynamic_len,
                "{}: finite kernels run to completion",
                result.label
            );
            assert!(result.to_kv().contains("bench=riscv:fibrec/14"));
        }
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let jobs = smoke_jobs();
        let serial = SweepRunner::serial().run(&jobs);
        let parallel = SweepRunner::new(4).run(&jobs);
        assert_eq!(results_to_kv(&serial), results_to_kv(&parallel));
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let jobs = smoke_jobs();
        let results = SweepRunner::new(64).run(&jobs);
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn empty_job_list_yields_no_results() {
        assert!(SweepRunner::new(4).run(&[]).is_empty());
    }

    #[test]
    fn thread_count_is_clamped_to_one() {
        assert_eq!(SweepRunner::new(0).threads(), 1);
    }

    #[test]
    fn mean_ipc_groups_by_label_in_order() {
        let mem = MemoryHierarchyConfig::mem_400();
        let jobs = vec![
            Job::new(
                "a",
                Machine::Baseline(BaselineConfig::r10_64()),
                mem.clone(),
                Benchmark::Gcc,
                1_000,
            ),
            Job::new(
                "b",
                Machine::Baseline(BaselineConfig::r10_64()),
                mem.clone(),
                Benchmark::Mesa,
                1_000,
            ),
            Job::new(
                "a",
                Machine::Baseline(BaselineConfig::r10_64()),
                mem,
                Benchmark::Mcf,
                1_000,
            ),
        ];
        let results = SweepRunner::new(2).run(&jobs);
        let means = mean_ipc_by_label(&results);
        assert_eq!(means.len(), 2);
        assert_eq!(means[0].0, "a");
        assert_eq!(means[1].0, "b");
        let expected_a = (results[0].stats.ipc() + results[2].stats.ipc()) / 2.0;
        assert!((means[0].1 - expected_a).abs() < 1e-12);
    }

    #[test]
    fn job_result_kv_excludes_wall_clock() {
        let jobs = smoke_jobs();
        let result = SweepRunner::serial().run(&jobs)[0].clone();
        let kv = result.to_kv();
        assert!(kv.starts_with("[baseline R10-64 mem=MEM-400 bench=gcc seed=1 budget=1500]"));
        assert!(!kv.contains("wall"));
    }

    #[test]
    fn sampled_jobs_report_the_window_estimate_and_tag_the_header() {
        let job = Job::new(
            "sampled",
            Machine::Dkip(DkipConfig::paper_default()),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Gcc,
            30_000,
        )
        .with_sample(SampleConfig::default_rate());
        let result = job.run();
        assert!(
            result.to_kv().starts_with(
                "[dkip D-KIP-2048 mem=MEM-400 bench=gcc seed=1 budget=30000 sample=10000:1000:1000]"
            ),
            "header: {}",
            result.to_kv().lines().next().unwrap_or_default()
        );
        // Only the measured windows (3 × ~1000 instructions, each off by at
        // most commit_width - 1 from warmup/window overshoot) contribute.
        assert!(
            (2_990..3_100).contains(&result.stats.committed),
            "window committed: {}",
            result.stats.committed
        );
        assert!(result.stats.ipc() > 0.0);
        // `exact()` strips the rate and restores the exact header format.
        let exact = job.exact().run();
        assert!(exact.to_kv().contains("budget=30000]"));
        assert!(exact.stats.committed >= 30_000);
    }

    #[test]
    fn cached_sweeps_hit_and_stay_byte_identical() {
        let dir = std::env::temp_dir().join(format!("dkip-runner-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = crate::store::ResultStore::open(&dir).unwrap();
        let jobs = smoke_jobs();
        let reference = SweepRunner::new(2).run(&jobs);
        let cold = SweepRunner::new(2)
            .with_store(store.clone())
            .run_report(&jobs);
        assert_eq!(cold.hits, 0);
        assert_eq!(cold.misses, 3);
        assert_eq!(cold.uncacheable, 0);
        let warm = SweepRunner::new(2).with_store(store).run_report(&jobs);
        assert_eq!(warm.hits, 3, "warm re-run must not simulate");
        assert_eq!(warm.misses, 0);
        assert_eq!(
            results_to_kv(&warm.results),
            results_to_kv(&reference),
            "a cache hit must be byte-identical to a recompute"
        );
        assert!(warm.results.iter().all(|r| r.wall == Duration::ZERO));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_probed_jobs_bypass_the_store() {
        let dir = std::env::temp_dir().join(format!("dkip-runner-probe-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = crate::store::ResultStore::open(&dir).unwrap();
        let metrics_file = dir.join("metrics.csv");
        let job = Job::new(
            "probed",
            Machine::Baseline(BaselineConfig::r10_64()),
            MemoryHierarchyConfig::mem_400(),
            Benchmark::Gcc,
            1_000,
        )
        .with_metrics(MetricsConfig {
            path: metrics_file.to_str().unwrap().to_owned(),
            interval: 200,
        });
        assert!(!job.cacheable());
        let runner = SweepRunner::serial().with_store(store);
        for _ in 0..2 {
            let report = runner.run_report(std::slice::from_ref(&job));
            assert_eq!(report.uncacheable, 1);
            assert_eq!(report.hits, 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_text_distinguishes_every_axis() {
        let base = smoke_jobs()[0].clone();
        let text = base.key_text();
        assert!(text.starts_with("family=baseline\n"));
        assert!(text.contains("machine.name=R10-64\n"));
        assert!(text.contains("mem.name=MEM-400\n"));
        assert!(text.contains("workload=gcc\n"));
        assert!(text.contains("sample=none\n"));
        assert!(text.ends_with("clock=step\n") || text.ends_with("clock=event\n"));
        let variants = vec![
            base.clone().with_seed(99),
            base.clone().with_sample(SampleConfig::default_rate()),
            Job {
                budget: base.budget + 1,
                ..base.clone()
            },
            Job {
                workload: Workload::from(Benchmark::Mesa),
                ..base.clone()
            },
            Job {
                mem: MemoryHierarchyConfig::l1_2(),
                ..base.clone()
            },
            Job {
                machine: Machine::Baseline(BaselineConfig::r10_256()),
                ..base.clone()
            },
        ];
        for variant in &variants {
            assert_ne!(variant.key_text(), text);
        }
        let relabelled = Job {
            label: "other".into(),
            ..base.clone()
        };
        assert_eq!(
            relabelled.key_text(),
            text,
            "the label is presentation-only"
        );
    }

    #[test]
    fn explicit_thread_counts_parse_strictly() {
        assert_eq!(SweepRunner::parse_threads("8"), Some(8));
        assert_eq!(SweepRunner::parse_threads(" 08 "), Some(8));
        assert_eq!(SweepRunner::parse_threads("0"), None);
        assert_eq!(SweepRunner::parse_threads("eight"), None);
        assert_eq!(SweepRunner::parse_threads(""), None);
    }
}
