//! Sampled simulation: checkpointed fast-forward + detailed windows.
//!
//! Exact mode simulates every instruction of a job's budget in detail. For
//! long workloads that is the dominant cost of regenerating the paper's
//! figures, even though IPC converges long before the budget is spent.
//! This module implements the classic systematic-sampling alternative
//! (SMARTS-style): the workload *stream* is functionally fast-forwarded
//! between evenly spaced detailed windows, and whole-run IPC is estimated
//! from the windows alone.
//!
//! One sampling *period* ([`dkip_model::SampleConfig`]) looks like:
//!
//! ```text
//! |--- warmup ---|--- window ---|---------- fast-forward ----------|
//!  detailed, not   detailed and   functional only: ops execute
//!  measured        measured       architecturally and warm the caches
//!                                 and predictor, no timing is modelled
//! ```
//!
//! * Every period seeds its detailed portion from an architectural-state
//!   checkpoint ([`dkip_ooo::OooCore::snapshot`] /
//!   [`dkip_core::DkipProcessor::snapshot`]) taken at the end of the
//!   previous period, after the pipeline drained. Warm long-lived state —
//!   caches, branch predictor — carries across the gaps, while no stale
//!   in-flight pipeline state can leak into the measurement (the skipped
//!   instructions were never simulated in detail).
//! * The warmup instructions re-prime the pipeline and refresh the warm
//!   state before measurement starts; they are simulated in detail but
//!   excluded from the estimate.
//! * The fast-forward portion performs SMARTS-style *functional warming*:
//!   every skipped op is drawn through the ordinary stream iterator (so
//!   the stream position stays bit-identical to detailed consumption and a
//!   sampled run commits the exact same architectural state as an exact
//!   run — the differential-fuzz oracle asserts this) and handed to the
//!   drained core's `warm_op`, which installs memory lines in the cache
//!   hierarchy and trains the branch predictor without modelling timing.
//!   Without this, miss-dominated workloads measure their windows against
//!   fictitious cache contents and the estimate degrades catastrophically.
//!
//! The estimate itself is the ratio estimator over the per-window
//! populations with a normal-approximation 95% confidence interval
//! ([`dkip_model::SampleEstimator`]). Exact mode remains the golden
//! reference: `tests/sampled_accuracy.rs` pins the sampled estimate to a
//! small relative-error band against exact IPC on every golden suite.

use dkip_core::DkipProcessor;
use dkip_kilo::build_kilo_core;
use dkip_mem::MemoryHierarchy;
use dkip_model::config::MemoryHierarchyConfig;
use dkip_model::{IpcEstimate, MicroOp, SampleConfig, SampleEstimator, SimStats, WindowSample};
use dkip_ooo::OooCore;

use crate::runner::Machine;
use crate::workload::WorkloadStream;

/// A detailed-simulation core of any of the three families, unified behind
/// the two operations sampling needs: "run until N committed" and "what
/// cycle is it". Baseline and KILO share the [`OooCore`] engine; the D-KIP
/// has its own decoupled pipeline.
#[derive(Debug, Clone)]
enum SampleCore {
    /// Baseline or KILO configuration on the shared out-of-order engine.
    Ooo(Box<OooCore>),
    /// The decoupled cache/memory-processor pipeline.
    Dkip(Box<DkipProcessor>),
}

impl SampleCore {
    /// Builds the pristine (reset) core for `machine` — the state the
    /// first window's checkpoint starts from.
    fn build(machine: &Machine, mem_cfg: &MemoryHierarchyConfig) -> SampleCore {
        let mem = MemoryHierarchy::new(mem_cfg.clone()).expect("invalid memory configuration");
        match machine {
            Machine::Baseline(cfg) => SampleCore::Ooo(Box::new(OooCore::from_baseline(cfg, mem))),
            Machine::Kilo(cfg) => SampleCore::Ooo(Box::new(build_kilo_core(cfg, mem))),
            Machine::Dkip(cfg) => SampleCore::Dkip(Box::new(DkipProcessor::new(cfg.clone(), mem))),
        }
    }

    /// Runs until `max_instrs` instructions have committed in total (the
    /// bound is cumulative across calls, like the underlying cores').
    fn run(&mut self, stream: &mut dyn Iterator<Item = MicroOp>, max_instrs: u64) -> SimStats {
        match self {
            SampleCore::Ooo(core) => core.run(stream, max_instrs),
            SampleCore::Dkip(proc_) => proc_.run(stream, max_instrs),
        }
    }

    /// Commits everything still in flight by running against an exhausted
    /// stream. A drained pipeline is the precondition for snapshotting
    /// between periods: the ops after the fast-forward gap carry
    /// discontinuous sequence numbers, which an empty ROB accepts.
    fn drain(&mut self) -> SimStats {
        self.run(&mut std::iter::empty(), u64::MAX)
    }

    /// Captures the family-matching architectural checkpoint.
    fn checkpoint(&self) -> SampleCheckpoint {
        match self {
            SampleCore::Ooo(core) => SampleCheckpoint::Ooo(Box::new(core.snapshot())),
            SampleCore::Dkip(proc_) => SampleCheckpoint::Dkip(Box::new(proc_.snapshot())),
        }
    }

    /// The core's current cycle count.
    fn cycle(&self) -> u64 {
        match self {
            SampleCore::Ooo(core) => core.cycle(),
            SampleCore::Dkip(proc_) => proc_.cycle(),
        }
    }

    /// Functionally warms caches and predictor with one skipped op.
    fn warm_op(&mut self, op: &MicroOp) {
        match self {
            SampleCore::Ooo(core) => core.warm_op(op),
            SampleCore::Dkip(proc_) => proc_.warm_op(op),
        }
    }
}

/// A family-tagged core checkpoint ([`dkip_ooo::CoreSnapshot`] or
/// [`dkip_core::DkipSnapshot`]) carried across the fast-forward gaps.
///
/// Each detailed window materialises a fresh core from the previous
/// window's end-of-window checkpoint, so warm microarchitectural state —
/// caches, branch predictor, statistics — persists across the gaps while
/// the pipeline itself restarts empty (the skipped instructions were never
/// simulated, so no stale in-flight state may leak into the measurement).
#[derive(Debug)]
enum SampleCheckpoint {
    /// Checkpoint of a baseline or KILO core.
    Ooo(Box<dkip_ooo::CoreSnapshot>),
    /// Checkpoint of a D-KIP processor.
    Dkip(Box<dkip_core::DkipSnapshot>),
}

impl SampleCheckpoint {
    /// Materialises an independent core continuing from this checkpoint.
    fn materialize(&self) -> SampleCore {
        match self {
            SampleCheckpoint::Ooo(snapshot) => SampleCore::Ooo(Box::new(snapshot.to_core())),
            SampleCheckpoint::Dkip(snapshot) => SampleCore::Dkip(Box::new(snapshot.to_processor())),
        }
    }
}

/// The outcome of one sampled simulation ([`run_sampled`]).
#[derive(Debug, Clone)]
pub struct SampledRun {
    /// The sampling rate that was used.
    pub sample: SampleConfig,
    /// The whole-run IPC estimate with its 95% confidence interval.
    pub estimate: IpcEstimate,
    /// Instructions committed in detail (warmup + measured windows).
    pub detailed_committed: u64,
    /// Instructions functionally fast-forwarded between windows.
    pub fast_forwarded: u64,
    /// Instructions the stream advanced by in total: every op drawn by a
    /// detailed core (committed or still in flight when its period ended)
    /// plus the fast-forwarded gaps.
    pub stream_consumed: u64,
}

impl SampledRun {
    /// Total instructions the run covered (the final stream position).
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.stream_consumed
    }

    /// Fraction of the covered instructions that went through a detailed
    /// core rather than the functional fast-forward path.
    #[must_use]
    pub fn detailed_fraction(&self) -> f64 {
        if self.stream_consumed == 0 {
            return 0.0;
        }
        (self.stream_consumed - self.fast_forwarded) as f64 / self.stream_consumed as f64
    }

    /// Collapses the estimate into a [`SimStats`] record so sampled jobs
    /// flow through the same reporting paths as exact ones.
    ///
    /// Only the measured-window aggregates are meaningful: `committed` and
    /// `cycles` are the window totals, so [`SimStats::ipc`] reproduces the
    /// ratio estimate exactly; every other counter is zero because the
    /// fast-forwarded gaps were never simulated in detail.
    #[must_use]
    pub fn to_stats(&self) -> SimStats {
        let mut stats = SimStats::new();
        stats.committed = self.estimate.committed;
        stats.cycles = self.estimate.cycles;
        stats
    }
}

/// Counts the micro-ops a detailed core actually draws from the stream.
///
/// A core prefetches past its commit bound, so at the end of a detailed
/// portion the stream has advanced further than the committed count — by
/// the in-flight instructions the dropped core still held. Coverage
/// accounting must follow the *stream* position, not the commit count, or
/// a finite workload would appear to end short.
struct CountedStream<'a> {
    inner: &'a mut WorkloadStream,
    taken: u64,
}

impl Iterator for CountedStream<'_> {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        let op = self.inner.next();
        if op.is_some() {
            self.taken += 1;
        }
        op
    }
}

/// Runs `machine` on `stream` under systematic sampling and returns the
/// IPC estimate (see the module docs for the period anatomy).
///
/// The run covers up to `budget` instructions of the stream — the same
/// span an exact job with that budget would simulate — and ends early only
/// when a finite stream is exhausted. The stream is left positioned at the
/// end of the covered span, so a caller holding a
/// [`dkip_riscv::RiscvStream`] can drain and inspect the final emulator
/// state afterwards.
///
/// # Panics
///
/// Panics if the memory configuration or the sampling rate is invalid.
#[must_use]
pub fn run_sampled(
    machine: &Machine,
    mem_cfg: &MemoryHierarchyConfig,
    stream: &mut WorkloadStream,
    budget: u64,
    sample: &SampleConfig,
) -> SampledRun {
    sample.validate().expect("invalid sampling rate");
    let mut checkpoint = SampleCore::build(machine, mem_cfg).checkpoint();
    let mut estimator = SampleEstimator::new();
    let mut counted = CountedStream {
        inner: stream,
        taken: 0,
    };
    // Committed instructions carried in the checkpoint chain so far: the
    // cores' run() bound is cumulative, so each segment's target is
    // expressed on top of this.
    let mut committed_base = 0u64;
    let mut fast_forwarded = 0u64;
    loop {
        let consumed = counted.taken + fast_forwarded;
        if consumed >= budget {
            break;
        }
        // Detailed portion: a fresh core materialised from the previous
        // window's end-of-window checkpoint (warm caches, predictor and
        // statistics; empty pipeline) runs the warmup, then the measured
        // window, on the live stream.
        let mut core = checkpoint.materialize();
        let warm_committed = if sample.warmup > 0 {
            core.run(&mut counted, committed_base + sample.warmup)
                .committed
                - committed_base
        } else {
            0
        };
        let warm_cycle = core.cycle();
        let detailed_target = sample.warmup + sample.window;
        let stats = core.run(&mut counted, committed_base + detailed_target);
        let window_committed = stats.committed - committed_base - warm_committed;
        let window_cycles = core.cycle() - warm_cycle;
        if window_committed > 0 {
            estimator.add_window(WindowSample {
                start_instr: consumed + warm_committed,
                committed: window_committed,
                cycles: window_cycles,
            });
        }
        let exhausted = stats.committed - committed_base < detailed_target;
        // Drain the in-flight tail so the next window's post-gap ops enter
        // an empty pipeline.
        committed_base = core.drain().committed;
        if exhausted {
            break; // finite stream ended inside the detailed portion
        }
        let consumed = counted.taken + fast_forwarded;
        if consumed >= budget {
            break;
        }
        // Fast-forward portion: advance the stream to the next period,
        // functionally warming the drained core's caches and predictor
        // with every skipped op, then roll the checkpoint forward so the
        // next window inherits the warmed state.
        let want = sample.skip().min(budget - consumed);
        let mut skipped = 0u64;
        while skipped < want {
            let Some(op) = counted.inner.next() else {
                break;
            };
            core.warm_op(&op);
            skipped += 1;
        }
        fast_forwarded += skipped;
        checkpoint = core.checkpoint();
        if skipped < want {
            break; // finite stream exhausted inside the gap
        }
    }
    SampledRun {
        sample: *sample,
        estimate: estimator.estimate(),
        detailed_committed: committed_base,
        fast_forwarded,
        stream_consumed: counted.taken + fast_forwarded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use dkip_model::config::{BaselineConfig, DkipConfig, KiloConfig};
    use dkip_riscv::Kernel;
    use dkip_trace::Benchmark;

    fn machines() -> Vec<Machine> {
        vec![
            Machine::Baseline(BaselineConfig::r10_64()),
            Machine::Kilo(KiloConfig::kilo_1024()),
            Machine::Dkip(DkipConfig::paper_default()),
        ]
    }

    #[test]
    fn sampling_covers_the_budget_on_endless_workloads() {
        let mem = MemoryHierarchyConfig::mem_400();
        let sample = SampleConfig::default_rate();
        for machine in machines() {
            let mut stream = Workload::from(Benchmark::Gcc).stream(1);
            let run = run_sampled(&machine, &mem, &mut stream, 50_000, &sample);
            // Coverage overshoots the budget by at most the last period's
            // in-flight instructions (the stream advances past the commit
            // bound while the pipeline is still full).
            assert!(
                (50_000..65_000).contains(&run.consumed()),
                "{}: consumed {}",
                machine.name(),
                run.consumed()
            );
            assert_eq!(run.estimate.windows, 5, "{}", machine.name());
            assert!(run.estimate.ipc > 0.0 && run.estimate.ipc < 8.0);
            assert!(run.detailed_fraction() < 0.40, "{}", machine.name());
            assert!(run.fast_forwarded > run.detailed_committed);
        }
    }

    #[test]
    fn sampling_stops_when_a_finite_kernel_halts() {
        let mem = MemoryHierarchyConfig::mem_400();
        let sample = SampleConfig::default_rate();
        let exact_len = Workload::from(Kernel::FibRec).stream(1).count() as u64;
        let machine = Machine::Dkip(DkipConfig::paper_default());
        let mut stream = Workload::from(Kernel::FibRec).stream(1);
        let run = run_sampled(&machine, &mem, &mut stream, u64::MAX, &sample);
        assert_eq!(run.consumed(), exact_len);
        assert!(stream.next().is_none(), "stream fully drained");
        assert!(run.estimate.windows >= 1);
    }

    #[test]
    fn sampled_runs_are_deterministic() {
        let mem = MemoryHierarchyConfig::mem_400();
        let sample = SampleConfig::parse("5000:500:500").unwrap();
        let machine = Machine::Dkip(DkipConfig::paper_default());
        let mut a = Workload::from(Benchmark::Swim).stream(1);
        let mut b = Workload::from(Benchmark::Swim).stream(1);
        let ra = run_sampled(&machine, &mem, &mut a, 30_000, &sample);
        let rb = run_sampled(&machine, &mem, &mut b, 30_000, &sample);
        assert_eq!(ra.estimate.ipc.to_bits(), rb.estimate.ipc.to_bits());
        assert_eq!(ra.estimate.ci95.to_bits(), rb.estimate.ci95.to_bits());
        assert_eq!(ra.detailed_committed, rb.detailed_committed);
        assert_eq!(ra.fast_forwarded, rb.fast_forwarded);
    }

    #[test]
    fn to_stats_reproduces_the_ratio_estimate() {
        let mem = MemoryHierarchyConfig::mem_400();
        let sample = SampleConfig::default_rate();
        let machine = Machine::Baseline(BaselineConfig::r10_64());
        let mut stream = Workload::from(Benchmark::Mcf).stream(1);
        let run = run_sampled(&machine, &mem, &mut stream, 40_000, &sample);
        let stats = run.to_stats();
        assert_eq!(stats.committed, run.estimate.committed);
        assert_eq!(stats.cycles, run.estimate.cycles);
        assert!((stats.ipc() - run.estimate.ipc).abs() < 1e-12);
    }

    #[test]
    fn whole_period_windows_degenerate_to_exact_simulation() {
        // window == period with no warmup and no gap: every instruction is
        // simulated in detail, though each period restarts from the pristine
        // checkpoint.
        let mem = MemoryHierarchyConfig::mem_400();
        let sample = SampleConfig::parse("10000:0:10000").unwrap();
        let machine = Machine::Baseline(BaselineConfig::r10_64());
        let mut stream = Workload::from(Benchmark::Gcc).stream(1);
        let run = run_sampled(&machine, &mem, &mut stream, 10_000, &sample);
        assert_eq!(run.fast_forwarded, 0);
        assert!(run.detailed_committed >= 10_000);
        let exact = machine.simulate(&mem, &Workload::from(Benchmark::Gcc), 10_000, 1);
        assert_eq!(run.estimate.committed, exact.committed);
        assert_eq!(run.estimate.cycles, exact.cycles);
    }
}
